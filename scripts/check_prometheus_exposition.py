#!/usr/bin/env python3
"""Strict-ish parser for the Prometheus text exposition format (v0.0.4).

CI smoke check: fails (exit 1) if the metrics dump written by
`rcdc_validate --metrics-out` is not a well-formed exposition. Checks:

  * every line is a `# HELP`, `# TYPE`, or a sample line
  * `# TYPE` declares counter / gauge / histogram, once per family,
    before any of the family's samples
  * sample names belong to a declared family (histograms own the
    `_bucket` / `_sum` / `_count` suffixes)
  * label blocks are well-formed, values properly quoted/escaped
  * histogram buckets are cumulative (non-decreasing in `le` order),
    end with an `+Inf` bucket, and the `+Inf` count equals `_count`
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>-?(?:[0-9.eE+-]+|\+Inf|-Inf|NaN))$"
)
LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\[\\"n])*)"$'
)


def split_labels(block):
    """Split a label block on top-level commas, respecting escapes."""
    parts, current, in_quotes, escaped = [], "", False, False
    for ch in block:
        if escaped:
            current += ch
            escaped = False
        elif ch == "\\":
            current += ch
            escaped = True
        elif ch == '"':
            current += ch
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def fail(lineno, message):
    print(f"exposition error at line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} metrics.prom", file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1], encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    types = {}          # family name -> type
    samples = 0
    # histogram family -> {"buckets": [(le, cumulative)], "count": int}
    histograms = {}

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) < 4:
                fail(lineno, f"malformed HELP line: {line!r}")
            continue
        if line.startswith("# TYPE "):
            fields = line.split(" ")
            if len(fields) != 4:
                fail(lineno, f"malformed TYPE line: {line!r}")
            _, _, family, kind = fields
            if kind not in ("counter", "gauge", "histogram"):
                fail(lineno, f"unknown type {kind!r} for {family}")
            if family in types:
                fail(lineno, f"family {family} declared twice")
            types[family] = kind
            if kind == "histogram":
                histograms[family] = {"buckets": {}, "count": {}}
            continue
        if line.startswith("#"):
            fail(lineno, f"unexpected comment line: {line!r}")

        match = SAMPLE_RE.match(line)
        if not match:
            fail(lineno, f"unparsable sample line: {line!r}")
        name, label_block = match.group("name"), match.group("labels")

        labels = {}
        le = None
        if label_block:
            for part in split_labels(label_block):
                label = LABEL_RE.match(part)
                if not label:
                    fail(lineno, f"malformed label {part!r}")
                labels[label.group("key")] = label.group("value")
            le = labels.pop("le", None)

        family, suffix = name, ""
        for candidate in ("_bucket", "_sum", "_count"):
            base = name.removesuffix(candidate)
            if base != name and types.get(base) == "histogram":
                family, suffix = base, candidate
                break
        if family not in types:
            fail(lineno, f"sample {name!r} has no preceding # TYPE")
        if types[family] == "histogram" and not suffix:
            fail(lineno, f"histogram {family} sampled without a suffix")
        if suffix == "_bucket" and le is None:
            fail(lineno, f"{name} bucket sample without an le label")

        series = tuple(sorted(labels.items()))
        if suffix == "_bucket":
            value = float("inf") if le == "+Inf" else float(le)
            buckets = histograms[family]["buckets"].setdefault(series, [])
            buckets.append((value, int(match.group("value"))))
        elif suffix == "_count":
            histograms[family]["count"][series] = int(match.group("value"))
        samples += 1

    for family, data in histograms.items():
        for series, buckets in data["buckets"].items():
            les = [le for le, _ in buckets]
            counts = [count for _, count in buckets]
            if les != sorted(les):
                fail(0, f"{family}{dict(series)}: le values out of order")
            if counts != sorted(counts):
                fail(0, f"{family}{dict(series)}: buckets not cumulative")
            if not les or les[-1] != float("inf"):
                fail(0, f"{family}{dict(series)}: missing +Inf bucket")
            if data["count"].get(series) != counts[-1]:
                fail(0, f"{family}{dict(series)}: _count != +Inf bucket")

    if samples == 0:
        fail(0, "exposition contains no samples")
    print(f"ok: {samples} samples across {len(types)} families "
          f"({sum(1 for t in types.values() if t == 'histogram')} histograms)")


if __name__ == "__main__":
    main()
