#!/usr/bin/env python3
"""Validator for the merged fleet timeline the coordinator serves/writes.

CI smoke check for distributed tracing: fails (exit 1) unless the merged
trace is well-formed and causally consistent. Two input shapes:

  --tracez FILE   the /tracez JSON snapshot:
                  {"dropped": N, "processes": [{"process": ...,
                   "spans": [...]}], "truncated": M}
  --chrome FILE   the Perfetto-loadable Chrome trace written by
                  --trace-out: process_name metadata ("M") events name one
                  track per process, "X" events carry span_id/parent_id.

Checks, for either shape:

  * valid JSON with the expected top-level structure
  * spans from at least --min-processes distinct processes
  * one of the processes is the coordinator
  * every worker span's parent resolves — to another span of the same
    worker (its shard root) or to a coordinator span (its shard's assign)
  * no worker span starts before its resolved parent (the re-based,
    clamped merged timeline keeps causal order)
"""

import argparse
import json
import sys


def fail(message):
    print(f"check_fleet_trace: {message}", file=sys.stderr)
    sys.exit(1)


def check_causal_order(worker_spans, coordinator_starts, label):
    """worker_spans: list of (name, span_id, parent_id, start) per process.
    coordinator_starts: {span_id: start}. Returns the span count checked."""
    checked = 0
    for process, spans in worker_spans.items():
        own = {span_id: start for (_, span_id, _, start) in spans}
        for name, span_id, parent_id, start in spans:
            checked += 1
            if parent_id in own:
                parent_start = own[parent_id]
            elif parent_id in coordinator_starts:
                parent_start = coordinator_starts[parent_id]
            else:
                fail(f"{label}: {process} span '{name}' (id {span_id}) has "
                     f"unresolvable parent {parent_id}")
            # Sub-nanosecond tolerance for the µs float round-trip.
            if start < parent_start - 1e-6:
                fail(f"{label}: {process} span '{name}' starts at {start} "
                     f"before its parent at {parent_start}")
    return checked


def check_tracez(path, min_processes, quiet):
    with open(path) as handle:
        merged = json.load(handle)
    for key in ("dropped", "processes", "truncated"):
        if key not in merged:
            fail(f"{path}: missing top-level key '{key}'")
    populated = [p for p in merged["processes"] if p["spans"]]
    if len(populated) < min_processes:
        fail(f"{path}: spans from {len(populated)} processes, "
             f"need {min_processes}")
    names = [p["process"] for p in populated]
    if "coordinator" not in names:
        fail(f"{path}: no coordinator track among {names}")

    coordinator_starts = {}
    worker_spans = {}
    for process in populated:
        if process["process"] == "coordinator":
            for span in process["spans"]:
                coordinator_starts[span["id"]] = span["start_ns"]
        else:
            worker_spans[process["process"]] = [
                (span["name"], span["id"], span["parent"], span["start_ns"])
                for span in process["spans"]
            ]
    checked = check_causal_order(worker_spans, coordinator_starts, path)
    if not quiet:
        total = sum(len(p["spans"]) for p in populated)
        print(f"tracez ok: {total} spans across {len(populated)} processes, "
              f"{checked} worker spans causally parented "
              f"(dropped {merged['dropped']}, truncated {merged['truncated']})")


def check_chrome(path, min_processes, quiet):
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if events is None:
        fail(f"{path}: no traceEvents array")
    track_names = {}  # pid -> process name, from "M" metadata events
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            track_names[event["pid"]] = event["args"]["name"]
    spans_by_pid = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        spans_by_pid.setdefault(event["pid"], []).append(
            (event["name"], event["args"]["span_id"],
             event["args"]["parent_id"], event["ts"]))
    populated = [pid for pid in spans_by_pid if spans_by_pid[pid]]
    if len(populated) < min_processes:
        fail(f"{path}: spans from {len(populated)} tracks, "
             f"need {min_processes}")
    for pid in populated:
        if pid not in track_names:
            fail(f"{path}: pid {pid} has spans but no process_name metadata")
    coordinator_pids = [p for p, n in track_names.items() if n == "coordinator"]
    if not coordinator_pids:
        fail(f"{path}: no coordinator track among {sorted(track_names.values())}")

    coordinator_starts = {}
    worker_spans = {}
    for pid, spans in spans_by_pid.items():
        if pid in coordinator_pids:
            for _, span_id, _, ts in spans:
                coordinator_starts[span_id] = ts
        else:
            worker_spans[track_names[pid]] = spans
    checked = check_causal_order(worker_spans, coordinator_starts, path)
    if not quiet:
        total = sum(len(s) for s in spans_by_pid.values())
        print(f"chrome trace ok: {total} spans across {len(populated)} "
              f"named tracks, {checked} worker spans causally parented")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--tracez", help="merged /tracez JSON snapshot")
    group.add_argument("--chrome", help="merged Chrome/Perfetto trace file")
    parser.add_argument("--min-processes", type=int, default=2,
                        help="minimum distinct processes with spans")
    parser.add_argument("--quiet", action="store_true",
                        help="no output on success (polling loops)")
    args = parser.parse_args()
    try:
        if args.tracez:
            check_tracez(args.tracez, args.min_processes, args.quiet)
        else:
            check_chrome(args.chrome, args.min_processes, args.quiet)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
        fail(f"{error!r}")


if __name__ == "__main__":
    main()
