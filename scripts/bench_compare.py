#!/usr/bin/env python3
"""Perf-regression gate over dcv-bench-v1 snapshots.

Compares two BENCH_<name>.json files (written by any bench's `--json OUT`)
and exits non-zero when a hot-path metric regressed beyond the threshold
(default 15%). A metric gates only if its `better` direction is "lower" or
"higher"; "none" metrics are informational and printed but never fail the
comparison. The gated statistic is p50, falling back to mean when the
snapshot carries a single sample (for count == 1 they coincide).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Exit codes: 0 ok, 1 regression(s) found, 2 usage / malformed snapshot.

Checked-in baselines and how to refresh them
--------------------------------------------
CI gates every run against the snapshots in bench/baselines/ (one
BENCH_<name>.json per bench). Wall-clock metrics (ms, devices/s) are
machine-dependent, so the CI gate uses a deliberately generous
--threshold: it catches order-of-magnitude regressions across machine
classes, while ratio metrics (e.g. bench_hotpath's *_speedup_ratio) are
machine-independent and meaningful at any threshold. To refresh after an
intentional performance change:

    cmake --build build --target bench_pipeline bench_hotpath
    ./build/bench/bench_pipeline --json bench/baselines/BENCH_pipeline.json
    ./build/bench/bench_hotpath  --json bench/baselines/BENCH_hotpath.json

then commit the updated JSON together with the change that moved the
numbers, and say in the commit message why the baseline moved. Never
refresh a baseline to silence a gate you cannot explain.
"""

import argparse
import json
import sys


def load_snapshot(path):
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")
    if data.get("schema") != "dcv-bench-v1":
        sys.exit(f"bench_compare: {path}: not a dcv-bench-v1 snapshot "
                 f"(schema={data.get('schema')!r})")
    if not isinstance(data.get("metrics"), dict):
        sys.exit(f"bench_compare: {path}: missing metrics object")
    return data


def gate_value(metric):
    """The statistic the gate compares: p50, or mean for 1-sample metrics."""
    if metric.get("count", 0) > 1 and "p50" in metric:
        return metric["p50"]
    return metric.get("mean", metric.get("p50"))


def main():
    parser = argparse.ArgumentParser(
        description="diff two dcv-bench-v1 snapshots, fail on regressions")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the gate "
                             "(default 0.15 = 15%%)")
    args = parser.parse_args()

    base = load_snapshot(args.baseline)
    curr = load_snapshot(args.current)
    if base.get("bench") != curr.get("bench"):
        sys.exit(f"bench_compare: snapshot mismatch: baseline is "
                 f"{base.get('bench')!r}, current is {curr.get('bench')!r}")

    print(f"bench_compare: {base['bench']} "
          f"(threshold {100 * args.threshold:.0f}%)")
    print(f"  {'metric':<42} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}  verdict")

    regressions = []
    compared = 0
    for name, base_metric in sorted(base["metrics"].items()):
        curr_metric = curr["metrics"].get(name)
        if curr_metric is None:
            print(f"  {name:<42} {'':>12} {'':>12} {'':>8}  "
                  "MISSING in current (skipped)")
            continue
        better = base_metric.get("better", "none")
        base_value = gate_value(base_metric)
        curr_value = gate_value(curr_metric)
        if base_value is None or curr_value is None:
            continue

        if better == "lower":
            delta = (curr_value - base_value) / base_value if base_value else 0.0
        elif better == "higher":
            delta = (base_value - curr_value) / base_value if base_value else 0.0
        else:
            print(f"  {name:<42} {base_value:>12.4g} {curr_value:>12.4g} "
                  f"{'':>8}  info")
            continue

        compared += 1
        regressed = delta > args.threshold
        if regressed:
            regressions.append((name, delta))
        # delta > 0 always means "worse", whatever the direction.
        print(f"  {name:<42} {base_value:>12.4g} {curr_value:>12.4g} "
              f"{100 * delta:>+7.1f}%  "
              f"{'REGRESSED' if regressed else 'ok'}")

    new_metrics = sorted(set(curr["metrics"]) - set(base["metrics"]))
    for name in new_metrics:
        print(f"  {name:<42} (new metric, not gated)")

    if regressions:
        print(f"\nbench_compare: FAIL — {len(regressions)} of {compared} "
              f"gated metrics regressed > {100 * args.threshold:.0f}%:")
        for name, delta in regressions:
            print(f"  {name}: {100 * delta:+.1f}%")
        return 1
    print(f"\nbench_compare: ok — {compared} gated metrics within "
          f"{100 * args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
