#!/usr/bin/env python3
"""Smoke-drive a running change-gate server (rcdc_validate --serve or
dcv_gate) over its public HTTP surface:

  1. Concurrency: N parallel POST /precheck of the same plan must all
     answer 200 with identical bodies (the serving layer must not change
     answers); a bad plan answers 400; POST /nsg-check answers 200 with a
     decision line.
  2. Admission control: a storm of concurrent prechecks against a server
     started with a deliberately small worker pool must surface at least
     one 429 with a Retry-After header, and /readyz must flip to 503 with
     the queue-saturation detail while the storm runs — then recover to
     200 once it drains.
  3. Exposition: /metrics contains the per-request HTTP series and the
     gate counters (written to --metrics-out for the exposition linter).

Exits non-zero (with a FAIL line) on any violated expectation.
"""

import argparse
import http.client
import sys
import threading
import time

GOOD_PLAN = "change renumber ToR\nset-asn %s 64900\n"
BAD_PLAN = "change ghost\nset-asn NoSuchDevice 1\n"
NSG_TABLE = (
    "priority,name,source,src_ports,destination,dst_ports,protocol,access\n"
    "4096,DenyAllInBound,Any,Any,Any,Any,Any,Deny\n"
)


def request(port, method, target, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, target, body=body)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def fail(message):
    print(f"gate_smoke: FAIL {message}")
    sys.exit(1)


def pick_device(port):
    """Grabs a device name to renumber from the /gatez-served topology via
    a probe plan: try a handful of generator/figure names."""
    for name in ("T0-0-0", "ToR1", "tor-0"):
        status, _, body = request(port, "POST", "/precheck",
                                  GOOD_PLAN % name)
        if status == 200:
            return name, body
    fail("no probe device produced a 200 precheck")


def phase_concurrency(port, clients):
    name, expected = pick_device(port)
    results = [None] * clients
    def one(i):
        results[i] = request(port, "POST", "/precheck", GOOD_PLAN % name)
    threads = [threading.Thread(target=one, args=(i,)) for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for status, _, body in results:
        if status != 200:
            fail(f"concurrent precheck answered {status}")
        if body != expected:
            fail("concurrent precheck bodies diverge")
    if not expected.startswith(b"decision: "):
        fail(f"unexpected precheck body: {expected[:80]!r}")

    status, _, body = request(port, "POST", "/precheck", BAD_PLAN)
    if status != 400:
        fail(f"bad plan answered {status}, want 400")
    status, _, body = request(
        port, "POST", "/nsg-check?vnet=smoke&space=10.1.0.0/16&db=1",
        NSG_TABLE)
    if status != 200 or not body.startswith(b"decision: "):
        fail(f"nsg-check answered {status}: {body[:80]!r}")
    print(f"gate_smoke: concurrency ok ({clients} identical 200s, "
          "400 on bad plan, nsg-check serves)")
    return name


def phase_overload(port, device, storm_clients, duration):
    """Open-ended storm until both overload signals are observed."""
    saw_429 = threading.Event()
    retry_after_ok = threading.Event()
    saw_503 = threading.Event()
    stop = threading.Event()
    # Volume, not weight, saturates the small worker pool's queue.
    plan = GOOD_PLAN % device

    def stormer():
        while not stop.is_set():
            try:
                status, headers, _ = request(port, "POST", "/precheck", plan,
                                             timeout=30)
                if status == 429:
                    saw_429.set()
                    if headers.get("Retry-After"):
                        retry_after_ok.set()
            except OSError:
                pass

    def readyz_poller():
        while not stop.is_set():
            try:
                status, _, body = request(port, "GET", "/readyz", timeout=30)
                if status == 503 and b"saturation" in body:
                    saw_503.set()
            except OSError:
                pass
            time.sleep(0.02)

    threads = [threading.Thread(target=stormer)
               for _ in range(storm_clients)]
    threads.append(threading.Thread(target=readyz_poller))
    for t in threads:
        t.start()
    deadline = time.time() + duration
    while time.time() < deadline:
        if saw_429.is_set() and retry_after_ok.is_set() and saw_503.is_set():
            break
        time.sleep(0.05)
    stop.set()
    for t in threads:
        t.join()
    if not saw_429.is_set():
        fail("storm never produced a 429")
    if not retry_after_ok.is_set():
        fail("429 responses carried no Retry-After header")
    if not saw_503.is_set():
        fail("/readyz never flipped to 503 with the saturation detail")

    # Recovery: once the storm drains, readiness must come back.
    for _ in range(100):
        status, _, _ = request(port, "GET", "/readyz")
        if status == 200:
            print("gate_smoke: overload ok (429 + Retry-After, /readyz "
                  "503 under storm, 200 after)")
            return
        time.sleep(0.2)
    fail("/readyz did not recover after the storm")


def phase_metrics(port, metrics_out, expect_429):
    status, _, body = request(port, "GET", "/metrics")
    if status != 200:
        fail(f"/metrics answered {status}")
    text = body.decode()
    for series in ("dcv_http_requests_total", "dcv_http_request_ns",
                   "dcv_http_open_connections", "dcv_http_queued_requests",
                   "dcv_gate_prechecks_total", "dcv_gate_nsg_checks_total",
                   "dcv_gate_precheck_batches_total"):
        if series not in text:
            fail(f"/metrics is missing {series}")
    if expect_429 and 'code="429"' not in text:
        fail("no 429 sample reached dcv_http_requests_total")
    status, _, body = request(port, "GET", "/gatez")
    if status != 200 or b"prechecks served" not in body:
        fail(f"/gatez answered {status}: {body[:80]!r}")
    if metrics_out:
        with open(metrics_out, "w") as out:
            out.write(text)
    print("gate_smoke: metrics ok (http + gate series present, "
          f"exposition saved to {metrics_out or 'nowhere'})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent prechecks in the correctness phase")
    parser.add_argument("--storm-clients", type=int, default=24,
                        help="closed-loop stormers in the overload phase")
    parser.add_argument("--storm-seconds", type=float, default=60.0,
                        help="overload phase bound")
    parser.add_argument("--skip-overload", action="store_true",
                        help="for servers with full-size worker pools")
    parser.add_argument("--metrics-out", default="")
    args = parser.parse_args()

    # Wait for the server (and its first cycle, when pipeline-backed).
    for _ in range(200):
        try:
            status, _, _ = request(args.port, "GET", "/readyz", timeout=5)
            if status == 200:
                break
        except OSError:
            pass
        time.sleep(0.5)
    else:
        fail("/readyz never answered 200")

    device = phase_concurrency(args.port, args.clients)
    if not args.skip_overload:
        phase_overload(args.port, device, args.storm_clients,
                       args.storm_seconds)
    phase_metrics(args.port, args.metrics_out,
                  expect_429=not args.skip_overload)
    print("gate_smoke: ok")


if __name__ == "__main__":
    main()
