// SecGuru fast path: what does contract checking cost when most contracts
// never reach Z3?
//
// bench_secguru_acl measures the Z3 engine's scaling across rule-count
// bands. This bench measures the interval fast path against that engine on
// the same workload — the band-1000 legacy edge ACL and its regression
// suite — in three regimes:
//
//   1. suite sweep: FastEngine::check_suite vs Engine::check_suite, paired
//      per-run ratios (both sides see the same machine conditions), gated
//      on the median;
//   2. warm re-check: IncrementalSuiteChecker after a 1-rule edit, vs a
//      full fast-path sweep — only contracts whose filter intersects the
//      edited rule's cube are re-verified;
//   3. differential: randomized policies × contracts where FastEngine and
//      Engine must agree on every verdict (exit 3 on any disagreement, the
//      same convention as bench_hotpath's engine cross-check).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "obs/metrics.hpp"
#include "secguru/engine.hpp"
#include "secguru/fast_engine.hpp"
#include "secguru/refactor.hpp"

namespace {

using namespace dcv;
using namespace dcv::secguru;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Appends the 1-rule edit for the warm regime: a narrow whitelist permit
/// (one host to one /28 service endpoint on 443) whose cube intersects
/// exactly one regression contract's filter.
Policy with_one_rule_edit(const Policy& base) {
  Policy edited = base;
  edited.rules.push_back(Rule{
      .action = Action::kPermit,
      .protocol = net::ProtocolSpec::tcp(),
      .src = net::Prefix::parse("8.8.8.8/32"),
      .src_ports = net::PortRange::any(),
      .dst = net::Prefix::parse("104.208.0.16/28"),
      .dst_ports = net::PortRange::exactly(443),
      .comment = "bench: 1-rule edit"});
  return edited;
}

bool same_failures(const PolicyReport& a, const PolicyReport& b) {
  if (a.failures.size() != b.failures.size()) return false;
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    if (a.failures[i].contract_name != b.failures[i].contract_name) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_secguru");
  obs::MetricsRegistry registry;

  // The band-1000 workload of bench_secguru_acl: ~1000 rules, ~74
  // contracts (the paper's "approximately 300ms ... takes a second" band).
  const LegacyAclParams params{.owned_prefixes = 24,
                               .services = 60,
                               .whitelist_entries_per_service = 12,
                               .zero_day_blocks = 20};
  const Policy acl = generate_legacy_edge_acl(params);
  const ContractSuite suite = edge_acl_contracts(params);

  std::printf("== secguru fast path (%zu rules, %zu contracts) ==\n\n",
              acl.rules.size(), suite.contracts.size());

  Engine z3_engine;
  FastEngine fast(FastEngineConfig{}, &registry);

  // -- suite sweep: fast path vs Z3, paired medians -----------------------
  (void)z3_engine.check_suite(acl, suite);  // warmup (Z3 context, caches)
  (void)fast.check_suite(acl, suite);
  std::array<double, 3> paired_speedup{};
  double z3_s = 1e300;
  double fast_s = 1e300;
  PolicyReport z3_report;
  PolicyReport fast_report;
  for (std::size_t run = 0; run < paired_speedup.size(); ++run) {
    auto start = std::chrono::steady_clock::now();
    z3_report = z3_engine.check_suite(acl, suite);
    const double run_z3 = seconds_since(start);
    start = std::chrono::steady_clock::now();
    fast_report = fast.check_suite(acl, suite);
    const double run_fast = seconds_since(start);
    z3_s = std::min(z3_s, run_z3);
    fast_s = std::min(fast_s, run_fast);
    paired_speedup[run] = run_z3 / run_fast;
  }
  if (!same_failures(z3_report, fast_report)) {
    std::printf("FATAL: engines disagree on the edge suite (%zu vs %zu "
                "failures)\n",
                z3_report.failures.size(), fast_report.failures.size());
    return 3;
  }
  std::sort(paired_speedup.begin(), paired_speedup.end());
  const double suite_speedup = paired_speedup[paired_speedup.size() / 2];
  const double hit_fraction =
      static_cast<double>(fast.fastpath_hits()) /
      static_cast<double>(fast.fastpath_hits() + fast.smt_fallbacks());
  std::printf("suite sweep (best of %zu):\n", paired_speedup.size());
  std::printf("  Z3 engine  : %8.1f ms\n", z3_s * 1e3);
  std::printf("  fast path  : %8.3f ms  (%.0f%% decided without Z3)\n",
              fast_s * 1e3, hit_fraction * 100.0);
  std::printf("  speedup: %.1fx (acceptance floor 5x)\n\n", suite_speedup);
  // The frozen Z3 baseline drifting with machine load is noise, not a
  // product regression — informational only.
  report.value("suite_z3_ms", "ms", z3_s * 1e3, "none");
  report.value("suite_fast_ms", "ms", fast_s * 1e3, "lower");
  report.value("suite_speedup_ratio", "x", suite_speedup, "higher");
  report.value("fastpath_hit_fraction", "ratio", hit_fraction, "higher");

  // -- warm re-check after a 1-rule edit ----------------------------------
  const Policy edited = with_one_rule_edit(acl);
  IncrementalSuiteChecker checker(fast, suite, &registry);
  (void)checker.check(acl);  // prime the cache
  std::array<double, 5> warm_paired{};
  double warm_s = 1e300;
  double full_s = 1e300;
  std::size_t reverified = 0;
  for (std::size_t run = 0; run < warm_paired.size(); ++run) {
    // Alternate edit/revert so every timed check sees a 1-rule diff.
    const Policy& next = run % 2 == 0 ? edited : acl;
    auto start = std::chrono::steady_clock::now();
    const auto outcome = checker.check(next);
    const double run_warm = seconds_since(start);
    start = std::chrono::steady_clock::now();
    const PolicyReport full = fast.check_suite(next, suite);
    const double run_full = seconds_since(start);
    if (!same_failures(outcome.report, full)) {
      std::printf("FATAL: incremental re-check disagrees with full check\n");
      return 3;
    }
    warm_s = std::min(warm_s, run_warm);
    full_s = std::min(full_s, run_full);
    warm_paired[run] = run_full / run_warm;
    reverified = outcome.reverified;
  }
  std::sort(warm_paired.begin(), warm_paired.end());
  const double warm_speedup = warm_paired[warm_paired.size() / 2];
  std::printf("warm re-check after 1-rule edit (best of %zu):\n",
              warm_paired.size());
  std::printf("  full fast sweep : %8.3f ms (%zu contracts)\n", full_s * 1e3,
              suite.contracts.size());
  std::printf("  incremental     : %8.3f ms (%zu re-verified)\n",
              warm_s * 1e3, reverified);
  std::printf("  warm speedup: %.1fx (acceptance floor 3x)\n\n",
              warm_speedup);
  report.value("warm_full_ms", "ms", full_s * 1e3, "none");
  report.value("warm_recheck_ms", "ms", warm_s * 1e3, "lower");
  report.value("warm_speedup_ratio", "x", warm_speedup, "higher");

  // -- randomized differential: FastEngine must agree with Engine ---------
  std::mt19937_64 rng(20190819);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(4, 30);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> port_pick(0, 4);
  constexpr std::uint16_t kPorts[] = {80, 443, 445, 1433, 0xFFFF};
  std::size_t cases = 0;
  const auto diff_start = std::chrono::steady_clock::now();
  for (int trial = 0; trial < 250; ++trial) {
    Policy policy{.name = "differential",
                  .semantics = coin(rng) == 0
                                   ? PolicySemantics::kFirstApplicable
                                   : PolicySemantics::kDenyOverrides,
                  .rules = {}};
    for (int i = 0; i < 8; ++i) {
      policy.rules.push_back(Rule{
          .action = coin(rng) == 0 ? Action::kPermit : Action::kDeny,
          .protocol = coin(rng) == 0 ? net::ProtocolSpec::any()
                                     : net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = coin(rng) == 0
                           ? net::PortRange::any()
                           : net::PortRange::exactly(
                                 kPorts[port_pick(rng)])});
    }
    for (int c = 0; c < 8; ++c) {
      const ConnectivityContract contract{
          .name = "c" + std::to_string(cases),
          .expect = coin(rng) == 0 ? Expectation::kAllow
                                   : Expectation::kDeny,
          .protocol = coin(rng) == 0 ? net::ProtocolSpec::any()
                                     : net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = coin(rng) == 0
                           ? net::PortRange::any()
                           : net::PortRange::exactly(
                                 kPorts[port_pick(rng)])};
      const auto fast_result = fast.check(policy, contract);
      const auto z3_result = z3_engine.check(policy, contract);
      ++cases;
      if (fast_result.holds != z3_result.holds) {
        std::printf("FATAL: differential disagreement on case %zu\n", cases);
        return 3;
      }
      if (!fast_result.holds) {
        // The fast witness must really violate the expectation.
        if (!fast_result.witness.has_value() ||
            !contract.covers(*fast_result.witness) ||
            evaluate(policy, *fast_result.witness).allowed !=
                (contract.expect == Expectation::kDeny)) {
          std::printf("FATAL: invalid fast-path witness on case %zu\n",
                      cases);
          return 3;
        }
      }
    }
  }
  const double diff_s = seconds_since(diff_start);
  std::printf("differential: %zu randomized cases agree (%.1f s)\n\n",
              cases, diff_s);
  report.value("differential_cases", "cases",
               static_cast<double>(cases), "higher");

  report.workload("rules", static_cast<double>(acl.rules.size()));
  report.workload("contracts", static_cast<double>(suite.contracts.size()));
  report.workload("differential_trials", 250.0);
  report.attach_registry(&registry);

  const bool pass =
      suite_speedup >= 5.0 && warm_speedup >= 3.0 && cases >= 2000;
  std::printf("acceptance: suite >= 5x %s, warm >= 3x %s, "
              "differential >= 2000 cases %s\n",
              suite_speedup >= 5.0 ? "OK" : "FAIL",
              warm_speedup >= 3.0 ? "OK" : "FAIL",
              cases >= 2000 ? "OK" : "FAIL");

  if (!json_out.empty() && !report.write(json_out)) return 1;
  return pass ? 0 : 2;
}
