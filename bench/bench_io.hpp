#pragma once

// Shared --json reporting for the bench suite: every bench emits one
// BENCH_<name>.json in the dcv-bench-v1 schema so scripts/bench_compare.py
// can diff any two snapshots (same bench, different commits) and gate on
// hot-path regressions:
//
//   {
//     "schema": "dcv-bench-v1",
//     "bench": "<name>",
//     "workload": {"devices": 1248, ...},            // params, repeatability
//     "metrics": {
//       "<metric>": {"unit": "ns", "better": "lower", "count": N,
//                    "mean": ..., "min": ..., "p50": ..., "p90": ...,
//                    "p99": ..., "max": ...},
//       ...
//     },
//     "registry": {...} | null                        // obs snapshot
//   }
//
// "better" tells the comparator the regression direction: "lower" for
// latencies, "higher" for throughputs, "none" for informational values
// that must not gate.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"

namespace dcv::benchio {

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

inline std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void workload(const std::string& key, double value) {
    workload_.emplace_back(key, format_number(value));
  }
  void workload(const std::string& key, const std::string& value) {
    workload_.emplace_back(key, "\"" + json_escape(value) + "\"");
  }

  /// Records a metric from raw samples; percentiles by nearest rank.
  void metric(const std::string& name, const std::string& unit,
              std::vector<double> samples,
              const std::string& better = "lower") {
    if (samples.empty()) return;
    std::sort(samples.begin(), samples.end());
    const auto rank = [&](double q) {
      const auto index = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(samples.size())));
      return samples[std::min(samples.size() - 1,
                              index == 0 ? 0 : index - 1)];
    };
    double sum = 0.0;
    for (const double s : samples) sum += s;
    Metric m{name, unit, better, samples.size(),
             sum / static_cast<double>(samples.size()),
             samples.front(), rank(0.50), rank(0.90), rank(0.99),
             samples.back()};
    metrics_.push_back(std::move(m));
  }

  /// Single-observation convenience (count 1, all percentiles the value).
  void value(const std::string& name, const std::string& unit, double v,
             const std::string& better = "lower") {
    metric(name, unit, {v}, better);
  }

  /// Embeds a snapshot of the registry at write time.
  void attach_registry(const obs::MetricsRegistry* registry) {
    registry_ = registry;
  }

  /// Writable-registry variant: additionally refreshes the
  /// dcv_process_*_rss_bytes gauges right before the snapshot is taken, so
  /// the embedded registry carries the process footprint at report time.
  void attach_registry(obs::MetricsRegistry* registry) {
    registry_ = registry;
    mutable_registry_ = registry;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"schema\":\"dcv-bench-v1\",\"bench\":\"" +
                      json_escape(name_) + "\",\"workload\":{";
    bool first = true;
    for (const auto& [key, value] : workload_) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(key) + "\":" + value;
    }
    out += "},\"metrics\":{";
    first = true;
    const auto emit = [&](const Metric& m) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(m.name) + "\":{\"unit\":\"" +
             json_escape(m.unit) + "\",\"better\":\"" + m.better +
             "\",\"count\":" + std::to_string(m.count) +
             ",\"mean\":" + format_number(m.mean) +
             ",\"min\":" + format_number(m.min) +
             ",\"p50\":" + format_number(m.p50) +
             ",\"p90\":" + format_number(m.p90) +
             ",\"p99\":" + format_number(m.p99) +
             ",\"max\":" + format_number(m.max) + "}";
    };
    for (const Metric& m : metrics_) emit(m);
    // Every report carries the process footprint at serialization time;
    // "none" keeps the comparator from gating on allocator noise.
    const obs::ProcessStats stats = obs::read_process_stats();
    const auto footprint = [](std::string name, double v) {
      return Metric{std::move(name), "bytes", "none", 1, v, v, v, v, v, v};
    };
    emit(footprint("process_rss_bytes",
                   static_cast<double>(stats.rss_bytes)));
    emit(footprint("process_peak_rss_bytes",
                   static_cast<double>(stats.peak_rss_bytes)));
    out += "},\"registry\":";
    if (mutable_registry_ != nullptr) {
      obs::sample_process_gauges(*mutable_registry_);
    }
    out += registry_ != nullptr ? obs::write_json(*registry_) : "null";
    return out + "}";
  }

  /// Atomic write (tmp + rename); prints and returns false on failure.
  bool write(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n", tmp.c_str());
        return false;
      }
      out << to_json();
      if (!out.good()) return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::fprintf(stderr, "bench: cannot rename %s\n", tmp.c_str());
      return false;
    }
    std::printf("bench: wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    std::string better;
    std::size_t count;
    double mean, min, p50, p90, p99, max;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> workload_;
  std::vector<Metric> metrics_;
  const obs::MetricsRegistry* registry_ = nullptr;
  obs::MetricsRegistry* mutable_registry_ = nullptr;
};

/// Extracts "--json OUT" from argv (compacting argc/argv so benches that
/// forward the remaining args, e.g. to google-benchmark, never see it).
/// Returns the output path, or "" when the flag is absent.
inline std::string extract_json_flag(int& argc, char** argv) {
  std::string out;
  int write_index = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      out = argv[++i];
      continue;
    }
    argv[write_index++] = argv[i];
  }
  argc = write_index;
  return out;
}

}  // namespace dcv::benchio
