// Experiment C1 (DESIGN.md): RCDC validation at datacenter scale.
//
// Paper claims reproduced in shape (§1, §2.6.3):
//  * "RCDC can check all-pairs of redundant routes in a datacenter with up
//    to 10^4 routers in less than 3 minutes on a single CPU";
//  * "Most devices in our datacenter network have routing tables with
//    several thousands of prefixes. ... RCDC takes 180ms to verify all
//    contracts on a single device on average";
//  * validation is local, so it parallelizes trivially (§2.4).
//
// FIBs are synthesized on demand from architecture metadata (the fault-free
// converged state; equivalence with full EBGP propagation is asserted by
// the test suite), so memory stays O(one device) per worker at every scale.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_io.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/validator.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;

struct Tier {
  const char* name;
  topo::ClosParams params;
  bool parallel_only = false;  // skip the single-thread run (too slow)
};

void run_tier(const Tier& tier, benchio::BenchReport& report) {
  const topo::Topology topology = topo::build_clos(tier.params);
  const topo::MetadataService metadata(topology);
  const routing::FibSynthesizer synthesizer(metadata);
  const rcdc::SynthesizedFibSource fibs(synthesizer);
  const rcdc::DatacenterValidator validator(
      metadata, fibs, rcdc::make_trie_verifier_factory());

  const auto devices = topology.device_count();
  const auto prefixes = metadata.all_prefixes().size();

  double single_seconds = 0.0;
  std::size_t contracts = 0;
  if (!tier.parallel_only) {
    const auto summary = validator.run(/*threads=*/1);
    if (!summary.violations.empty()) {
      std::printf("  UNEXPECTED VIOLATIONS: %zu\n",
                  summary.violations.size());
    }
    single_seconds =
        std::chrono::duration<double>(summary.elapsed).count();
    contracts = summary.contracts_checked;
  }

  const unsigned threads =
      std::max(2u, std::thread::hardware_concurrency());
  const auto parallel = validator.run(threads);
  const double parallel_seconds =
      std::chrono::duration<double>(parallel.elapsed).count();
  if (contracts == 0) contracts = parallel.contracts_checked;

  const std::string tag = tier.name;
  report.workload(std::string("devices_") + tag,
                  static_cast<double>(devices));
  if (!tier.parallel_only) {
    report.value("single_thread_s_" + tag, "s", single_seconds);
    report.value("ms_per_device_" + tag, "ms",
                 1000.0 * single_seconds / static_cast<double>(devices));
  }
  report.value("parallel_s_" + tag, "s", parallel_seconds);

  std::printf(
      "  %-6s %8zu %9zu %12zu %14.2f %14.3f %11.2f (x%u threads)\n",
      tier.name, devices, prefixes, contracts, single_seconds,
      tier.parallel_only
          ? 0.0
          : 1000.0 * single_seconds / static_cast<double>(devices),
      parallel_seconds, threads);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  dcv::benchio::BenchReport report("bench_rcdc_scale");
  std::printf(
      "== C1: local validation at scale (cf. SS1/SS2.6.3) ==\n"
      "Claim shape: 10^4 routers, FIBs with thousands of prefixes, all\n"
      "contracts checked in < 3 minutes on a single CPU; linear in devices\n"
      "and embarrassingly parallel.\n\n");
  std::printf(
      "  tier    devices  prefixes    contracts  1-thread (s)  ms/device"
      "      parallel (s)\n");

  const Tier tiers[] = {
      {"S", {.clusters = 8,
             .tors_per_cluster = 8,
             .leaves_per_cluster = 4,
             .spines_per_plane = 1,
             .regional_spines = 4}},
      {"M", {.clusters = 24,
             .tors_per_cluster = 16,
             .leaves_per_cluster = 6,
             .spines_per_plane = 2,
             .regional_spines = 4}},
      {"L", {.clusters = 48,
             .tors_per_cluster = 32,
             .leaves_per_cluster = 8,
             .spines_per_plane = 4,
             .regional_spines = 8}},
      // The headline configuration: ~10^4 devices, ~9.2k prefixes per FIB.
      {"XXL", {.clusters = 104,
               .tors_per_cluster = 88,
               .leaves_per_cluster = 8,
               .spines_per_plane = 6,
               .regional_spines = 8}},
  };
  for (const Tier& tier : tiers) run_tier(tier, report);

  std::printf(
      "\nThe XXL single-thread time is the paper's '10^4 routers on a\n"
      "single CPU' number; the ms/device column is its '180ms per device'\n"
      "analog (ours is faster: synthetic FIBs live in cache, no device\n"
      "I/O).\n");
  if (!json_out.empty() && !report.write(json_out)) return 1;
  return 0;
}
