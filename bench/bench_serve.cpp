// Change-gate serving: what concurrency buys at the precheck front door.
//
// Three experiment rows, all over real loopback sockets against the
// production HttpServer:
//
//  1. Concurrency overlap (the CI gate). A handler that waits ~5 ms —
//     standing in for the emulator/device-IO wait that dominates a real
//     precheck — is served once by a deliberately serialized server
//     (1 worker, 1 connection slot: the pre-refactor accept loop) and once
//     by the concurrent server (8 workers), under the same 8-connection
//     closed-loop load. Because the handler *waits* rather than computes,
//     the speedup measures latency overlap, not CPU parallelism — the
//     claim holds on a 1-core CI box exactly like bench_dist's
//     sleeping-puller fleet. Gate: >= 3x throughput.
//
//  2. Differential serving (the correctness gate). A fixed mix of change
//     plans is answered (a) concurrently through the batching gate server
//     and (b) one at a time by a fresh serialized gate; response bodies
//     must be byte-identical. Gate: zero mismatches.
//
//  3. Open-loop Poisson storm. Mixed precheck/NSG traffic arrives with
//     exponential inter-arrival times at a swept rate against the full
//     GateService (warm session, batcher, engine pool); reports achieved
//     throughput, latency percentiles, and 429 sheds. Informational.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_io.hpp"
#include "gate/gate_service.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;
using Clock = std::chrono::steady_clock;

/// One blocking HTTP request; returns the raw response ("" on error).
std::string http_request(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(wire.size())) {
    ::close(fd);
    return "";
  }
  std::string raw;
  char buffer[8192];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return raw;
}

std::string post_wire(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

int status_of(const std::string& raw) {
  if (raw.rfind("HTTP/1.1 ", 0) != 0 || raw.size() < 12) return 0;
  return std::atoi(raw.substr(9, 3).c_str());
}

std::string body_of(const std::string& raw) {
  const auto split = raw.find("\r\n\r\n");
  return split == std::string::npos ? "" : raw.substr(split + 4);
}

// --- Row 1: concurrency overlap -------------------------------------------

/// Serves `total` requests of a `wait_ms` handler with `connections`
/// closed-loop clients; returns requests/second.
double run_overlap(unsigned workers, std::size_t connection_slots,
                   int wait_ms, int connections, int total) {
  obs::HttpServerConfig config;
  config.worker_threads = workers;
  config.max_connections = connection_slots;
  config.max_queued_requests = 256;
  obs::HttpServer server(config);
  server.add_route("GET", "/wait", [wait_ms](const obs::HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    return obs::HttpResponse{.body = "ok\n"};
  });
  server.start();

  std::atomic<int> remaining{total};
  std::atomic<int> served{0};
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&] {
      while (remaining.fetch_sub(1) > 0) {
        if (status_of(http_request(server.port(),
                                   "GET /wait HTTP/1.1\r\n\r\n")) == 200) {
          ++served;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.stop();
  if (served.load() != total) {
    std::fprintf(stderr, "bench_serve: overlap row lost requests (%d/%d)\n",
                 served.load(), total);
    std::exit(1);
  }
  return static_cast<double>(total) / wall;
}

// --- Rows 2 + 3: the real gate --------------------------------------------

std::vector<std::string> make_plans() {
  return {
      "change renumber ToR1\nset-asn ToR1 64900\n",
      "change shut ToR1-A1\nshut-link ToR1 A1\n",
      "change renumber ToR3\nset-asn ToR3 64901\n",
      "change down ToR2-A2\ndown-link ToR2 A2\n",
      "change renumber ToR4\nset-asn ToR4 64902\n",
      "change no-op\n",
  };
}

constexpr const char* kNsgBody =
    "priority,name,source,src_ports,destination,dst_ports,protocol,access\n"
    "100,AllowVnetInBound,VirtualNetwork,Any,VirtualNetwork,Any,Any,Allow\n"
    "4096,DenyAllInBound,Any,Any,Any,Any,Any,Deny\n";
constexpr const char* kNsgTarget =
    "/nsg-check?vnet=customer&space=10.1.0.0/16&db=1";

struct StormStats {
  double achieved_rps = 0.0;
  double shed_429 = 0.0;
  std::vector<double> latency_us;
};

/// Open-loop: arrivals follow Exp(rate) regardless of completions.
StormStats run_storm(std::uint16_t port, double rate_rps, double seconds,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> interarrival(rate_rps);
  const auto plans = make_plans();

  std::mutex mutex;
  StormStats stats;
  std::atomic<int> ok{0};
  std::vector<std::thread> inflight;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  auto next = start;
  std::size_t sequence = 0;
  while (true) {
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(interarrival(rng)));
    if (next >= deadline) break;
    std::this_thread::sleep_until(next);
    const std::size_t i = sequence++;
    inflight.emplace_back([&, i] {
      // 70/30 precheck/NSG mix.
      const std::string wire =
          i % 10 < 7 ? post_wire("/precheck", plans[i % plans.size()])
                     : post_wire(kNsgTarget, kNsgBody);
      const auto sent = Clock::now();
      const std::string raw = http_request(port, wire);
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - sent)
              .count();
      const int status = status_of(raw);
      const std::lock_guard lock(mutex);
      if (status == 200) {
        ++ok;
        stats.latency_us.push_back(us);
      } else if (status == 429) {
        stats.shed_429 += 1.0;
      }
    });
  }
  for (auto& request : inflight) request.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  stats.achieved_rps = ok.load() / wall;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  benchio::BenchReport report("bench_serve");
  constexpr int kWaitMs = 5;
  constexpr int kConnections = 8;
  constexpr int kOverlapRequests = 160;
  report.workload("connections", kConnections);
  report.workload("sim_handler_wait_ms", kWaitMs);
  report.workload("overlap_requests", kOverlapRequests);

  // Row 1: serialized (the pre-refactor shape) vs concurrent serving.
  const double serial_rps = run_overlap(/*workers=*/1,
                                        /*connection_slots=*/1, kWaitMs,
                                        kConnections, kOverlapRequests);
  const double concurrent_rps = run_overlap(/*workers=*/8,
                                            /*connection_slots=*/64, kWaitMs,
                                            kConnections, kOverlapRequests);
  const double speedup = concurrent_rps / serial_rps;
  std::printf("overlap @%d connections: serial %.0f req/s, concurrent "
              "%.0f req/s (%.1fx)\n",
              kConnections, serial_rps, concurrent_rps, speedup);
  report.value("overlap_serial_rps", "req/s", serial_rps, "none");
  report.value("overlap_concurrent_rps", "req/s", concurrent_rps, "higher");
  report.value("overlap_speedup_ratio", "x", speedup, "higher");

  // Rows 2 + 3 share one gate-backed server over Figure 3.
  const topo::Topology topology = topo::build_figure3();
  report.workload("devices", static_cast<double>(topology.device_count()));
  obs::MetricsRegistry registry;
  gate::GateConfig gate_config;
  gate_config.metrics = &registry;
  gate::GateService service(topology, gate_config);
  obs::HttpServerConfig http_config;
  http_config.worker_threads = 8;
  http_config.max_queued_requests = 64;
  http_config.metrics = &registry;
  obs::HttpServer server(http_config);
  service.attach(server);
  server.start();

  // Row 2: concurrent responses must be byte-identical to serialized ones.
  const auto plans = make_plans();
  std::vector<std::string> concurrent_bodies(plans.size());
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      clients.emplace_back([&, i] {
        concurrent_bodies[i] = body_of(
            http_request(server.port(), post_wire("/precheck", plans[i])));
      });
    }
    for (auto& client : clients) client.join();
  }
  gate::GateConfig serial_config;
  serial_config.batch_window = std::chrono::milliseconds(0);
  gate::GateService reference(topology, serial_config);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    obs::HttpRequest request;
    request.method = "POST";
    request.target = "/precheck";
    request.body = plans[i];
    if (concurrent_bodies[i] != reference.handle_precheck(request).body) {
      ++mismatches;
      std::fprintf(stderr, "bench_serve: differential mismatch on plan %zu\n",
                   i);
    }
  }
  std::printf("differential: %zu plans concurrent==serialized, "
              "%zu mismatches\n",
              plans.size(), mismatches);
  report.value("differential_mismatches", "count",
               static_cast<double>(mismatches), "none");

  // Row 3: the Poisson storm rate sweep.
  for (const double rate : {40.0, 120.0}) {
    const StormStats stats =
        run_storm(server.port(), rate, /*seconds=*/1.5,
                  /*seed=*/static_cast<std::uint64_t>(rate));
    const std::string tag = "r" + std::to_string(static_cast<int>(rate));
    std::printf("storm %.0f req/s offered: %.0f served/s, %zu sampled, "
                "%.0f shed (429)\n",
                rate, stats.achieved_rps, stats.latency_us.size(),
                stats.shed_429);
    report.value("storm_" + tag + "_achieved_rps", "req/s",
                 stats.achieved_rps, "none");
    report.value("storm_" + tag + "_shed", "count", stats.shed_429, "none");
    if (!stats.latency_us.empty()) {
      report.metric("storm_" + tag + "_latency_us", "us", stats.latency_us,
                    "lower");
    }
  }
  std::printf("gate served %llu prechecks in %llu batches, %llu nsg checks\n",
              static_cast<unsigned long long>(service.prechecks_served()),
              static_cast<unsigned long long>(service.precheck_batches()),
              static_cast<unsigned long long>(service.nsg_checks_served()));
  server.stop();

  report.attach_registry(&registry);
  if (!json_out.empty() && !report.write(json_out)) return 1;

  // The CI gates: concurrency must actually buy throughput, and must not
  // change a single answer.
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_serve: FAIL concurrent/serial speedup %.2fx < 3x\n",
                 speedup);
    return 1;
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "bench_serve: FAIL %zu differential mismatches\n",
                 mismatches);
    return 1;
  }
  std::printf("gates ok: %.1fx >= 3x, 0 mismatches\n", speedup);
  return 0;
}
