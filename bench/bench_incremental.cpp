// Ablation: full re-validation vs device-granularity incremental
// re-validation (DESIGN.md ablation table).
//
// The incremental-verification systems the paper compares against ([21]
// Delta-net, [50] Libra) invest heavily to make *global* checks
// incremental. Locality makes it trivial: a device's verdict depends only
// on its own FIB, so a monitoring cycle needs to re-verify exactly the
// devices whose tables changed. This bench quantifies the verification
// work saved per cycle under a trickle of faults.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rcdc/incremental.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

int main(int argc, char** argv) {
  using namespace dcv;

  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_incremental");

  topo::Topology topology = topo::build_clos(topo::ClosParams{
      .clusters = 24,
      .tors_per_cluster = 16,
      .leaves_per_cluster = 6,
      .spines_per_plane = 2,
      .regional_spines = 4});
  const topo::MetadataService metadata(topology);
  topo::FaultInjector faults(topology, /*seed=*/99);

  std::printf(
      "== ablation: incremental vs full re-validation ==\n"
      "datacenter: %zu devices; one new link fault arrives per cycle\n\n",
      topology.device_count());
  std::printf(
      "  cycle  changed-FIBs  contracts-checked  cycle (ms)  violations\n");

  obs::MetricsRegistry registry;
  rcdc::IncrementalValidator validator(
      metadata, rcdc::make_trie_verifier_factory(&registry), {}, &registry);
  std::vector<double> warm_cycle_ms;
  std::vector<double> warm_contracts;
  for (int cycle = 0; cycle < 8; ++cycle) {
    if (cycle > 0) faults.random_link_failures(1);
    const routing::BgpSimulator sim(topology, &faults);
    const rcdc::SimulatorFibSource fibs(sim);
    const auto start = std::chrono::steady_clock::now();
    const auto result = validator.run_cycle(fibs, /*threads=*/2);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (cycle == 0) {
      report.value("cold_cycle_ms", "ms", ms);
    } else {
      warm_cycle_ms.push_back(ms);
      warm_contracts.push_back(
          static_cast<double>(result.contracts_checked));
    }
    std::printf("  %5d  %12zu  %17zu  %10.1f  %10zu%s\n", cycle,
                result.devices_revalidated, result.contracts_checked, ms,
                result.violations.size(),
                cycle == 0 ? "   (cold start: everything validates)" : "");
  }

  std::printf(
      "\nAfter the cold start, per-cycle verification drops to the devices\n"
      "whose FIBs actually changed. The saving depends on the fault: a\n"
      "failure on a ToR uplink changes that prefix's ECMP set in every\n"
      "ToR's FIB (most devices revalidate), while an upper-layer failure\n"
      "stays local (see the small cycles). Either way the cached verdicts\n"
      "of untouched devices are reused verbatim. (Cycle time is dominated\n"
      "by re-running routing, standing in for table pulls.)\n");

  std::printf("\n-- metrics registry (Prometheus exposition) --\n%s",
              obs::write_prometheus(registry).c_str());
  if (!json_out.empty()) {
    report.workload("devices",
                    static_cast<double>(topology.device_count()));
    report.metric("warm_cycle_ms", "ms", warm_cycle_ms);
    report.metric("warm_contracts_checked", "contracts", warm_contracts,
                  "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
