// Route-state footprint at fabric scale: the memory half of the compaction
// work (interned AS-paths, per-Rib hop arenas, flat sorted entry records).
//
// Sweeps Clos fabrics of ~1k / ~5k / ~20k devices (~50k behind --large)
// and reports, per tier:
//
//   * compact resident route-state bytes per device — the flat RibEntry
//     records, the per-device hop arenas, and the shared PathTable;
//   * the same converged state priced in the pre-compaction layout (one
//     std::map node per route owning its as_path/next_hop vectors — the
//     exact model ReferenceBgpSimulator::route_state_bytes() uses), so the
//     reduction is measured against identical route content rather than a
//     different convergence result;
//   * cold-convergence throughput in devices per second;
//   * process RSS, via the obs process gauges.
//
// The model is a lower bound on the old layout (vectors priced at size,
// not grown capacity), which makes the gated reduction ratio conservative.
// At the smallest tier the Jacobi oracle actually runs: every device's RIB
// and FIB must match the compact engine bit-for-bit (exit 3 otherwise),
// and the oracle's self-reported bytes validate the model. Larger tiers
// are compact-only — the pre-compaction representation cannot hold a
// 20k-device fabric's route state in CI-sized memory, which is the point.
//
// Acceptance gate: >= 2x bytes-per-device reduction at the largest tier
// run (the ~20k tier by default). Exit 2 on failure.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "routing/bgp_reference.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Mirror of ReferenceBgpSimulator's pre-compaction entry (private there):
/// two owned heap vectors, the flags, identical layout — so sizeof() prices
/// the old representation without materializing it at fabric scale.
struct OldHeapEntry {
  std::vector<topo::Asn> as_path;
  std::vector<topo::DeviceId> next_hops;
  bool connected = false;
  topo::DatacenterId origin_datacenter = 0;
};
using OldMapRib = std::map<net::Prefix, OldHeapEntry>;

/// Bytes the converged route state of `sim` would occupy in the old
/// heap-per-entry layout: per route one red-black tree node (key + value +
/// ~3 pointers and color) plus the two owned vectors at exact size. Same
/// per-entry model as ReferenceBgpSimulator::route_state_bytes(), applied
/// to the compact engine's (identical) fixpoint.
std::size_t modeled_old_bytes(const routing::BgpSimulator& sim,
                              std::size_t device_count) {
  std::size_t total = device_count * sizeof(OldMapRib);
  for (topo::DeviceId d = 0; d < device_count; ++d) {
    const routing::Rib& rib = sim.rib(d);
    for (const routing::RibEntry& entry : rib) {
      total += sizeof(net::Prefix) + sizeof(OldHeapEntry) + 4 * sizeof(void*);
      total += entry.as_path().size() * sizeof(topo::Asn);
      total += rib.next_hops(entry).size() * sizeof(topo::DeviceId);
    }
  }
  return total;
}

struct Tier {
  const char* name;        // metric prefix, e.g. "t20k"
  std::uint32_t clusters;  // ~20 devices per cluster in the shape below
  bool differential;       // run the Jacobi oracle and compare everything
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = benchio::extract_json_flag(argc, argv);
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) large = true;
  }
  benchio::BenchReport report("bench_scale");
  obs::MetricsRegistry registry;

  // One ToR per cluster keeps the prefix count (and so the O(devices x
  // prefixes) route-entry total) at devices/20: the sweep scales fabric
  // breadth without the quadratic blowup that would dwarf CI memory at the
  // top tier. 42 shared devices (38 plane spines + 4 regionals) on top of
  // 20 per cluster.
  std::vector<Tier> tiers{{"t1k", 48, true},
                          {"t5k", 248, false},
                          {"t20k", 998, false}};
  if (large) tiers.push_back({"t50k", 2498, false});

  const unsigned threads = 4;
  const routing::BgpSimOptions options{.threads = threads};
  std::printf("== route-state footprint sweep (%zu tiers, %u threads) ==\n\n",
              tiers.size(), threads);

  double gate_ratio = 0.0;
  std::size_t largest_devices = 0;
  for (const Tier& tier : tiers) {
    const topo::ClosParams params{.clusters = tier.clusters,
                                  .tors_per_cluster = 1,
                                  .leaves_per_cluster = 19,
                                  .spines_per_plane = 2,
                                  .regional_spines = 4};
    const topo::Topology topology = topo::build_clos(params);
    const std::size_t devices = topology.device_count();
    const std::string prefix = tier.name;

    const std::size_t table_before = routing::global_path_table().bytes();
    const auto start = std::chrono::steady_clock::now();
    const routing::BgpSimulator sim(topology, nullptr, &registry, options);
    const double converge_s = seconds_since(start);
    const double devices_per_sec = static_cast<double>(devices) / converge_s;

    // Charge this tier the rib storage plus the path-table growth its own
    // interning caused (the table is process-global and tiers share paths).
    const std::size_t table_delta =
        routing::global_path_table().bytes() - table_before;
    const std::size_t compact_bytes = sim.route_state_bytes() + table_delta;
    const std::size_t old_bytes = modeled_old_bytes(sim, devices);
    const double compact_per_device =
        static_cast<double>(compact_bytes) / static_cast<double>(devices);
    const double old_per_device =
        static_cast<double>(old_bytes) / static_cast<double>(devices);
    const double ratio = old_per_device / compact_per_device;
    gate_ratio = ratio;  // the last (largest) tier gates
    largest_devices = devices;

    const obs::ProcessStats stats = obs::read_process_stats();
    std::printf("%s: %zu devices, %zu links, converged in %.2f s "
                "(%.0f devices/s)\n",
                tier.name, devices, topology.link_count(), converge_s,
                devices_per_sec);
    std::printf("  compact route state: %8.1f MiB  (%7.0f bytes/device)\n",
                static_cast<double>(compact_bytes) / (1024.0 * 1024.0),
                compact_per_device);
    std::printf("  old-layout model   : %8.1f MiB  (%7.0f bytes/device)\n",
                static_cast<double>(old_bytes) / (1024.0 * 1024.0),
                old_per_device);
    std::printf("  reduction: %.2fx   rss: %.1f MiB\n", ratio,
                static_cast<double>(stats.rss_bytes) / (1024.0 * 1024.0));

    report.value(prefix + "_devices_per_sec", "dev/s", devices_per_sec,
                 "higher");
    report.value(prefix + "_compact_bytes_per_device", "bytes",
                 compact_per_device, "lower");
    report.value(prefix + "_old_bytes_per_device", "bytes", old_per_device,
                 "none");
    report.value(prefix + "_reduction_ratio", "x", ratio, "higher");
    report.value(prefix + "_rss_bytes", "bytes",
                 static_cast<double>(stats.rss_bytes), "none");

    if (tier.differential) {
      // The oracle is affordable at this tier: pin the compact engine to
      // bit-identical RIB and FIB fixpoints on every device, and check the
      // old-layout model against the oracle's own accounting (the model
      // prices vectors at size, the oracle at capacity, so model <= actual).
      const routing::ReferenceBgpSimulator ref(topology);
      if (sim.rounds() != ref.rounds()) {
        std::printf("FATAL: engines disagree on rounds (%d vs %d)\n",
                    sim.rounds(), ref.rounds());
        return 3;
      }
      for (const topo::Device& device : topology.devices()) {
        if (sim.rib(device.id) != ref.rib(device.id)) {
          std::printf("FATAL: RIB mismatch at %s\n", device.name.c_str());
          return 3;
        }
        if (sim.fib(device.id) != ref.fib(device.id)) {
          std::printf("FATAL: FIB mismatch at %s\n", device.name.c_str());
          return 3;
        }
      }
      const std::size_t oracle_bytes = ref.route_state_bytes();
      if (old_bytes > oracle_bytes) {
        std::printf("FATAL: old-layout model (%zu) exceeds the oracle's "
                    "actual bytes (%zu)\n",
                    old_bytes, oracle_bytes);
        return 3;
      }
      std::printf("  differential: %zu devices OK; oracle actual %.1f MiB "
                  "(model is a %.2fx lower bound)\n",
                  devices,
                  static_cast<double>(oracle_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(oracle_bytes) /
                      static_cast<double>(old_bytes));
      report.value(prefix + "_oracle_bytes_per_device", "bytes",
                   static_cast<double>(oracle_bytes) /
                       static_cast<double>(devices),
                   "none");
    }
    std::printf("\n");
  }

  report.workload("tiers", static_cast<double>(tiers.size()));
  report.workload("largest_devices", static_cast<double>(largest_devices));
  report.workload("threads", static_cast<double>(threads));
  report.workload("tors_per_cluster", 1.0);
  report.workload("leaves_per_cluster", 19.0);

  const bool pass = gate_ratio >= 2.0;
  std::printf("acceptance: >= 2x bytes/device reduction at %zu devices: "
              "%.2fx %s\n",
              largest_devices, gate_ratio, pass ? "OK" : "FAIL");

  if (!json_out.empty()) {
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return pass ? 0 : 2;
}
