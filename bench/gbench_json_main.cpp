// Custom main for the google-benchmark binaries: behaves exactly like
// benchmark_main (console output, all gbench flags honored) but also
// understands the suite-wide `--json OUT` flag, emitting every run as a
// dcv-bench-v1 snapshot so scripts/bench_compare.py can gate these benches
// alongside the plain ones. The target's CMake rule defines DCV_BENCH_NAME.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_io.hpp"

#ifndef DCV_BENCH_NAME
#error "DCV_BENCH_NAME must be defined by the build rule"
#endif

namespace {

/// Console output as usual, plus a copy of every per-iteration run for the
/// JSON snapshot.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        collected_.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Run>& collected() const {
    return collected_;
  }

 private:
  std::vector<Run> collected_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_out.empty()) {
    dcv::benchio::BenchReport report(DCV_BENCH_NAME);
    report.workload("runs",
                    static_cast<double>(reporter.collected().size()));
    for (const auto& run : reporter.collected()) {
      const double iterations =
          run.iterations == 0 ? 1.0 : static_cast<double>(run.iterations);
      report.value(run.benchmark_name() + "_real_ns", "ns",
                   1e9 * run.real_accumulated_time / iterations);
      report.value(run.benchmark_name() + "_cpu_ns", "ns",
                   1e9 * run.cpu_accumulated_time / iterations);
    }
    if (!report.write(json_out)) {
      benchmark::Shutdown();
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}
