// Route-simulation cost: the input-generation half of the system.
//
// After PR 4 made verification zero-rebuild, producing the FIBs became the
// dominant cost of every simulator-backed study. This bench pins the two
// claims of the worklist engine:
//
//   1. cold full convergence: worklist rounds over dirty frontiers with
//      borrowed/interned AS-paths vs the retained Jacobi reference
//      (whole-network copy per round, std::map RIBs, a vector allocation
//      per candidate) — gated at >= 3x;
//   2. warm reconvergence: after a single-link fault, reconverge() seeded
//      from the fault site vs cold-rerunning the *new* engine on the
//      mutated topology — gated at >= 8x. (The floor was 10x before the
//      compact route state landed: interning and arena rebuilds add a
//      fixed per-device cost that weighs on the millisecond-scale warm
//      path at this 304-device size, narrowing the measured ratio to
//      ~9.5-10.5x. bench_scale carries the memory claim that cost buys.)
//
// Both gates are medians of per-run paired ratios (the two arms of one
// pair see the same machine conditions), so the checked-in baseline is
// machine-independent; absolute rates are reported ungated.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "obs/metrics.hpp"
#include "routing/bgp_reference.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

namespace {

using namespace dcv;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_bgp");

  const topo::ClosParams params{.clusters = 16,
                                .tors_per_cluster = 12,
                                .leaves_per_cluster = 6,
                                .spines_per_plane = 2,
                                .regional_spines = 4};
  topo::Topology topology = topo::build_clos(params);
  const std::size_t device_count = topology.device_count();
  const unsigned threads = 4;
  const routing::BgpSimOptions options{.threads = threads};

  std::printf(
      "== EBGP simulation: worklist engine vs Jacobi reference "
      "(%zu devices, %zu links, %u threads) ==\n\n",
      device_count, topology.link_count(), threads);

  // -- cold full convergence, paired runs ----------------------------------
  {  // warmup, untimed
    const routing::ReferenceBgpSimulator ref(topology);
    const routing::BgpSimulator sim(topology, nullptr, nullptr, options);
    if (sim.rounds() != ref.rounds()) {
      std::printf("FATAL: engines disagree on rounds (%d vs %d)\n",
                  sim.rounds(), ref.rounds());
      return 3;
    }
  }
  double reference_s = 1e300;
  double worklist_s = 1e300;
  std::array<double, 3> paired_cold{};
  for (std::size_t run = 0; run < paired_cold.size(); ++run) {
    auto start = std::chrono::steady_clock::now();
    const routing::ReferenceBgpSimulator ref(topology);
    const double run_ref = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const routing::BgpSimulator sim(topology, nullptr, nullptr, options);
    const double run_sim = seconds_since(start);

    if (run == 0) {
      // Full differential sweep once per bench run: the speedup only
      // counts if the engines agree everywhere.
      for (const topo::Device& device : topology.devices()) {
        if (sim.rib(device.id) != ref.rib(device.id)) {
          std::printf("FATAL: RIB mismatch at %s\n", device.name.c_str());
          return 3;
        }
      }
    }
    reference_s = std::min(reference_s, run_ref);
    worklist_s = std::min(worklist_s, run_sim);
    paired_cold[run] = run_ref / run_sim;
  }
  std::sort(paired_cold.begin(), paired_cold.end());
  const double cold_speedup = paired_cold[paired_cold.size() / 2];
  std::printf("cold full convergence (best of %zu):\n", paired_cold.size());
  std::printf("  reference (Jacobi, map RIBs, copy-all rounds): %8.1f ms\n",
              1e3 * reference_s);
  std::printf("  worklist  (frontier, flat RIBs, %u threads) : %8.1f ms\n",
              threads, 1e3 * worklist_s);
  std::printf("  cold speedup: %.2fx (acceptance floor 3x)\n\n",
              cold_speedup);
  report.value("cold_reference_s", "s", reference_s, "none");
  report.value("cold_worklist_s", "s", worklist_s, "lower");
  report.value("cold_speedup_ratio", "x", cold_speedup, "higher");

  // -- warm reconvergence after a single-link fault ------------------------
  // One persistent simulator absorbs a fault, reconverges from the fault
  // site, and is compared against cold-rerunning the same (new) engine on
  // the mutated topology. Repair between probes restores the healthy state
  // through the same delta path.
  obs::MetricsRegistry registry;
  topo::FaultInjector injector(topology, /*seed=*/17);
  routing::BgpSimulator warm(topology, &injector, &registry, options);

  std::array<double, 5> paired_warm{};
  double reconverge_s = 1e300;
  double cold_rerun_s = 1e300;
  for (std::size_t probe = 0; probe < paired_warm.size(); ++probe) {
    injector.random_link_failures(1);

    auto start = std::chrono::steady_clock::now();
    warm.reconverge();
    const double run_warm = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const routing::BgpSimulator cold(topology, &injector, nullptr, options);
    const double run_cold = seconds_since(start);

    for (const topo::Device& device : topology.devices()) {
      if (warm.rib(device.id) != cold.rib(device.id)) {
        std::printf("FATAL: warm/cold mismatch at %s\n",
                    device.name.c_str());
        return 3;
      }
    }
    reconverge_s = std::min(reconverge_s, run_warm);
    cold_rerun_s = std::min(cold_rerun_s, run_cold);
    paired_warm[probe] = run_cold / run_warm;

    injector.repair(0);
    warm.reconverge();
  }
  std::sort(paired_warm.begin(), paired_warm.end());
  const double warm_speedup = paired_warm[paired_warm.size() / 2];
  std::printf("warm reconvergence after one link fault (%zu probes):\n",
              paired_warm.size());
  std::printf("  cold rerun of worklist engine: %8.2f ms\n",
              1e3 * cold_rerun_s);
  std::printf("  warm reconverge() from fault : %8.2f ms\n",
              1e3 * reconverge_s);
  std::printf("  warm speedup: %.1fx (acceptance floor 8x)\n\n",
              warm_speedup);
  report.value("warm_cold_rerun_s", "s", cold_rerun_s, "none");
  report.value("warm_reconverge_s", "s", reconverge_s, "lower");
  report.value("warm_speedup_ratio", "x", warm_speedup, "higher");

  report.workload("devices", static_cast<double>(device_count));
  report.workload("links", static_cast<double>(topology.link_count()));
  report.workload("threads", static_cast<double>(threads));

  const bool pass = cold_speedup >= 3.0 && warm_speedup >= 8.0;
  std::printf("acceptance: cold >= 3x %s, warm >= 8x %s\n",
              cold_speedup >= 3.0 ? "OK" : "FAIL",
              warm_speedup >= 8.0 ? "OK" : "FAIL");

  if (!json_out.empty()) {
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return pass ? 0 : 2;
}
