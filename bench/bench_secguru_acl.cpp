// Experiment C3 (DESIGN.md): SecGuru ACL checking cost vs policy size.
//
// Paper claim (§3.2): "analyzing an ACL comprising a few hundred rules
// takes approximately 300ms and analyzing an ACL comprising a few thousand
// rules takes a second" — the shape to reproduce is roughly linear growth
// through the few-hundred-ms to ~1s band, with plenty of headroom
// ("scales to an order of magnitude beyond what is required").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "secguru/refactor.hpp"

namespace {

using namespace dcv::secguru;

/// Edge-ACL workloads sized to hit the paper's rule-count bands.
LegacyAclParams params_for(std::int64_t band) {
  switch (band) {
    case 100:
      return LegacyAclParams{.owned_prefixes = 8,
                             .services = 8,
                             .whitelist_entries_per_service = 6,
                             .zero_day_blocks = 6};
    case 300:
      return LegacyAclParams{.owned_prefixes = 16,
                             .services = 20,
                             .whitelist_entries_per_service = 10,
                             .zero_day_blocks = 10};
    case 1000:
      return LegacyAclParams{.owned_prefixes = 24,
                             .services = 60,
                             .whitelist_entries_per_service = 12,
                             .zero_day_blocks = 20};
    default:
      return LegacyAclParams{};  // the several-thousand-rule default
  }
}

struct Workload {
  Policy acl;
  ContractSuite suite;
};

const Workload& workload_for(std::int64_t band) {
  static std::map<std::int64_t, std::unique_ptr<Workload>> cache;
  auto& entry = cache[band];
  if (!entry) {
    const auto params = params_for(band);
    entry = std::make_unique<Workload>(Workload{
        .acl = generate_legacy_edge_acl(params),
        .suite = edge_acl_contracts(params)});
  }
  return *entry;
}

/// Full analysis of one ACL against its regression contract suite (the
/// §3.3 precheck unit of work).
void BM_AclCheckSuite(benchmark::State& state) {
  const Workload& workload = workload_for(state.range(0));
  Engine engine;
  for (auto _ : state) {
    auto report = engine.check_suite(workload.acl, workload.suite);
    benchmark::DoNotOptimize(report);
    if (!report.ok()) state.SkipWithError("contract unexpectedly failed");
  }
  state.counters["rules"] = static_cast<double>(workload.acl.rules.size());
  state.counters["contracts"] =
      static_cast<double>(workload.suite.contracts.size());
}
BENCHMARK(BM_AclCheckSuite)
    ->Arg(100)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

/// One contract against one ACL — the minimal SecGuru query.
void BM_AclSingleContract(benchmark::State& state) {
  const Workload& workload = workload_for(state.range(0));
  Engine engine;
  const ConnectivityContract& contract = workload.suite.contracts.front();
  for (auto _ : state) {
    auto result = engine.check(workload.acl, contract);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rules"] = static_cast<double>(workload.acl.rules.size());
}
BENCHMARK(BM_AclSingleContract)
    ->Arg(100)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

/// Semantic equivalence of two ACLs (the refactoring safety query).
void BM_AclEquivalence(benchmark::State& state) {
  const Workload& workload = workload_for(state.range(0));
  Engine engine;
  Policy reordered = workload.acl;
  // A behavior-preserving permutation: move the last rule's duplicate tail
  // around (duplicates are shadowed, so semantics are unchanged).
  std::rotate(reordered.rules.end() - 5, reordered.rules.end() - 2,
              reordered.rules.end());
  for (auto _ : state) {
    auto witness = engine.difference_witness(workload.acl, reordered);
    benchmark::DoNotOptimize(witness);
  }
  state.counters["rules"] = static_cast<double>(workload.acl.rules.size());
}
BENCHMARK(BM_AclEquivalence)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
