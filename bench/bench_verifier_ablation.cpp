// Experiment C2 (DESIGN.md): verification-engine ablation.
//
// Paper claims reproduced in shape:
//  * §2.5: the Z3 bit-vector engine verifies a device's routing table
//    "within a second";
//  * §2.5.2/§2.6.3: the specialized trie engine is much faster — "RCDC
//    takes 180ms to verify all contracts on a single device on average",
//    enabling datacenter-scale validation on modest CPU resources.
//
// Each benchmark verifies *all* contracts of one ToR whose FIB holds
// `range` rules (one route per hosted prefix, as in production).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "rcdc/contract_gen.hpp"
#include "rcdc/linear_verifier.hpp"
#include "rcdc/smt_verifier.hpp"
#include "rcdc/trie_verifier.hpp"
#include "routing/fib_synthesizer.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;

/// A single ToR's workload in a datacenter sized to give its FIB roughly
/// `rules` entries.
struct DeviceWorkload {
  routing::ForwardingTable fib;
  std::vector<rcdc::Contract> contracts;
  topo::DeviceId device;
};

DeviceWorkload make_workload(std::int64_t rules) {
  const auto tors_per_cluster = 8u;
  const topo::ClosParams params{
      .clusters = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(rules) / tors_per_cluster),
      .tors_per_cluster = tors_per_cluster,
      .leaves_per_cluster = 4,
      .spines_per_plane = 1,
      .regional_spines = 4};
  static std::map<std::int64_t, std::unique_ptr<topo::Topology>> cache;
  auto& topology = cache[rules];
  if (!topology) {
    topology = std::make_unique<topo::Topology>(topo::build_clos(params));
  }
  const topo::MetadataService metadata(*topology);
  const routing::FibSynthesizer synthesizer(metadata);
  const rcdc::ContractGenerator generator(metadata);
  const auto tor = topology->devices_with_role(topo::DeviceRole::kTor)[0];
  return DeviceWorkload{.fib = synthesizer.fib(tor),
                        .contracts = generator.for_device(tor),
                        .device = tor};
}

void BM_TrieVerifier_Device(benchmark::State& state) {
  const DeviceWorkload workload = make_workload(state.range(0));
  rcdc::TrieVerifier verifier;
  for (auto _ : state) {
    auto violations =
        verifier.check(workload.fib, workload.contracts, workload.device);
    benchmark::DoNotOptimize(violations);
  }
  state.counters["rules"] = static_cast<double>(workload.fib.size());
  state.counters["contracts"] =
      static_cast<double>(workload.contracts.size());
  state.counters["contracts/s"] = benchmark::Counter(
      static_cast<double>(workload.contracts.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_TrieVerifier_Device)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(9216)
    ->Unit(benchmark::kMillisecond);

/// Same semantics as the trie engine, candidates found by a linear scan:
/// quantifies what the §2.5.2 hash-trie buys.
void BM_LinearVerifier_Device(benchmark::State& state) {
  const DeviceWorkload workload = make_workload(state.range(0));
  rcdc::LinearVerifier verifier;
  for (auto _ : state) {
    auto violations =
        verifier.check(workload.fib, workload.contracts, workload.device);
    benchmark::DoNotOptimize(violations);
  }
  state.counters["rules"] = static_cast<double>(workload.fib.size());
  state.counters["contracts"] =
      static_cast<double>(workload.contracts.size());
}
BENCHMARK(BM_LinearVerifier_Device)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(9216)
    ->Unit(benchmark::kMillisecond);

void BM_SmtVerifier_Device(benchmark::State& state) {
  const DeviceWorkload workload = make_workload(state.range(0));
  rcdc::SmtVerifier verifier;
  for (auto _ : state) {
    auto violations =
        verifier.check(workload.fib, workload.contracts, workload.device);
    benchmark::DoNotOptimize(violations);
  }
  state.counters["rules"] = static_cast<double>(workload.fib.size());
  state.counters["contracts"] =
      static_cast<double>(workload.contracts.size());
}
BENCHMARK(BM_SmtVerifier_Device)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// The paper-literal Definition 2.1 encoding: one satisfiability query for
/// one contract against the whole policy.
void BM_SmtMonolithic_Contract(benchmark::State& state) {
  const DeviceWorkload workload = make_workload(state.range(0));
  rcdc::SmtVerifier verifier;
  // Pick a mid-table specific contract.
  const rcdc::Contract& contract =
      workload.contracts[workload.contracts.size() / 2];
  for (auto _ : state) {
    auto violation = verifier.check_contract_monolithic(workload.fib,
                                                        contract,
                                                        workload.device);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["rules"] = static_cast<double>(workload.fib.size());
}
BENCHMARK(BM_SmtMonolithic_Contract)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Per-contract cost of the trie engine in isolation (the specialized
/// algorithm's inner loop).
void BM_TrieVerifier_SingleContract(benchmark::State& state) {
  const DeviceWorkload workload = make_workload(state.range(0));
  rcdc::TrieVerifier verifier;
  const std::span<const rcdc::Contract> one(
      &workload.contracts[workload.contracts.size() / 2], 1);
  for (auto _ : state) {
    auto violations = verifier.check(workload.fib, one, workload.device);
    benchmark::DoNotOptimize(violations);
  }
  state.counters["rules"] = static_cast<double>(workload.fib.size());
}
BENCHMARK(BM_TrieVerifier_SingleContract)
    ->Arg(1024)
    ->Arg(9216)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
