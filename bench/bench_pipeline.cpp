// Experiment C5 (DESIGN.md): the Figure 5 monitoring pipeline.
//
// Paper claims reproduced in shape (§2.6.1): "Each service instance is
// configured to monitor O(10K) devices. Fetching each routing table takes
// 200-800ms, and validating takes O(100) milliseconds." Fetch latencies
// are simulated at production magnitude and compressed 1000x so the bench
// finishes quickly; throughput scales with puller workers because
// validation is local and cheap — fetching dominates, exactly the regime
// the paper's horizontally-partitioned service is built for.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rcdc/pipeline.hpp"
#include "routing/fib_synthesizer.hpp"
#include "topology/clos_builder.hpp"

int main(int argc, char** argv) {
  using namespace dcv;

  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_pipeline");

  const topo::ClosParams params{.clusters = 24,
                                .tors_per_cluster = 16,
                                .leaves_per_cluster = 6,
                                .spines_per_plane = 2,
                                .regional_spines = 4};
  const topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);
  const routing::FibSynthesizer synthesizer(metadata);
  const rcdc::SynthesizedFibSource fibs(synthesizer);

  std::printf(
      "== C5: monitoring-pipeline throughput (cf. SS2.6.1 / Figure 5) ==\n"
      "datacenter: %zu devices; fetch latency simulated at 200-800ms,\n"
      "compressed 1000x (so 1 bench-second ~ 16.7 production-minutes)\n\n",
      topology.device_count());
  std::printf(
      "  pullers validators  wall (ms)  devices/s  mean-fetch (ms)"
      "  mean-validate (us)  violations\n");

  for (const unsigned pullers : {1u, 4u, 16u, 64u}) {
    rcdc::MonitoringPipeline pipeline(
        metadata, fibs, rcdc::make_trie_verifier_factory(),
        rcdc::PipelineConfig{
            .puller_workers = pullers,
            .validator_workers = 4,
            .fetch_latency_min = std::chrono::microseconds(200'000),
            .fetch_latency_max = std::chrono::microseconds(800'000),
            .time_scale = 0.001,
            .seed = 11});
    const auto stats = pipeline.run_cycle();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stats.wall).count();
    report.value("cycle_wall_ms_p" + std::to_string(pullers), "ms", wall_ms);
    report.value("devices_per_s_p" + std::to_string(pullers), "1/s",
                 1000.0 * static_cast<double>(stats.devices) / wall_ms,
                 "higher");
    if (pullers == 1u) {
      report.workload("devices", static_cast<double>(stats.devices));
      report.workload("time_scale", 0.001);
      report.workload("validator_workers", 4.0);
    }
    std::printf("  %7u %10u %10.1f %10.1f %16.0f %19.1f %11zu\n", pullers,
                4u, wall_ms,
                1000.0 * static_cast<double>(stats.devices) / wall_ms,
                std::chrono::duration<double, std::milli>(
                    stats.fetch_sim_total)
                        .count() /
                    static_cast<double>(stats.devices),
                std::chrono::duration<double, std::micro>(
                    stats.validate_total)
                        .count() /
                    static_cast<double>(stats.devices),
                stats.violations);
  }

  std::printf(
      "\nWith production (uncompressed) latencies, one instance at 64\n"
      "pullers sustains ~100+ devices/s -> a full O(10K)-device cycle in\n"
      "a couple of minutes, matching the paper's instance sizing.\n");

  // Instrumentation overhead: the same cycle with the metrics registry off
  // vs on. The acceptance budget is <5% wall-time overhead; the registry's
  // hot path is one branch + a few relaxed atomics per record, so the
  // delta should disappear into fetch-sleep noise.
  obs::MetricsRegistry registry;
  auto overhead_config = rcdc::PipelineConfig{
      .puller_workers = 16,
      .validator_workers = 4,
      .fetch_latency_min = std::chrono::microseconds(200'000),
      .fetch_latency_max = std::chrono::microseconds(800'000),
      .time_scale = 0.001,
      .seed = 11};
  double wall_off = 0.0;
  double wall_on = 0.0;
  for (const bool instrumented : {false, true}) {
    overhead_config.metrics = instrumented ? &registry : nullptr;
    rcdc::MonitoringPipeline pipeline(metadata, fibs,
                                      rcdc::make_trie_verifier_factory(),
                                      overhead_config);
    double best = 1e300;  // best-of-3 damps scheduler noise
    for (int run = 0; run < 3; ++run) {
      const auto stats = pipeline.run_cycle();
      best = std::min(
          best,
          std::chrono::duration<double, std::milli>(stats.wall).count());
    }
    (instrumented ? wall_on : wall_off) = best;
  }
  std::printf(
      "\ninstrumentation overhead (best of 3, 16 pullers): "
      "%.1f ms off vs %.1f ms on = %+.2f%% (budget <5%%)\n",
      wall_off, wall_on, 100.0 * (wall_on - wall_off) / wall_off);

  std::printf("\n-- metrics registry (Prometheus exposition) --\n%s",
              obs::write_prometheus(registry).c_str());

  if (!json_out.empty()) {
    report.value("instrumented_cycle_ms", "ms", wall_on);
    report.value("uninstrumented_cycle_ms", "ms", wall_off);
    report.value("instrumentation_overhead_pct", "%",
                 100.0 * (wall_on - wall_off) / wall_off, "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
