// Verification hot path: what does a monitoring cycle cost when the tables
// are already in hand?
//
// bench_pipeline measures the full Figure 5 pipeline, where (scaled)
// 200-800ms fetches dominate exactly as in production (§2.6.1). This bench
// removes fetching from the picture — tables are precomputed and returned
// by copy, fetch latency simulation is off — to isolate the three
// hot-path optimizations:
//
//   1. cold cycles: a precompiled contract plan (built once per topology
//      epoch, contracts pre-sorted in trie-walk order) plus a reusable
//      flat-trie verifier, vs the legacy path that re-derived contracts
//      per device and built a fresh trie + ran a comparison sort per
//      contract — gated at >= 1.15x. (The floor was 1.3x before the CSR
//      adjacency cache landed: per-device contract derivation is mostly
//      neighbor walks, so the legacy arm gained more from span-based
//      adjacency than the plan arm, which amortizes derivation across the
//      epoch. Both arms are absolutely faster; the ratio compressed to
//      ~1.2-1.3x.);
//   2. warm cycles: fingerprint-based incremental skip — an unchanged
//      device replays its cached verdict without checking a contract;
//   3. churn cycles: 1% of devices change between cycles, the
//      steady-state regime incremental validation is built for.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_io.hpp"
#include "net/interval.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/pipeline.hpp"
#include "rcdc/trie_verifier.hpp"
#include "routing/fib_synthesizer.hpp"
#include "topology/clos_builder.hpp"
#include "trie/prefix_trie.hpp"

namespace {

using namespace dcv;

/// Precomputed tables, fetched by copy: the cost model of a validator that
/// already holds this cycle's pulls.
class CachedFibSource final : public rcdc::FibSource {
 public:
  explicit CachedFibSource(std::vector<routing::ForwardingTable> tables)
      : tables_(std::move(tables)) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return tables_[device];
  }

  /// Perturbs `count` devices' tables (drops one ECMP next hop from their
  /// first multi-hop rule), modeling inter-cycle churn.
  void churn(std::size_t count) {
    std::size_t changed = 0;
    for (std::size_t d = 0; d < tables_.size() && changed < count; ++d) {
      routing::ForwardingTable rebuilt;
      bool mutated = false;
      for (const routing::Rule& rule : tables_[d].rules()) {
        routing::Rule copy = rule;
        if (!mutated && copy.next_hops.size() > 1) {
          copy.next_hops.pop_back();
          mutated = true;
        }
        rebuilt.add(std::move(copy));
      }
      if (mutated) {
        tables_[d] = std::move(rebuilt);
        ++changed;
      }
    }
  }

 private:
  std::vector<routing::ForwardingTable> tables_;
};

/// The pre-optimization trie engine, kept verbatim as the cold-path
/// baseline: fresh trie per device, related-set comparison sort per
/// contract. Deliberately NOT the shipping implementation.
class LegacyTrieVerifier final : public rcdc::Verifier {
 public:
  [[nodiscard]] std::vector<rcdc::Violation> check(
      const routing::ForwardingTable& fib,
      std::span<const rcdc::Contract> contracts,
      topo::DeviceId device) override {
    std::vector<rcdc::Violation> violations;
    trie::PrefixTrie<const routing::Rule*> policy;
    for (const routing::Rule& rule : fib.rules()) {
      policy.insert(rule.prefix, &rule);
    }
    for (const rcdc::Contract& contract : contracts) {
      if (contract.kind == rcdc::ContractKind::kDefault) {
        rcdc::check_default_contract(fib, contract, device, violations);
        continue;
      }
      auto candidates = policy.related(contract.prefix);
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  if (a.first.length() != b.first.length()) {
                    return a.first.length() > b.first.length();
                  }
                  return a.first < b.first;
                });
      const auto range =
          net::AddressInterval::from_prefix(contract.prefix);
      net::IntervalSet covered;
      bool complete = false;
      for (const auto& [rule_prefix, rule] : candidates) {
        const auto slice =
            contract.prefix.contains(rule_prefix)
                ? net::AddressInterval::from_prefix(rule_prefix)
                : range;
        if (!covered.covers(slice)) {
          const routing::Rule& r = **rule;
          const bool default_disallowed =
              r.prefix.is_default() && !contract.allow_default_route;
          if (!r.connected && (default_disallowed ||
                               !hops_satisfy(r.next_hops, contract))) {
            violations.push_back(rcdc::Violation{
                .device = device,
                .contract = contract,
                .kind = default_disallowed
                            ? rcdc::ViolationKind::kSpecificViaDefaultRoute
                            : rcdc::ViolationKind::kWrongNextHops,
                .rule_prefix = r.prefix,
                .actual_next_hops = r.next_hops});
          }
        }
        covered.add(slice);
        if (covered.covers(range)) {
          complete = true;
          break;
        }
      }
      if (!complete && !covered.covers(range)) {
        violations.push_back(
            rcdc::Violation{.device = device,
                            .contract = contract,
                            .kind = rcdc::ViolationKind::kUnreachableRange,
                            .rule_prefix = contract.prefix,
                            .actual_next_hops = {}});
      }
    }
    return violations;
  }
};

/// One legacy-shaped cold sweep: per device, re-derive contracts from
/// metadata and check with a fresh-trie engine. Returns wall seconds.
double legacy_sweep(const topo::MetadataService& metadata,
                    const std::vector<routing::ForwardingTable>& tables,
                    unsigned threads, std::atomic<std::size_t>& found) {
  const rcdc::ContractGenerator generator(metadata);
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    LegacyTrieVerifier verifier;
    while (true) {
      const std::size_t d = next.fetch_add(1, std::memory_order_relaxed);
      if (d >= tables.size()) break;
      const auto contracts =
          generator.for_device(static_cast<topo::DeviceId>(d));
      if (contracts.empty()) continue;
      const auto violations = verifier.check(
          tables[d], contracts, static_cast<topo::DeviceId>(d));
      found.fetch_add(violations.size(), std::memory_order_relaxed);
    }
  };
  {
    std::vector<std::jthread> pool;
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One plan-based cold sweep: shared precompiled plan, reusable flat-trie
/// verifiers. Returns wall seconds.
double plan_sweep(const rcdc::ContractGenerator& generator,
                  const std::vector<routing::ForwardingTable>& tables,
                  unsigned threads, std::atomic<std::size_t>& found) {
  const rcdc::ContractPlanPtr plan = generator.plan();
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    rcdc::TrieVerifier verifier;
    while (true) {
      const std::size_t d = next.fetch_add(1, std::memory_order_relaxed);
      if (d >= tables.size()) break;
      const auto contracts =
          plan->contracts_for(static_cast<topo::DeviceId>(d));
      if (contracts.empty()) continue;
      const auto violations = verifier.check(
          tables[d], contracts, static_cast<topo::DeviceId>(d));
      found.fetch_add(violations.size(), std::memory_order_relaxed);
    }
  };
  {
    std::vector<std::jthread> pool;
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_hotpath");

  const topo::ClosParams params{.clusters = 24,
                                .tors_per_cluster = 16,
                                .leaves_per_cluster = 6,
                                .spines_per_plane = 2,
                                .regional_spines = 4};
  const topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);
  const routing::FibSynthesizer synthesizer(metadata);
  const std::size_t device_count = topology.device_count();
  const unsigned threads = 4;

  std::vector<routing::ForwardingTable> tables;
  tables.reserve(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    tables.push_back(synthesizer.fib(static_cast<topo::DeviceId>(d)));
  }

  std::printf(
      "== verification hot path (fetch removed; %zu devices, %u threads) "
      "==\n\n",
      device_count, threads);

  // -- cold sweeps: legacy vs plan+reusable-trie, best of 5 ----------------
  // Single-threaded with an untimed warmup: the speedup is a per-device
  // work ratio and holds at any worker count, but a multi-threaded sweep
  // lasting tens of milliseconds lets one scheduler hiccup on a loaded
  // machine swing the ratio by more than the effect being measured.
  double legacy_s = 1e300;
  double plan_s = 1e300;
  std::array<double, 5> paired_speedup{};
  std::atomic<std::size_t> legacy_found{0};
  std::atomic<std::size_t> plan_found{0};
  const rcdc::ContractGenerator generator(metadata);
  legacy_sweep(metadata, tables, 1, legacy_found);  // warmup
  plan_sweep(generator, tables, 1, plan_found);     // warmup
  for (std::size_t run = 0; run < paired_speedup.size(); ++run) {
    legacy_found.store(0);
    plan_found.store(0);
    const double run_legacy = legacy_sweep(metadata, tables, 1, legacy_found);
    const double run_plan = plan_sweep(generator, tables, 1, plan_found);
    legacy_s = std::min(legacy_s, run_legacy);
    plan_s = std::min(plan_s, run_plan);
    paired_speedup[run] = run_legacy / run_plan;
  }
  if (legacy_found.load() != plan_found.load()) {
    std::printf("FATAL: engines disagree (%zu vs %zu violations)\n",
                legacy_found.load(), plan_found.load());
    return 3;
  }
  const double legacy_rate = static_cast<double>(device_count) / legacy_s;
  const double plan_rate = static_cast<double>(device_count) / plan_s;
  // The gated ratio is the median of per-run paired ratios: the two sweeps
  // in one run see the same machine conditions, so a transient stall skews
  // one pair, not the median — unlike min-of-each-side, which can pair a
  // lucky legacy run with an unlucky plan run.
  std::sort(paired_speedup.begin(), paired_speedup.end());
  const double cold_speedup = paired_speedup[paired_speedup.size() / 2];
  std::printf("cold sweep (best of %zu):\n", paired_speedup.size());
  std::printf("  legacy (per-device contracts, fresh trie, std::sort): "
              "%8.1f devices/s\n", legacy_rate);
  std::printf("  plan + reusable flat trie:                            "
              "%8.1f devices/s\n", plan_rate);
  std::printf("  cold speedup: %.2fx (acceptance floor 1.15x)\n\n",
              cold_speedup);
  // Informational: the frozen legacy baseline speeding up or slowing down
  // is machine noise, not a product regression.
  report.value("cold_legacy_devices_per_s", "1/s", legacy_rate, "none");
  report.value("cold_plan_devices_per_s", "1/s", plan_rate, "higher");
  report.value("cold_speedup_ratio", "x", cold_speedup, "higher");

  // -- pipeline cycles: cold -> warm unchanged -> 1% churn -----------------
  CachedFibSource fibs(std::move(tables));
  rcdc::MonitoringPipeline pipeline(
      metadata, fibs, rcdc::make_trie_verifier_factory(),
      rcdc::PipelineConfig{.puller_workers = threads,
                           .validator_workers = threads,
                           .fetch_latency_min = std::chrono::microseconds(0),
                           .fetch_latency_max = std::chrono::microseconds(0),
                           .time_scale = 0.0,
                           .seed = 3});

  const auto cycle_rate = [&](const rcdc::PipelineStats& stats) {
    return static_cast<double>(stats.devices) /
           std::chrono::duration<double>(stats.wall).count();
  };
  const auto cold = pipeline.run_cycle();
  const auto warm = pipeline.run_cycle();
  fibs.churn(std::max<std::size_t>(1, device_count / 100));
  const auto churn = pipeline.run_cycle();

  const double cold_rate = cycle_rate(cold);
  const double warm_rate = cycle_rate(warm);
  const double churn_rate = cycle_rate(churn);
  const double warm_speedup = warm_rate / cold_rate;
  std::printf("pipeline cycles (fetch = table copy, no latency sim):\n");
  std::printf("  cold  : %9.1f devices/s  (%zu revalidated, %zu contracts)\n",
              cold_rate, cold.devices_revalidated, cold.contracts_checked);
  std::printf("  warm  : %9.1f devices/s  (%zu revalidated, %zu contracts)\n",
              warm_rate, warm.devices_revalidated, warm.contracts_checked);
  std::printf("  churn : %9.1f devices/s  (%zu revalidated of %zu, 1%% "
              "changed)\n",
              churn_rate, churn.devices_revalidated, churn.devices);
  std::printf("  warm speedup vs cold: %.2fx (acceptance floor 3x)\n",
              warm_speedup);

  report.workload("devices", static_cast<double>(device_count));
  report.workload("threads", static_cast<double>(threads));
  report.value("cycle_cold_devices_per_s", "1/s", cold_rate, "higher");
  report.value("cycle_warm_devices_per_s", "1/s", warm_rate, "higher");
  report.value("cycle_churn_devices_per_s", "1/s", churn_rate, "higher");
  report.value("warm_speedup_ratio", "x", warm_speedup, "higher");
  report.value("warm_contracts_checked", "contracts",
               static_cast<double>(warm.contracts_checked), "lower");

  const bool pass = cold_speedup >= 1.15 && warm_speedup >= 3.0 &&
                    warm.contracts_checked == 0;
  std::printf("\nacceptance: cold >= 1.15x %s, warm >= 3x %s, "
              "warm contracts == 0 %s\n",
              cold_speedup >= 1.15 ? "OK" : "FAIL",
              warm_speedup >= 3.0 ? "OK" : "FAIL",
              warm.contracts_checked == 0 ? "OK" : "FAIL");

  if (!json_out.empty() && !report.write(json_out)) return 1;
  return pass ? 0 : 2;
}
