// Experiment C4 (DESIGN.md): local contracts vs global verification.
//
// Paper claims reproduced in shape (§1, §2.4):
//  * the straightforward global approach needs a stable snapshot of every
//    FIB ("an engineering feat") and all-pairs analysis that is at least
//    cubic without domain insight, with exponentially many ECMP paths
//    ("fan-outs with degree 4-12 produce roughly 1000 different paths per
//    pair of end-points");
//  * local checks need no snapshot, are linear in devices, and
//    parallelize — "the resources required for local checks are trivial in
//    comparison to global approaches."
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_io.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/validator.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;

void run_tier(const char* name, const topo::ClosParams& params,
              benchio::BenchReport& report) {
  const topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);
  const routing::FibSynthesizer synthesizer(metadata);
  const rcdc::SynthesizedFibSource fibs(synthesizer);

  // Local validation: no snapshot, device at a time.
  const rcdc::DatacenterValidator validator(
      metadata, fibs, rcdc::make_trie_verifier_factory());
  const auto local_single = validator.run(1);
  const unsigned threads =
      std::max(2u, std::thread::hardware_concurrency());
  const auto local_parallel = validator.run(threads);

  // Global verification: snapshot everything, then all-pairs analysis.
  const rcdc::GlobalChecker checker(metadata, fibs);
  const auto global = checker.check_all_pairs(/*max_failures=*/3);

  const double local_s =
      std::chrono::duration<double>(local_single.elapsed).count();
  const double local_p_s =
      std::chrono::duration<double>(local_parallel.elapsed).count();
  const double snapshot_s =
      std::chrono::duration<double>(global.snapshot_time).count();
  const double analysis_s =
      std::chrono::duration<double>(global.analysis_time).count();

  const std::string tag = name;
  report.workload("devices_" + tag,
                  static_cast<double>(topology.device_count()));
  report.value("local_single_s_" + tag, "s", local_s);
  report.value("local_parallel_s_" + tag, "s", local_p_s);
  report.value("global_total_s_" + tag, "s", snapshot_s + analysis_s,
               "none");  // the slow strawman must not gate
  report.value("global_over_local_" + tag, "x",
               (snapshot_s + analysis_s) / std::max(local_s, 1e-9), "none");

  std::printf(
      "  %-4s %8zu %9zu %10zu %12.3f %13.3f %13.3f %13.3f %10.1f\n", name,
      topology.device_count(), global.pairs_checked,
      static_cast<std::size_t>(global.max_paths_per_pair), local_s,
      local_p_s, snapshot_s, analysis_s,
      (snapshot_s + analysis_s) / std::max(local_s, 1e-9));
  if (!global.all_ok() || !local_single.violations.empty()) {
    std::printf("  UNEXPECTED: network not clean\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  dcv::benchio::BenchReport report("bench_global_vs_local");
  std::printf(
      "== C4: local contracts vs global all-pairs verification ==\n"
      "Global = snapshot every FIB + per-destination traversal of the\n"
      "composite forwarding graph (path counts computed by DP — literal\n"
      "path enumeration would be exponential in the ECMP fan-out).\n\n");
  std::printf(
      "  tier  devices  ToRpairs  max-paths  local-1t (s)  local-Nt (s)"
      "  snapshot (s)  analysis (s)  global/local\n");

  run_tier("S", {.clusters = 8,
                 .tors_per_cluster = 8,
                 .leaves_per_cluster = 4,
                 .spines_per_plane = 1,
                 .regional_spines = 4},
           report);
  run_tier("M", {.clusters = 16,
                 .tors_per_cluster = 12,
                 .leaves_per_cluster = 6,
                 .spines_per_plane = 2,
                 .regional_spines = 4},
           report);
  run_tier("L", {.clusters = 32,
                 .tors_per_cluster = 16,
                 .leaves_per_cluster = 8,
                 .spines_per_plane = 4,
                 .regional_spines = 8},
           report);

  // The ECMP path census behind "roughly 1000 different paths per pair":
  // with m leaves per cluster and s spines per plane, an inter-cluster
  // pair has m*s distinct shortest paths; wide production fan-outs push
  // this into the hundreds-to-thousands.
  std::printf("\n  path census (inter-cluster paths per ToR pair):\n");
  for (const std::uint32_t m : {4u, 8u, 12u}) {
    for (const std::uint32_t s : {4u, 8u}) {
      const topo::Topology topology =
          topo::build_clos({.clusters = 2,
                            .tors_per_cluster = 1,
                            .leaves_per_cluster = m,
                            .spines_per_plane = s,
                            .regional_spines = 4});
      const topo::MetadataService metadata(topology);
      const routing::FibSynthesizer synthesizer(metadata);
      const rcdc::SynthesizedFibSource fibs(synthesizer);
      const rcdc::GlobalChecker checker(metadata, fibs);
      const auto result = checker.check_all_pairs();
      std::printf("    m=%2u leaves x s=%u spines/plane -> %llu paths/pair\n",
                  m, s,
                  static_cast<unsigned long long>(result.max_paths_per_pair));
    }
  }
  if (!json_out.empty() && !report.write(json_out)) return 1;
  return 0;
}
