// Distributed scaling: devices/s of one validation cycle over a ~5k-device
// Clos fabric as real dcv_worker processes are added. The per-device cost
// is dominated by simulated table-acquisition latency (the paper's pull
// cost, slept in each worker), so throughput scales with the number of
// concurrently sleeping workers rather than with host cores — near-linear
// 1→4 on any machine, which is exactly the claim distribution makes: the
// fleet buys wall-clock, not CPU.
//
// The kill-one-of-N ablation row measures what a mid-cycle worker crash
// costs: with the default retry budget the cycle still completes at full
// coverage, the lost shards re-validated by survivors.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "dist/coordinator.hpp"
#include "dist/process.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "topology/clos_builder.hpp"
#include "topology/metadata.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;
using namespace std::chrono_literals;

/// Locates the dcv_worker binary next to this bench (build/bench/../tools).
std::string find_worker_bin(const char* argv0) {
  if (const char* env = std::getenv("DCV_WORKER_BIN")) return env;
  const auto self = std::filesystem::path(argv0);
  const auto candidate =
      self.parent_path().parent_path() / "tools" / "dcv_worker";
  return candidate.string();
}

struct CycleStats {
  double wall_s = 0.0;
  double coverage = 0.0;
  std::size_t reassignments = 0;
  bool degraded = false;
};

/// Spawns `worker_count` real dcv_worker processes against a fresh
/// coordinator and runs one cycle. When `kill_delay_ms` is positive, one
/// worker is SIGKILLed that long after the cycle starts.
CycleStats run_fleet(const topo::MetadataService& metadata,
                     const std::string& topology_file,
                     const std::string& worker_bin, std::size_t worker_count,
                     std::uint64_t fetch_latency_us, long kill_delay_ms) {
  dist::TcpListener listener(0);
  obs::MetricsRegistry registry;
  dist::WorkerFleet fleet(&registry);
  for (std::size_t i = 0; i < worker_count; ++i) {
    fleet.spawn({worker_bin, "--connect",
                 "127.0.0.1:" + std::to_string(listener.port()), "--topology",
                 topology_file, "--source", "synth", "--fetch-latency-us",
                 std::to_string(fetch_latency_us), "--worker-id",
                 "b" + std::to_string(i), "--quiet"});
  }

  dist::CoordinatorConfig config;
  config.metrics = &registry;
  config.shards_per_worker = 4;
  config.lease = 10s;
  dist::Coordinator coordinator(metadata, config);
  const auto admit_deadline = std::chrono::steady_clock::now() + 60s;
  while (coordinator.live_workers() < worker_count &&
         std::chrono::steady_clock::now() < admit_deadline) {
    if (auto transport = listener.accept(50ms)) {
      coordinator.add_worker(std::move(transport));
    }
    coordinator.pump(worker_count, std::chrono::milliseconds(10));
  }
  if (coordinator.live_workers() < worker_count) {
    std::fprintf(stderr, "bench_dist: only %zu/%zu workers connected\n",
                 coordinator.live_workers(), worker_count);
    std::exit(1);
  }

  // The mid-cycle kill comes from a short-lived helper child so the
  // coordinator loop itself never has to juggle a timer. The delay must
  // outlast contract planning (which precedes the first assignment), so
  // the caller sizes it from a measured clean-cycle wall time.
  pid_t killer = -1;
  if (kill_delay_ms > 0) {
    const pid_t victim = fleet.pids().front();
    killer = ::fork();
    if (killer == 0) {
      ::usleep(static_cast<useconds_t>(kill_delay_ms) * 1000);
      ::kill(victim, SIGKILL);
      ::_exit(0);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const dist::DistributedSummary summary = coordinator.run_cycle();
  const auto wall = std::chrono::steady_clock::now() - start;

  coordinator.shutdown_workers();
  for (int i = 0; i < 40 && fleet.alive() > 0; ++i) {
    (void)fleet.reap();
    ::usleep(25 * 1000);
  }
  fleet.kill_all(SIGKILL);
  (void)fleet.reap();
  if (killer > 0) ::waitpid(killer, nullptr, 0);

  CycleStats stats;
  stats.wall_s = std::chrono::duration<double>(wall).count();
  stats.coverage = summary.coverage();
  stats.reassignments = summary.reassignments;
  stats.degraded = summary.degraded();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_dist");

  std::uint64_t fetch_latency_us = 14000;
  std::string worker_bin = find_worker_bin(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--worker-bin" && i + 1 < argc) {
      worker_bin = argv[++i];
    } else if (flag == "--fetch-latency-us" && i + 1 < argc) {
      fetch_latency_us = std::stoull(argv[++i]);
    }
  }
  if (!std::filesystem::exists(worker_bin)) {
    std::fprintf(stderr,
                 "bench_dist: worker binary not found at %s "
                 "(build dcv_worker or set DCV_WORKER_BIN)\n",
                 worker_bin.c_str());
    return 1;
  }

  dist::install_fleet_signal_handlers();

  // ~5k devices: 100 clusters x (10 ToRs + 40 leaves) + 40 spines + 4 RH.
  // Deliberately ToR-light: FIB size tracks the hosted-prefix (= ToR)
  // count, so this shape keeps per-device CPU small enough that the
  // simulated pull latency — not validation compute — dominates the cycle,
  // and worker scaling measures concurrency even on a single-core host.
  const topo::ClosParams params{.clusters = 100,
                                .tors_per_cluster = 10,
                                .leaves_per_cluster = 40,
                                .spines_per_plane = 1,
                                .regional_spines = 4};
  const topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);

  const std::string topology_file =
      (std::filesystem::temp_directory_path() /
       ("bench_dist_topo_" + std::to_string(::getpid()) + ".topo"))
          .string();
  {
    std::ofstream out(topology_file);
    out << topo::write_topology(topology);
  }

  std::printf(
      "== distributed validation: devices/s vs worker count ==\n"
      "fabric: %zu devices; per-device pull latency %llu us simulated in\n"
      "each worker (sleep-bound, so scaling measures fleet concurrency,\n"
      "not host cores); tables synthesized O(1)-memory per worker\n\n",
      topology.device_count(),
      static_cast<unsigned long long>(fetch_latency_us));
  std::printf("  workers   wall (s)   devices/s   coverage   note\n");

  const double devices = static_cast<double>(topology.device_count());
  double devices_per_s_1 = 0.0;
  double devices_per_s_4 = 0.0;
  double wall_4_clean = 0.0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const CycleStats stats = run_fleet(metadata, topology_file, worker_bin,
                                       workers, fetch_latency_us,
                                       /*kill_delay_ms=*/0);
    const double rate = devices / stats.wall_s;
    if (workers == 1) devices_per_s_1 = rate;
    if (workers == 4) {
      devices_per_s_4 = rate;
      wall_4_clean = stats.wall_s;
    }
    report.value("devices_per_s_workers_" + std::to_string(workers),
                 "devices/s", rate, "higher");
    std::printf("  %7zu %10.2f %11.0f %9.1f%%\n", workers, stats.wall_s, rate,
                100.0 * stats.coverage);
  }
  const double scaling = devices_per_s_4 / devices_per_s_1;
  report.value("scaling_ratio_4v1", "x", scaling, "higher");

  // Ablation: kill one of four mid-cycle. Coverage must hold at 100% via
  // reassignment (the default retry budget absorbs one loss). Landing the
  // kill at ~40% of the clean wall guarantees the victim is mid-shard —
  // past contract planning, well before the cycle drains.
  const long kill_delay_ms =
      std::max(1000L, static_cast<long>(wall_4_clean * 0.4 * 1000.0));
  const CycleStats crash = run_fleet(metadata, topology_file, worker_bin, 4,
                                     fetch_latency_us, kill_delay_ms);
  report.value("crash_recovery_coverage", "fraction", crash.coverage, "none");
  std::printf("  %7d %10.2f %11.0f %9.1f%%   one worker SIGKILLed (%zu "
              "reassignments)\n",
              4, crash.wall_s, devices / crash.wall_s, 100.0 * crash.coverage,
              crash.reassignments);

  std::printf("\nscaling 1 -> 4 workers: %.2fx\n", scaling);
  std::filesystem::remove(topology_file);

  if (!json_out.empty()) {
    report.workload("devices", devices);
    report.workload("fetch_latency_us",
                    static_cast<double>(fetch_latency_us));
    if (!report.write(json_out)) return 1;
  }
  return scaling >= 2.0 ? 0 : 1;
}
