// Experiment F6 (DESIGN.md): Figure 6 — burndown graph of errors.
//
// "It documents a clear downward trend of errors since RCDC was deployed
// near day 5. It illustrates how the risk assessment helped the DevOps
// teams prioritize fixing high risk errors quickly."
//
// The simulation drives the real stack daily: faults arrive on a synthetic
// datacenter, RCDC (EBGP simulation + local contracts + trie verifier)
// detects them from the deploy day on, and remediation drains the backlog
// in risk order. The y-axis matches the paper: proportions of high/low-risk
// errors relative to the peak total.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rcdc/burndown.hpp"

namespace {

std::string bar(double fraction, char fill) {
  return std::string(static_cast<std::size_t>(fraction * 50.0), fill);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcv::rcdc;

  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  dcv::benchio::BenchReport report("bench_fig6_burndown");

  dcv::obs::MetricsRegistry registry;
  BurndownConfig config{};  // deploy at day 5, as in the paper
  config.metrics = &registry;
  const auto sim_start = std::chrono::steady_clock::now();
  const auto series = simulate_burndown(config);
  const double sim_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - sim_start)
                            .count();

  std::printf(
      "== F6: burndown of routing intent-drift errors (cf. Figure 6) ==\n"
      "RCDC deploys on day %d; high-risk errors (#) are remediated before\n"
      "low-risk errors (.)\n\n", config.rcdc_deploy_day);
  std::printf(
      "  day  high  low  detected  fixed  high-frac  low-frac\n");
  for (const BurndownDay& day : series) {
    std::printf("  %3d  %4zu %4zu  %8zu  %5zu  %9.2f  %8.2f  |%s%s\n",
                day.day, day.outstanding_high, day.outstanding_low,
                day.violations_detected, day.remediated_today,
                day.high_fraction, day.low_fraction,
                bar(day.high_fraction, '#').c_str(),
                bar(day.low_fraction, '.').c_str());
  }

  const auto& last = series.back();
  std::printf(
      "\nshape check: peak-normalized totals fall from 1.0 to %.2f after\n"
      "deployment — the paper's downward trend.\n",
      last.high_fraction + last.low_fraction);

  std::printf("\n-- metrics registry (Prometheus exposition) --\n%s",
              dcv::obs::write_prometheus(registry).c_str());
  if (!json_out.empty()) {
    report.workload("days", static_cast<double>(series.size()));
    report.workload("deploy_day",
                    static_cast<double>(config.rcdc_deploy_day));
    report.value("simulation_ms", "ms", sim_ms);
    report.value("final_error_fraction", "fraction",
                 last.high_fraction + last.low_fraction, "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
