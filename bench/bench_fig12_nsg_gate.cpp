// Experiment F12 (DESIGN.md): Figure 12 — burndown of customer issues.
//
// "When the managed database instance service was initially launched, we
// saw a steep increase in customer reported issues; since incorporating
// SecGuru into the validation API, we observed a steep decrease in such
// customer reported issues (around day 100 in the graph)."
//
// The simulation drives the real NsgGate: customers adopt the managed
// database, churn their NSGs (sometimes adding the classic
// backup-blocking lockdown), broken networks surface as incidents after a
// detection lag, and from the deploy day the gated API rejects breaking
// changes up front.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "secguru/nsg_gate.hpp"

int main(int argc, char** argv) {
  using namespace dcv::secguru;

  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  dcv::benchio::BenchReport report("bench_fig12_nsg_gate");

  NsgIncidentConfig config;
  config.days = 200;
  config.gate_deploy_day = 100;
  config.adoption_per_day = 0.5;
  config.changes_per_vnet_per_day = 0.25;
  config.misconfiguration_probability = 0.25;
  config.detection_lag_days = 3;
  config.support_capacity_per_day = 2;
  config.seed = 2019;

  std::printf(
      "== F12: customer NSG incidents around the SecGuru gate "
      "(cf. Figure 12) ==\n"
      "gate ships on day %d; every change is checked with Z3 against the\n"
      "auto-added database-backup contracts\n\n",
      config.gate_deploy_day);

  const auto sim_start = std::chrono::steady_clock::now();
  const auto series = simulate_nsg_incidents(config);
  const double sim_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - sim_start)
                            .count();

  std::printf(
      "  days     vnets  changes  rejected  reported  open(max)\n");
  std::size_t before = 0, after = 0, rejected = 0;
  std::size_t bucket_changes = 0, bucket_rejected = 0, bucket_reported = 0;
  std::size_t bucket_open = 0;
  for (const auto& day : series) {
    bucket_changes += day.changes_attempted;
    bucket_rejected += day.changes_rejected_by_gate;
    bucket_reported += day.incidents_reported;
    bucket_open = std::max(bucket_open, day.incidents_open);
    if ((day.day + 1) % 5 == 0) {
      std::printf("  %3d-%3d  %5zu  %7zu  %8zu  %8zu  %9zu  |%s\n",
                  day.day - 4, day.day, day.database_vnets, bucket_changes,
                  bucket_rejected, bucket_reported, bucket_open,
                  std::string(bucket_reported, '#').c_str());
      bucket_changes = bucket_rejected = bucket_reported = bucket_open = 0;
    }
    if (day.day < config.gate_deploy_day) {
      before += day.incidents_reported;
    } else if (day.day >= config.gate_deploy_day + 10) {
      after += day.incidents_reported;
    }
    rejected += day.changes_rejected_by_gate;
  }

  std::printf(
      "\nshape check: %zu incidents reported before the gate, %zu after it\n"
      "settles; the gate rejected %zu breaking changes that would each have\n"
      "become an incident.\n",
      before, after, rejected);

  // Registry dump: the simulated operation's aggregate gate metrics.
  dcv::obs::MetricsRegistry registry;
  auto& changes = registry.counter("dcv_nsg_changes_attempted_total",
                                   "Customer NSG changes attempted");
  auto& gate_rejects = registry.counter(
      "dcv_nsg_changes_rejected_total",
      "Changes the SecGuru gate rejected as contract-breaking");
  auto& incidents = registry.counter("dcv_nsg_incidents_reported_total",
                                     "Customer incidents reported");
  auto& open_incidents = registry.histogram(
      "dcv_nsg_open_incidents", "Open incidents, sampled once per day");
  for (const auto& day : series) {
    changes.inc(day.changes_attempted);
    gate_rejects.inc(day.changes_rejected_by_gate);
    incidents.inc(day.incidents_reported);
    open_incidents.observe(day.incidents_open);
  }
  std::printf("\n-- metrics registry (Prometheus exposition) --\n%s",
              dcv::obs::write_prometheus(registry).c_str());
  if (!json_out.empty()) {
    report.workload("days", static_cast<double>(config.days));
    report.workload("gate_deploy_day",
                    static_cast<double>(config.gate_deploy_day));
    report.value("simulation_ms", "ms", sim_ms);
    report.value("incidents_before_gate", "incidents",
                 static_cast<double>(before), "none");
    report.value("incidents_after_gate", "incidents",
                 static_cast<double>(after), "none");
    report.value("changes_rejected", "changes",
                 static_cast<double>(rejected), "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return after == 0 ? 0 : 1;
}
