// Experiment F11 (DESIGN.md): Figure 11 — managing the complexity of a
// legacy ACL.
//
// "Each change incrementally deleted several rules that were either
// unnecessary or redundant, and also added new rules as necessary. ... In
// the end, we were able to reduce the ACL to less than 1000 lines without
// outages or business impact."
//
// The plan runs at the paper's several-thousand-rule scale; every step is
// pre-checked with SecGuru on a lab device against the regression contract
// suite (one step carries an injected typo, which the precheck catches).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "secguru/refactor.hpp"

int main(int argc, char** argv) {
  using namespace dcv::secguru;

  const std::string json_out = dcv::benchio::extract_json_flag(argc, argv);
  dcv::benchio::BenchReport report("bench_fig11_refactor");

  const LegacyAclParams params{};  // several thousand rules
  Policy production = generate_legacy_edge_acl(params);
  const ContractSuite contracts = edge_acl_contracts(params);
  Engine engine;

  std::printf(
      "== F11: legacy Edge-ACL refactor (cf. Figure 11) ==\n"
      "legacy ACL: %zu rules; regression suite: %zu contracts\n\n",
      production.rules.size(), contracts.contracts.size());

  std::vector<Change> plan;
  plan.push_back(delete_rules_matching(
      "change 1: delete duplicate rules",
      [](const Rule& r) { return r.comment == "redundant duplicate"; }));
  plan.push_back(delete_rules_matching(
      "change 2: move service whitelists to host firewalls",
      [](const Rule& r) {
        return r.comment.starts_with("service whitelist");
      }));
  plan.push_back(delete_rules_matching(
      "change 3: retire stale zero-day mitigations",
      [](const Rule& r) {
        return r.comment.starts_with("zero-day mitigation");
      }));
  plan.push_back(Change{
      .description = "change 4: consolidate permits (injected typo)",
      .apply = [](const Policy& before) {
        Policy after = before;
        for (Rule& rule : after.rules) {
          // The classic wrong-prefix typo (§3.3: "pre-checks detected
          // typos, such as incorrect prefixes, that caused several services
          // to be unreachable").
          if (rule.action == Action::kPermit &&
              rule.dst == dcv::net::Prefix::parse("104.208.0.0/20")) {
            rule.dst = dcv::net::Prefix::parse("105.208.0.0/20");
          }
        }
        return after;
      }});
  plan.push_back(delete_rules_matching(
      "change 5: corrected consolidation (no-op fix-up)",
      [](const Rule&) { return false; }));

  const auto start = std::chrono::steady_clock::now();
  const auto outcomes =
      execute_refactor_plan(engine, production, plan, contracts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("  %-55s %7s %7s %9s\n", "change", "before", "after",
              "precheck");
  for (const StepOutcome& o : outcomes) {
    std::printf("  %-55s %7zu %7zu %9s\n", o.description.c_str(),
                o.rules_before, o.rules_after,
                o.precheck_ok ? "pass" : "FAIL");
    for (const auto& failure : o.precheck_failures) {
      std::printf("      precheck caught: %s\n",
                  failure.contract_name.c_str());
      if (o.precheck_failures.size() > 3) break;
    }
  }
  std::printf(
      "\nfinal ACL: %zu rules (< 1000: %s) in %.1f s of SecGuru checking\n",
      production.rules.size(),
      production.rules.size() < 1000 ? "yes" : "NO", seconds);

  // Registry dump: plan-level timing plus per-step precheck outcomes.
  dcv::obs::MetricsRegistry registry;
  registry
      .histogram("dcv_secguru_refactor_plan_ns",
                 "Wall time of one full pre-checked refactor plan")
      .observe(static_cast<std::uint64_t>(seconds * 1e9));
  auto& steps_total = registry.counter("dcv_secguru_refactor_steps_total",
                                       "Refactor steps executed");
  auto& failures_total =
      registry.counter("dcv_secguru_precheck_failures_total",
                       "Contract failures caught by the precheck");
  for (const StepOutcome& o : outcomes) {
    steps_total.inc();
    failures_total.inc(o.precheck_failures.size());
  }
  std::printf("\n-- metrics registry (Prometheus exposition) --\n%s",
              dcv::obs::write_prometheus(registry).c_str());
  if (!json_out.empty()) {
    report.workload("contracts",
                    static_cast<double>(contracts.contracts.size()));
    report.workload("plan_steps", static_cast<double>(plan.size()));
    report.value("plan_precheck_s", "s", seconds);
    report.value("final_rules", "rules",
                 static_cast<double>(production.rules.size()), "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return production.rules.size() < 1000 ? 0 : 1;
}
