// Resilience ablation: monitoring-cycle wall time and device coverage as a
// function of the fetch-layer failure rate, with and without the
// retry/backoff + circuit-breaker + stale-cache layer.
//
// The paper's pullers fail routinely (§2.6.1); the claim this bench makes
// measurable is that the resilient fetch layer converts fetch failures
// from lost coverage into bounded extra work: at a 20% transient-failure
// rate, retries restore ~100% coverage for a small retry overhead, while
// the naive path silently validates only the devices whose single pull
// happened to succeed.
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "dist/coordinator.hpp"
#include "dist/messages.hpp"
#include "dist/transport.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/pipeline.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

namespace {

/// In-process worker endpoint for the distributed sweep: answers every
/// assignment with a clean synthesized result, except that each delivery
/// kills the "process" with the given probability (seeded, so rows are
/// reproducible). A dead worker stays dead — crash-and-rejoin is the
/// coordinator's next-cycle story, not this one.
class CrashyWorker final : public dcv::dist::Transport {
 public:
  CrashyWorker(std::string id, std::uint64_t epoch, double crash_rate,
               std::uint64_t seed)
      : id_(std::move(id)), crash_rate_(crash_rate), rng_(seed) {
    dcv::dist::HelloMsg hello;
    hello.worker_id = id_;
    hello.topology_epoch = epoch;
    outbox_.push_back(encode(hello));
  }

  bool send(const dcv::dist::Frame& frame) override {
    using dcv::dist::MsgType;
    if (closed_) return false;
    if (frame.type != MsgType::kAssign) return true;  // welcome/shutdown
    const auto assign = dcv::dist::decode_assign(frame.payload);
    if (!assign) return true;
    if (std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
        crash_rate_) {
      closed_ = true;
      return true;
    }
    dcv::dist::ResultMsg result;
    result.shard_id = assign->shard_id;
    result.attempt = assign->attempt;
    result.devices_checked = assign->devices.size();
    outbox_.push_back(encode(result));
    return true;
  }

  std::optional<dcv::dist::Frame> poll() override {
    if (outbox_.empty()) return std::nullopt;
    dcv::dist::Frame frame = std::move(outbox_.front());
    outbox_.erase(outbox_.begin());
    return frame;
  }

  [[nodiscard]] bool closed() const override { return closed_; }
  [[nodiscard]] std::string peer() const override { return id_; }

 private:
  std::string id_;
  double crash_rate_;
  std::mt19937_64 rng_;
  bool closed_ = false;
  std::vector<dcv::dist::Frame> outbox_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcv;

  const std::string json_out = benchio::extract_json_flag(argc, argv);
  benchio::BenchReport report("bench_resilience");

  const topo::ClosParams params{.clusters = 12,
                                .tors_per_cluster = 12,
                                .leaves_per_cluster = 4,
                                .spines_per_plane = 2,
                                .regional_spines = 4};
  topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);
  // FIBs come from the EBGP simulator over live (faulty) network state: one
  // cold convergence up front, then a warm reconverge() per fault arrival —
  // the same delta path the burndown study and monitoring stack use.
  topo::FaultInjector injector(topology, /*seed=*/5);
  routing::BgpSimulator simulator(topology, &injector);
  const rcdc::SimulatorFibSource fibs(simulator);

  std::printf(
      "== resilience: cycle wall-time & coverage vs fetch failure rate ==\n"
      "datacenter: %zu devices; transient fetch failures injected at the\n"
      "given per-attempt rate; resilient = 4 retries, exponential backoff\n"
      "(simulated clock, so backoff is not wall time), breaker 5/30s\n\n",
      topology.device_count());
  std::printf(
      "  rate    mode        wall (ms)  coverage  retries  failed  stale"
      "  violations\n");

  obs::MetricsRegistry registry;  // the resilient arm records here

  auto pipeline_config = rcdc::PipelineConfig{
      .puller_workers = 8,
      .validator_workers = 4,
      .fetch_latency_min = std::chrono::microseconds(200),
      .fetch_latency_max = std::chrono::microseconds(800),
      .time_scale = 0.01,
      .seed = 11};

  double reconverge_rounds_total = 0;
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    // One fault arrives between rate steps; both arms validate the same
    // degraded network, reached by delta propagation instead of a rebuild.
    injector.random_link_failures(1);
    reconverge_rounds_total += simulator.reconverge();
    for (const bool resilient : {false, true}) {
      const rcdc::FlakyFibSource flaky(
          fibs, rcdc::FlakyConfig{.transient_rate = rate, .seed = 77});
      rcdc::ManualFetchClock clock;
      const rcdc::ResilientFibSource hardened(
          flaky,
          rcdc::ResilienceConfig{
              .retry = {.max_attempts = 5,
                        .initial_backoff = std::chrono::milliseconds(50),
                        .fetch_deadline = std::chrono::seconds(10)},
              .breaker = {.failure_threshold = 5,
                          .cool_down = std::chrono::seconds(30)},
              .seed = 7,
              .metrics = resilient ? &registry : nullptr},
          &clock);
      const rcdc::FibSource& source =
          resilient ? static_cast<const rcdc::FibSource&>(hardened) : flaky;

      pipeline_config.metrics = resilient ? &registry : nullptr;
      rcdc::MonitoringPipeline pipeline(
          metadata, source, rcdc::make_trie_verifier_factory(),
          pipeline_config);
      const auto stats = pipeline.run_cycle();
      {
        const std::string tag = (resilient ? "resilient_" : "naive_") +
                                std::to_string(static_cast<int>(100 * rate));
        report.value("cycle_wall_ms_" + tag, "ms",
                     std::chrono::duration<double, std::milli>(stats.wall)
                         .count());
        report.value("coverage_" + tag, "fraction", stats.coverage(),
                     "none");
      }
      std::printf(
          "  %4.0f%%  %-10s %10.1f %8.1f%% %8zu %7zu %6zu %11zu\n",
          100.0 * rate, resilient ? "resilient" : "naive",
          std::chrono::duration<double, std::milli>(stats.wall).count(),
          100.0 * stats.coverage(), stats.retries, stats.devices_failed,
          stats.devices_stale, stats.violations);
    }
  }

  std::printf(
      "\nThe naive path loses ~rate of the fleet every cycle; the resilient\n"
      "path holds coverage at ~100%% for O(rate * devices) extra attempts.\n");

  // Distributed arm of the same question: instead of fetches failing,
  // whole workers crash. Each shard delivery kills its worker with the
  // given probability; the coordinator's reassignment budget (2 extra
  // deliveries per shard) is what stands between a crash and lost
  // coverage. Scripted in-process workers + an injected clock keep the
  // sweep deterministic and free of wall sleeps.
  constexpr int kTrials = 20;
  std::printf(
      "\n== distributed: coverage vs per-delivery worker crash rate ==\n"
      "(mean over %d seeded trials per cell)\n"
      "  rate   workers  coverage  reassigned  shards-failed  workers-lost\n",
      kTrials);
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      double coverage_sum = 0.0;
      double reassigned_sum = 0.0;
      double failed_sum = 0.0;
      double lost_sum = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        rcdc::ManualFetchClock dist_clock;
        dist::CoordinatorConfig dist_config;
        dist_config.clock = &dist_clock;
        dist::Coordinator coordinator(metadata, dist_config);
        for (std::size_t i = 0; i < workers; ++i) {
          coordinator.add_worker(std::make_unique<CrashyWorker>(
              "w" + std::to_string(i), metadata.epoch(), rate,
              /*seed=*/100000 * static_cast<std::uint64_t>(trial) +
                  1000 * static_cast<std::uint64_t>(100 * rate) +
                  10 * workers + i));
        }
        const dist::DistributedSummary summary = coordinator.run_cycle();
        coverage_sum += summary.coverage();
        reassigned_sum += static_cast<double>(summary.reassignments);
        failed_sum += static_cast<double>(summary.shards_failed);
        lost_sum += static_cast<double>(summary.workers_lost);
      }
      const std::string tag = std::to_string(static_cast<int>(100 * rate)) +
                              "_w" + std::to_string(workers);
      report.value("dist_coverage_" + tag, "fraction",
                   coverage_sum / kTrials, "none");
      report.value("dist_reassignments_" + tag, "count",
                   reassigned_sum / kTrials, "none");
      std::printf("  %4.0f%%  %7zu %8.1f%% %11.1f %14.1f %13.1f\n",
                  100.0 * rate, workers, 100.0 * coverage_sum / kTrials,
                  reassigned_sum / kTrials, failed_sum / kTrials,
                  lost_sum / kTrials);
    }
  }
  std::printf(
      "\nOne worker is a single failure domain: a crash strands the rest of\n"
      "the cycle. Four workers turn the same crash rate into reassignment\n"
      "work, holding coverage until the per-shard budget is exhausted.\n");

  std::printf(
      "\n-- metrics registry, resilient arm (Prometheus exposition) --\n%s",
      obs::write_prometheus(registry).c_str());
  if (!json_out.empty()) {
    report.workload("devices", static_cast<double>(topology.device_count()));
    report.value("reconverge_rounds_total", "rounds", reconverge_rounds_total,
                 "none");
    report.attach_registry(&registry);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
