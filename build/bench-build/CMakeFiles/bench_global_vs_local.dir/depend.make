# Empty dependencies file for bench_global_vs_local.
# This may be replaced when dependencies are built.
