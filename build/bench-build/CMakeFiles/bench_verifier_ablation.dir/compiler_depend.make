# Empty compiler generated dependencies file for bench_verifier_ablation.
# This may be replaced when dependencies are built.
