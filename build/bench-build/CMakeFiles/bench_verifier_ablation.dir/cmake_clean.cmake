file(REMOVE_RECURSE
  "../bench/bench_verifier_ablation"
  "../bench/bench_verifier_ablation.pdb"
  "CMakeFiles/bench_verifier_ablation.dir/bench_verifier_ablation.cpp.o"
  "CMakeFiles/bench_verifier_ablation.dir/bench_verifier_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verifier_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
