file(REMOVE_RECURSE
  "../bench/bench_fig12_nsg_gate"
  "../bench/bench_fig12_nsg_gate.pdb"
  "CMakeFiles/bench_fig12_nsg_gate.dir/bench_fig12_nsg_gate.cpp.o"
  "CMakeFiles/bench_fig12_nsg_gate.dir/bench_fig12_nsg_gate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nsg_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
