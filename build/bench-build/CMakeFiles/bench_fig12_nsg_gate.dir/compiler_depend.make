# Empty compiler generated dependencies file for bench_fig12_nsg_gate.
# This may be replaced when dependencies are built.
