file(REMOVE_RECURSE
  "../bench/bench_secguru_acl"
  "../bench/bench_secguru_acl.pdb"
  "CMakeFiles/bench_secguru_acl.dir/bench_secguru_acl.cpp.o"
  "CMakeFiles/bench_secguru_acl.dir/bench_secguru_acl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secguru_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
