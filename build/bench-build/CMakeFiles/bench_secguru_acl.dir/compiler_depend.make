# Empty compiler generated dependencies file for bench_secguru_acl.
# This may be replaced when dependencies are built.
