# Empty dependencies file for bench_rcdc_scale.
# This may be replaced when dependencies are built.
