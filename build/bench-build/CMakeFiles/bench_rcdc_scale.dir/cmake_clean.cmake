file(REMOVE_RECURSE
  "../bench/bench_rcdc_scale"
  "../bench/bench_rcdc_scale.pdb"
  "CMakeFiles/bench_rcdc_scale.dir/bench_rcdc_scale.cpp.o"
  "CMakeFiles/bench_rcdc_scale.dir/bench_rcdc_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rcdc_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
