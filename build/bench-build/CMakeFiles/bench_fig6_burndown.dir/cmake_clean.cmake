file(REMOVE_RECURSE
  "../bench/bench_fig6_burndown"
  "../bench/bench_fig6_burndown.pdb"
  "CMakeFiles/bench_fig6_burndown.dir/bench_fig6_burndown.cpp.o"
  "CMakeFiles/bench_fig6_burndown.dir/bench_fig6_burndown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_burndown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
