# Empty dependencies file for bench_fig6_burndown.
# This may be replaced when dependencies are built.
