file(REMOVE_RECURSE
  "../bench/bench_fig11_refactor"
  "../bench/bench_fig11_refactor.pdb"
  "CMakeFiles/bench_fig11_refactor.dir/bench_fig11_refactor.cpp.o"
  "CMakeFiles/bench_fig11_refactor.dir/bench_fig11_refactor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
