# Empty dependencies file for bench_fig11_refactor.
# This may be replaced when dependencies are built.
