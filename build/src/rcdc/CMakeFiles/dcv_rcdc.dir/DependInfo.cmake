
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcdc/beliefs.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/beliefs.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/beliefs.cpp.o.d"
  "/root/repo/src/rcdc/beliefs_io.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/beliefs_io.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/beliefs_io.cpp.o.d"
  "/root/repo/src/rcdc/burndown.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/burndown.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/burndown.cpp.o.d"
  "/root/repo/src/rcdc/contract_gen.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/contract_gen.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/contract_gen.cpp.o.d"
  "/root/repo/src/rcdc/correlation.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/correlation.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/correlation.cpp.o.d"
  "/root/repo/src/rcdc/global_checker.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/global_checker.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/global_checker.cpp.o.d"
  "/root/repo/src/rcdc/incremental.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/incremental.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/incremental.cpp.o.d"
  "/root/repo/src/rcdc/linear_verifier.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/linear_verifier.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/linear_verifier.cpp.o.d"
  "/root/repo/src/rcdc/local_validation.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/local_validation.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/local_validation.cpp.o.d"
  "/root/repo/src/rcdc/pipeline.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/pipeline.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/pipeline.cpp.o.d"
  "/root/repo/src/rcdc/precheck.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/precheck.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/precheck.cpp.o.d"
  "/root/repo/src/rcdc/report_io.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/report_io.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/report_io.cpp.o.d"
  "/root/repo/src/rcdc/severity.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/severity.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/severity.cpp.o.d"
  "/root/repo/src/rcdc/smt_verifier.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/smt_verifier.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/smt_verifier.cpp.o.d"
  "/root/repo/src/rcdc/triage.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/triage.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/triage.cpp.o.d"
  "/root/repo/src/rcdc/trie_verifier.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/trie_verifier.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/trie_verifier.cpp.o.d"
  "/root/repo/src/rcdc/validator.cpp" "src/rcdc/CMakeFiles/dcv_rcdc.dir/validator.cpp.o" "gcc" "src/rcdc/CMakeFiles/dcv_rcdc.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
