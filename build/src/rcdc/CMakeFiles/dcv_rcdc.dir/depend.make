# Empty dependencies file for dcv_rcdc.
# This may be replaced when dependencies are built.
