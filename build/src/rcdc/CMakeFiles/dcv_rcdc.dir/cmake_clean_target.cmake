file(REMOVE_RECURSE
  "libdcv_rcdc.a"
)
