# Empty dependencies file for dcv_net.
# This may be replaced when dependencies are built.
