file(REMOVE_RECURSE
  "CMakeFiles/dcv_net.dir/header.cpp.o"
  "CMakeFiles/dcv_net.dir/header.cpp.o.d"
  "CMakeFiles/dcv_net.dir/interval.cpp.o"
  "CMakeFiles/dcv_net.dir/interval.cpp.o.d"
  "CMakeFiles/dcv_net.dir/ipv4.cpp.o"
  "CMakeFiles/dcv_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/dcv_net.dir/prefix.cpp.o"
  "CMakeFiles/dcv_net.dir/prefix.cpp.o.d"
  "libdcv_net.a"
  "libdcv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
