file(REMOVE_RECURSE
  "libdcv_net.a"
)
