# Empty dependencies file for dcv_topology.
# This may be replaced when dependencies are built.
