file(REMOVE_RECURSE
  "CMakeFiles/dcv_topology.dir/clos_builder.cpp.o"
  "CMakeFiles/dcv_topology.dir/clos_builder.cpp.o.d"
  "CMakeFiles/dcv_topology.dir/faults.cpp.o"
  "CMakeFiles/dcv_topology.dir/faults.cpp.o.d"
  "CMakeFiles/dcv_topology.dir/metadata.cpp.o"
  "CMakeFiles/dcv_topology.dir/metadata.cpp.o.d"
  "CMakeFiles/dcv_topology.dir/topology.cpp.o"
  "CMakeFiles/dcv_topology.dir/topology.cpp.o.d"
  "CMakeFiles/dcv_topology.dir/topology_io.cpp.o"
  "CMakeFiles/dcv_topology.dir/topology_io.cpp.o.d"
  "libdcv_topology.a"
  "libdcv_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
