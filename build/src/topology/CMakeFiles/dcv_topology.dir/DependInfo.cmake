
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/clos_builder.cpp" "src/topology/CMakeFiles/dcv_topology.dir/clos_builder.cpp.o" "gcc" "src/topology/CMakeFiles/dcv_topology.dir/clos_builder.cpp.o.d"
  "/root/repo/src/topology/faults.cpp" "src/topology/CMakeFiles/dcv_topology.dir/faults.cpp.o" "gcc" "src/topology/CMakeFiles/dcv_topology.dir/faults.cpp.o.d"
  "/root/repo/src/topology/metadata.cpp" "src/topology/CMakeFiles/dcv_topology.dir/metadata.cpp.o" "gcc" "src/topology/CMakeFiles/dcv_topology.dir/metadata.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/dcv_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/dcv_topology.dir/topology.cpp.o.d"
  "/root/repo/src/topology/topology_io.cpp" "src/topology/CMakeFiles/dcv_topology.dir/topology_io.cpp.o" "gcc" "src/topology/CMakeFiles/dcv_topology.dir/topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
