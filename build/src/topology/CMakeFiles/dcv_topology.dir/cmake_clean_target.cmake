file(REMOVE_RECURSE
  "libdcv_topology.a"
)
