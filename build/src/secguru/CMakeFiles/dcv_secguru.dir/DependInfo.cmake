
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secguru/acl_parser.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/acl_parser.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/acl_parser.cpp.o.d"
  "/root/repo/src/secguru/contracts_io.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/contracts_io.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/contracts_io.cpp.o.d"
  "/root/repo/src/secguru/device_config.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/device_config.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/device_config.cpp.o.d"
  "/root/repo/src/secguru/engine.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/engine.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/engine.cpp.o.d"
  "/root/repo/src/secguru/firewall.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/firewall.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/firewall.cpp.o.d"
  "/root/repo/src/secguru/nsg.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/nsg.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/nsg.cpp.o.d"
  "/root/repo/src/secguru/nsg_gate.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/nsg_gate.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/nsg_gate.cpp.o.d"
  "/root/repo/src/secguru/refactor.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/refactor.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/refactor.cpp.o.d"
  "/root/repo/src/secguru/rule.cpp" "src/secguru/CMakeFiles/dcv_secguru.dir/rule.cpp.o" "gcc" "src/secguru/CMakeFiles/dcv_secguru.dir/rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
