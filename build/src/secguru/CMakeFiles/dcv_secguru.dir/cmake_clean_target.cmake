file(REMOVE_RECURSE
  "libdcv_secguru.a"
)
