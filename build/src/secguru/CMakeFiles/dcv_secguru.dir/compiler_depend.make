# Empty compiler generated dependencies file for dcv_secguru.
# This may be replaced when dependencies are built.
