file(REMOVE_RECURSE
  "CMakeFiles/dcv_secguru.dir/acl_parser.cpp.o"
  "CMakeFiles/dcv_secguru.dir/acl_parser.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/contracts_io.cpp.o"
  "CMakeFiles/dcv_secguru.dir/contracts_io.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/device_config.cpp.o"
  "CMakeFiles/dcv_secguru.dir/device_config.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/engine.cpp.o"
  "CMakeFiles/dcv_secguru.dir/engine.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/firewall.cpp.o"
  "CMakeFiles/dcv_secguru.dir/firewall.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/nsg.cpp.o"
  "CMakeFiles/dcv_secguru.dir/nsg.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/nsg_gate.cpp.o"
  "CMakeFiles/dcv_secguru.dir/nsg_gate.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/refactor.cpp.o"
  "CMakeFiles/dcv_secguru.dir/refactor.cpp.o.d"
  "CMakeFiles/dcv_secguru.dir/rule.cpp.o"
  "CMakeFiles/dcv_secguru.dir/rule.cpp.o.d"
  "libdcv_secguru.a"
  "libdcv_secguru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_secguru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
