# Empty dependencies file for dcv_smt.
# This may be replaced when dependencies are built.
