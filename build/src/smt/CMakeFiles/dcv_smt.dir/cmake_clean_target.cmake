file(REMOVE_RECURSE
  "libdcv_smt.a"
)
