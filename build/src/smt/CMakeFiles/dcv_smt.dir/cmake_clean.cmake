file(REMOVE_RECURSE
  "CMakeFiles/dcv_smt.dir/encoding.cpp.o"
  "CMakeFiles/dcv_smt.dir/encoding.cpp.o.d"
  "libdcv_smt.a"
  "libdcv_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
