file(REMOVE_RECURSE
  "CMakeFiles/dcv_routing.dir/aggregation.cpp.o"
  "CMakeFiles/dcv_routing.dir/aggregation.cpp.o.d"
  "CMakeFiles/dcv_routing.dir/bgp_sim.cpp.o"
  "CMakeFiles/dcv_routing.dir/bgp_sim.cpp.o.d"
  "CMakeFiles/dcv_routing.dir/fib.cpp.o"
  "CMakeFiles/dcv_routing.dir/fib.cpp.o.d"
  "CMakeFiles/dcv_routing.dir/fib_synthesizer.cpp.o"
  "CMakeFiles/dcv_routing.dir/fib_synthesizer.cpp.o.d"
  "CMakeFiles/dcv_routing.dir/table_io.cpp.o"
  "CMakeFiles/dcv_routing.dir/table_io.cpp.o.d"
  "libdcv_routing.a"
  "libdcv_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
