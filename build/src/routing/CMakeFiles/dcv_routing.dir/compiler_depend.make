# Empty compiler generated dependencies file for dcv_routing.
# This may be replaced when dependencies are built.
