
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/aggregation.cpp" "src/routing/CMakeFiles/dcv_routing.dir/aggregation.cpp.o" "gcc" "src/routing/CMakeFiles/dcv_routing.dir/aggregation.cpp.o.d"
  "/root/repo/src/routing/bgp_sim.cpp" "src/routing/CMakeFiles/dcv_routing.dir/bgp_sim.cpp.o" "gcc" "src/routing/CMakeFiles/dcv_routing.dir/bgp_sim.cpp.o.d"
  "/root/repo/src/routing/fib.cpp" "src/routing/CMakeFiles/dcv_routing.dir/fib.cpp.o" "gcc" "src/routing/CMakeFiles/dcv_routing.dir/fib.cpp.o.d"
  "/root/repo/src/routing/fib_synthesizer.cpp" "src/routing/CMakeFiles/dcv_routing.dir/fib_synthesizer.cpp.o" "gcc" "src/routing/CMakeFiles/dcv_routing.dir/fib_synthesizer.cpp.o.d"
  "/root/repo/src/routing/table_io.cpp" "src/routing/CMakeFiles/dcv_routing.dir/table_io.cpp.o" "gcc" "src/routing/CMakeFiles/dcv_routing.dir/table_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
