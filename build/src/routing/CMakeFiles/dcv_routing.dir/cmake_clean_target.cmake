file(REMOVE_RECURSE
  "libdcv_routing.a"
)
