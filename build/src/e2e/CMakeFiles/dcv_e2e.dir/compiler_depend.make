# Empty compiler generated dependencies file for dcv_e2e.
# This may be replaced when dependencies are built.
