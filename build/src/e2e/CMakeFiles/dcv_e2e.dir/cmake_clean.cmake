file(REMOVE_RECURSE
  "CMakeFiles/dcv_e2e.dir/end_to_end.cpp.o"
  "CMakeFiles/dcv_e2e.dir/end_to_end.cpp.o.d"
  "CMakeFiles/dcv_e2e.dir/trace.cpp.o"
  "CMakeFiles/dcv_e2e.dir/trace.cpp.o.d"
  "libdcv_e2e.a"
  "libdcv_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
