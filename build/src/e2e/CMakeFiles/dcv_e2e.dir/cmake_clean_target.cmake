file(REMOVE_RECURSE
  "libdcv_e2e.a"
)
