# Empty dependencies file for secguru_acl_refactor.
# This may be replaced when dependencies are built.
