file(REMOVE_RECURSE
  "CMakeFiles/secguru_acl_refactor.dir/secguru_acl_refactor.cpp.o"
  "CMakeFiles/secguru_acl_refactor.dir/secguru_acl_refactor.cpp.o.d"
  "secguru_acl_refactor"
  "secguru_acl_refactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secguru_acl_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
