file(REMOVE_RECURSE
  "CMakeFiles/rcdc_monitor.dir/rcdc_monitor.cpp.o"
  "CMakeFiles/rcdc_monitor.dir/rcdc_monitor.cpp.o.d"
  "rcdc_monitor"
  "rcdc_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcdc_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
