# Empty dependencies file for rcdc_monitor.
# This may be replaced when dependencies are built.
