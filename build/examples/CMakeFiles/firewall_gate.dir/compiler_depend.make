# Empty compiler generated dependencies file for firewall_gate.
# This may be replaced when dependencies are built.
