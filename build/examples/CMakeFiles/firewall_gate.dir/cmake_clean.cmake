file(REMOVE_RECURSE
  "CMakeFiles/firewall_gate.dir/firewall_gate.cpp.o"
  "CMakeFiles/firewall_gate.dir/firewall_gate.cpp.o.d"
  "firewall_gate"
  "firewall_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
