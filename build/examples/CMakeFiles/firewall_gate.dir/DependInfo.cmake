
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/firewall_gate.cpp" "examples/CMakeFiles/firewall_gate.dir/firewall_gate.cpp.o" "gcc" "examples/CMakeFiles/firewall_gate.dir/firewall_gate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/rcdc/CMakeFiles/dcv_rcdc.dir/DependInfo.cmake"
  "/root/repo/build/src/secguru/CMakeFiles/dcv_secguru.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
