file(REMOVE_RECURSE
  "CMakeFiles/precheck_rollout.dir/precheck_rollout.cpp.o"
  "CMakeFiles/precheck_rollout.dir/precheck_rollout.cpp.o.d"
  "precheck_rollout"
  "precheck_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precheck_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
