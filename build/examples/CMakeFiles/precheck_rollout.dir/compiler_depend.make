# Empty compiler generated dependencies file for precheck_rollout.
# This may be replaced when dependencies are built.
