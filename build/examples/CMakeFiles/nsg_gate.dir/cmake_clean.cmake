file(REMOVE_RECURSE
  "CMakeFiles/nsg_gate.dir/nsg_gate.cpp.o"
  "CMakeFiles/nsg_gate.dir/nsg_gate.cpp.o.d"
  "nsg_gate"
  "nsg_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsg_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
