# Empty dependencies file for nsg_gate.
# This may be replaced when dependencies are built.
