file(REMOVE_RECURSE
  "CMakeFiles/tests_net.dir/net/header_test.cpp.o"
  "CMakeFiles/tests_net.dir/net/header_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/interval_test.cpp.o"
  "CMakeFiles/tests_net.dir/net/interval_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/tests_net.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/prefix_test.cpp.o"
  "CMakeFiles/tests_net.dir/net/prefix_test.cpp.o.d"
  "tests_net"
  "tests_net.pdb"
  "tests_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
