# Empty dependencies file for tests_routing.
# This may be replaced when dependencies are built.
