file(REMOVE_RECURSE
  "CMakeFiles/tests_routing.dir/routing/aggregation_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/aggregation_test.cpp.o.d"
  "CMakeFiles/tests_routing.dir/routing/bgp_properties_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/bgp_properties_test.cpp.o.d"
  "CMakeFiles/tests_routing.dir/routing/bgp_sim_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/bgp_sim_test.cpp.o.d"
  "CMakeFiles/tests_routing.dir/routing/fib_synthesizer_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/fib_synthesizer_test.cpp.o.d"
  "CMakeFiles/tests_routing.dir/routing/fib_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/fib_test.cpp.o.d"
  "CMakeFiles/tests_routing.dir/routing/table_io_test.cpp.o"
  "CMakeFiles/tests_routing.dir/routing/table_io_test.cpp.o.d"
  "tests_routing"
  "tests_routing.pdb"
  "tests_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
