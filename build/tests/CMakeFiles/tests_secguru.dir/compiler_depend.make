# Empty compiler generated dependencies file for tests_secguru.
# This may be replaced when dependencies are built.
