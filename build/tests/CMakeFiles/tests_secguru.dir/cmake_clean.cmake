file(REMOVE_RECURSE
  "CMakeFiles/tests_secguru.dir/secguru/acl_parser_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/acl_parser_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/contracts_io_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/contracts_io_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/device_config_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/device_config_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/engine_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/engine_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/firewall_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/firewall_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/nsg_gate_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/nsg_gate_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/nsg_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/nsg_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/refactor_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/refactor_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/rule_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/rule_test.cpp.o.d"
  "CMakeFiles/tests_secguru.dir/secguru/semantic_diff_test.cpp.o"
  "CMakeFiles/tests_secguru.dir/secguru/semantic_diff_test.cpp.o.d"
  "tests_secguru"
  "tests_secguru.pdb"
  "tests_secguru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_secguru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
