
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/secguru/acl_parser_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/acl_parser_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/acl_parser_test.cpp.o.d"
  "/root/repo/tests/secguru/contracts_io_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/contracts_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/contracts_io_test.cpp.o.d"
  "/root/repo/tests/secguru/device_config_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/device_config_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/device_config_test.cpp.o.d"
  "/root/repo/tests/secguru/engine_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/engine_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/engine_test.cpp.o.d"
  "/root/repo/tests/secguru/firewall_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/firewall_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/firewall_test.cpp.o.d"
  "/root/repo/tests/secguru/nsg_gate_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/nsg_gate_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/nsg_gate_test.cpp.o.d"
  "/root/repo/tests/secguru/nsg_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/nsg_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/nsg_test.cpp.o.d"
  "/root/repo/tests/secguru/refactor_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/refactor_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/refactor_test.cpp.o.d"
  "/root/repo/tests/secguru/rule_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/rule_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/rule_test.cpp.o.d"
  "/root/repo/tests/secguru/semantic_diff_test.cpp" "tests/CMakeFiles/tests_secguru.dir/secguru/semantic_diff_test.cpp.o" "gcc" "tests/CMakeFiles/tests_secguru.dir/secguru/semantic_diff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/rcdc/CMakeFiles/dcv_rcdc.dir/DependInfo.cmake"
  "/root/repo/build/src/secguru/CMakeFiles/dcv_secguru.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
