# Empty dependencies file for tests_trie.
# This may be replaced when dependencies are built.
