file(REMOVE_RECURSE
  "CMakeFiles/tests_trie.dir/trie/prefix_trie_test.cpp.o"
  "CMakeFiles/tests_trie.dir/trie/prefix_trie_test.cpp.o.d"
  "tests_trie"
  "tests_trie.pdb"
  "tests_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
