# Empty dependencies file for tests_topology.
# This may be replaced when dependencies are built.
