file(REMOVE_RECURSE
  "CMakeFiles/tests_topology.dir/topology/clos_builder_test.cpp.o"
  "CMakeFiles/tests_topology.dir/topology/clos_builder_test.cpp.o.d"
  "CMakeFiles/tests_topology.dir/topology/faults_test.cpp.o"
  "CMakeFiles/tests_topology.dir/topology/faults_test.cpp.o.d"
  "CMakeFiles/tests_topology.dir/topology/metadata_test.cpp.o"
  "CMakeFiles/tests_topology.dir/topology/metadata_test.cpp.o.d"
  "CMakeFiles/tests_topology.dir/topology/topology_io_test.cpp.o"
  "CMakeFiles/tests_topology.dir/topology/topology_io_test.cpp.o.d"
  "CMakeFiles/tests_topology.dir/topology/topology_test.cpp.o"
  "CMakeFiles/tests_topology.dir/topology/topology_test.cpp.o.d"
  "tests_topology"
  "tests_topology.pdb"
  "tests_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
