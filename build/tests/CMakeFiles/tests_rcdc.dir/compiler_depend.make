# Empty compiler generated dependencies file for tests_rcdc.
# This may be replaced when dependencies are built.
