
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rcdc/beliefs_io_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/beliefs_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/beliefs_io_test.cpp.o.d"
  "/root/repo/tests/rcdc/beliefs_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/beliefs_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/beliefs_test.cpp.o.d"
  "/root/repo/tests/rcdc/burndown_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/burndown_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/burndown_test.cpp.o.d"
  "/root/repo/tests/rcdc/contract_gen_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/contract_gen_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/contract_gen_test.cpp.o.d"
  "/root/repo/tests/rcdc/correlation_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/correlation_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/correlation_test.cpp.o.d"
  "/root/repo/tests/rcdc/figure3_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/figure3_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/figure3_test.cpp.o.d"
  "/root/repo/tests/rcdc/global_checker_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/global_checker_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/global_checker_test.cpp.o.d"
  "/root/repo/tests/rcdc/incremental_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/incremental_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/incremental_test.cpp.o.d"
  "/root/repo/tests/rcdc/local_validation_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/local_validation_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/local_validation_test.cpp.o.d"
  "/root/repo/tests/rcdc/pipeline_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/pipeline_test.cpp.o.d"
  "/root/repo/tests/rcdc/precheck_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/precheck_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/precheck_test.cpp.o.d"
  "/root/repo/tests/rcdc/region_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/region_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/region_test.cpp.o.d"
  "/root/repo/tests/rcdc/report_io_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/report_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/report_io_test.cpp.o.d"
  "/root/repo/tests/rcdc/severity_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/severity_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/severity_test.cpp.o.d"
  "/root/repo/tests/rcdc/smt_verifier_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/smt_verifier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/smt_verifier_test.cpp.o.d"
  "/root/repo/tests/rcdc/triage_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/triage_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/triage_test.cpp.o.d"
  "/root/repo/tests/rcdc/trie_verifier_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/trie_verifier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/trie_verifier_test.cpp.o.d"
  "/root/repo/tests/rcdc/validator_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/validator_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/validator_test.cpp.o.d"
  "/root/repo/tests/rcdc/verifier_agreement_test.cpp" "tests/CMakeFiles/tests_rcdc.dir/rcdc/verifier_agreement_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rcdc.dir/rcdc/verifier_agreement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/rcdc/CMakeFiles/dcv_rcdc.dir/DependInfo.cmake"
  "/root/repo/build/src/secguru/CMakeFiles/dcv_secguru.dir/DependInfo.cmake"
  "/root/repo/build/src/e2e/CMakeFiles/dcv_e2e.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
