# Empty compiler generated dependencies file for tests_e2e.
# This may be replaced when dependencies are built.
