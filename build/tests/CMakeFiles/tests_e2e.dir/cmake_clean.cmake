file(REMOVE_RECURSE
  "CMakeFiles/tests_e2e.dir/e2e/end_to_end_test.cpp.o"
  "CMakeFiles/tests_e2e.dir/e2e/end_to_end_test.cpp.o.d"
  "CMakeFiles/tests_e2e.dir/e2e/trace_test.cpp.o"
  "CMakeFiles/tests_e2e.dir/e2e/trace_test.cpp.o.d"
  "tests_e2e"
  "tests_e2e.pdb"
  "tests_e2e[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
