# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_net[1]_include.cmake")
include("/root/repo/build/tests/tests_topology[1]_include.cmake")
include("/root/repo/build/tests/tests_routing[1]_include.cmake")
include("/root/repo/build/tests/tests_trie[1]_include.cmake")
include("/root/repo/build/tests/tests_smt[1]_include.cmake")
include("/root/repo/build/tests/tests_rcdc[1]_include.cmake")
include("/root/repo/build/tests/tests_secguru[1]_include.cmake")
include("/root/repo/build/tests/tests_e2e[1]_include.cmake")
include("/root/repo/build/tests/tests_robustness[1]_include.cmake")
