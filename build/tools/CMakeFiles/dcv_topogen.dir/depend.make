# Empty dependencies file for dcv_topogen.
# This may be replaced when dependencies are built.
