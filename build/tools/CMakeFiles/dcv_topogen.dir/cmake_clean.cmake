file(REMOVE_RECURSE
  "CMakeFiles/dcv_topogen.dir/dcv_topogen.cpp.o"
  "CMakeFiles/dcv_topogen.dir/dcv_topogen.cpp.o.d"
  "dcv_topogen"
  "dcv_topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
