file(REMOVE_RECURSE
  "CMakeFiles/dcv_trace.dir/dcv_trace.cpp.o"
  "CMakeFiles/dcv_trace.dir/dcv_trace.cpp.o.d"
  "dcv_trace"
  "dcv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
