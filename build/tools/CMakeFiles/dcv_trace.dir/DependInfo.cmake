
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dcv_trace.cpp" "tools/CMakeFiles/dcv_trace.dir/dcv_trace.cpp.o" "gcc" "tools/CMakeFiles/dcv_trace.dir/dcv_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/rcdc/CMakeFiles/dcv_rcdc.dir/DependInfo.cmake"
  "/root/repo/build/src/secguru/CMakeFiles/dcv_secguru.dir/DependInfo.cmake"
  "/root/repo/build/src/e2e/CMakeFiles/dcv_e2e.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dcv_smt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
