# Empty dependencies file for dcv_precheck.
# This may be replaced when dependencies are built.
