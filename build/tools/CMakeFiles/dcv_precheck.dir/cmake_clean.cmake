file(REMOVE_RECURSE
  "CMakeFiles/dcv_precheck.dir/dcv_precheck.cpp.o"
  "CMakeFiles/dcv_precheck.dir/dcv_precheck.cpp.o.d"
  "dcv_precheck"
  "dcv_precheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_precheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
