# Empty dependencies file for secguru_check.
# This may be replaced when dependencies are built.
