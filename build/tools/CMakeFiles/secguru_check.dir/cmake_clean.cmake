file(REMOVE_RECURSE
  "CMakeFiles/secguru_check.dir/secguru_check.cpp.o"
  "CMakeFiles/secguru_check.dir/secguru_check.cpp.o.d"
  "secguru_check"
  "secguru_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secguru_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
