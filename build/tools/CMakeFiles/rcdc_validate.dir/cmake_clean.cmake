file(REMOVE_RECURSE
  "CMakeFiles/rcdc_validate.dir/rcdc_validate.cpp.o"
  "CMakeFiles/rcdc_validate.dir/rcdc_validate.cpp.o.d"
  "rcdc_validate"
  "rcdc_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcdc_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
