# Empty compiler generated dependencies file for rcdc_validate.
# This may be replaced when dependencies are built.
