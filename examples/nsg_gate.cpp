// Safeguarding network security groups (§3.4): a customer virtual network
// hosts a managed database whose backups are orchestrated by an
// infrastructure service outside the network. The validated NSG change API
// accepts benign edits and rejects, with a concrete witness packet and the
// offending rule, the classic lockdown change that would silently break
// backups.
#include <iostream>

#include "secguru/nsg_gate.hpp"

int main() {
  using namespace dcv::secguru;
  using dcv::net::PortRange;
  using dcv::net::Prefix;
  using dcv::net::ProtocolSpec;

  Engine engine;
  const BackupInfrastructure infra;
  const NsgGate gate(engine, infra);

  VirtualNetwork vnet{.name = "contoso-prod",
                      .address_space = Prefix::parse("10.1.0.0/16"),
                      .has_database_instance = true,
                      .nsg = Nsg("contoso-prod-nsg")};
  // The NSG the service provisions (cf. Figure 9).
  vnet.nsg = parse_nsg(
      "priority,name,source,src_ports,destination,dst_ports,protocol,access\n"
      "100,AllowVnetInBound,VirtualNetwork,Any,VirtualNetwork,Any,Any,Allow\n"
      "300,AllowBackupControl,SqlManagement,Any,10.1.0.0/16,1433-1434,Tcp,"
      "Allow\n"
      "310,AllowBackupData,10.1.0.0/16,Any,SqlManagement,443,Tcp,Allow\n"
      "4096,DenyAllInBound,Any,Any,Any,Any,Any,Deny\n",
      "contoso-prod-nsg");

  std::cout << "== SecGuru NSG change gate ==\n"
            << "virtual network " << vnet.name << " ("
            << vnet.address_space.to_string()
            << "), managed database present\n"
            << "auto-added contracts:\n";
  for (const auto& contract :
       database_backup_contracts(vnet, infra).contracts) {
    std::cout << "  " << contract.name << " (must "
              << to_string(contract.expect) << ")\n";
  }

  // Change 1: a benign application rule.
  {
    Nsg proposed = vnet.nsg;
    proposed.upsert(NsgRule{
        .priority = 1000,
        .name = "AllowWebApp",
        .rule = Rule{.action = Action::kPermit,
                     .protocol = ProtocolSpec::tcp(),
                     .src = Prefix::default_route(),
                     .src_ports = PortRange::any(),
                     .dst = vnet.address_space,
                     .dst_ports = PortRange::exactly(443)}});
    const auto result = gate.try_update(vnet, proposed);
    std::cout << "\nchange 1 (AllowWebApp @1000): "
              << (result.accepted ? "ACCEPTED" : "REJECTED") << "\n";
  }

  // Change 2: the classic mistake — a broad inbound lockdown at a priority
  // above the backup allow rules.
  {
    Nsg proposed = vnet.nsg;
    proposed.upsert(NsgRule{
        .priority = 150,
        .name = "DenyAllInboundLockdown",
        .rule = Rule{.action = Action::kDeny,
                     .protocol = ProtocolSpec::any(),
                     .src = Prefix::default_route(),
                     .src_ports = PortRange::any(),
                     .dst = vnet.address_space,
                     .dst_ports = PortRange::any()}});
    const auto result = gate.try_update(vnet, proposed);
    std::cout << "\nchange 2 (DenyAllInboundLockdown @150): "
              << (result.accepted ? "ACCEPTED" : "REJECTED") << "\n";
    for (const auto& failure : result.report.failures) {
      std::cout << "  failed invariant: " << failure.contract_name << "\n";
      if (failure.witness) {
        std::cout << "    witness packet: " << failure.witness->to_string()
                  << "\n";
      }
      if (failure.violating_rule) {
        const auto policy = proposed.to_policy();
        std::cout << "    blocked by rule: "
                  << policy.rules[*failure.violating_rule].comment << " ("
                  << policy.rules[*failure.violating_rule].to_string()
                  << ")\n";
      }
    }
  }

  // Change 3: the same lockdown below the backup rules is fine.
  {
    Nsg proposed = vnet.nsg;
    proposed.upsert(NsgRule{
        .priority = 500,
        .name = "DenyInternetInbound",
        .rule = Rule{.action = Action::kDeny,
                     .protocol = ProtocolSpec::any(),
                     .src = Prefix::default_route(),
                     .src_ports = PortRange::any(),
                     .dst = vnet.address_space,
                     .dst_ports = PortRange::any()}});
    const auto result = gate.try_update(vnet, proposed);
    std::cout << "\nchange 3 (DenyInternetInbound @500, below the backup "
                 "allows): "
              << (result.accepted ? "ACCEPTED" : "REJECTED") << "\n";
  }

  std::cout << "\nfinal NSG:\n" << write_nsg(vnet.nsg);
  return 0;
}
