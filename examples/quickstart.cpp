// Quickstart: the paper's running example end to end (§2.4, Figures 3/4).
//
// Builds the scaled-down datacenter of Figure 3, derives local forwarding
// contracts from the architecture, validates the healthy network, then
// applies the paper's four link failures and shows exactly the contract
// violations §2.4.4 walks through — plus the triage decisions and the
// global-reachability view of the same incident.
#include <iostream>

#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/triage.hpp"
#include "rcdc/trie_verifier.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace {

using namespace dcv;

std::string hops_to_names(const topo::Topology& topology,
                          const std::vector<topo::DeviceId>& hops) {
  std::string out = "{";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += ", ";
    out += topology.device(hops[i]).name;
  }
  return out + "}";
}

void print_contract_table(const topo::Topology& topology,
                          const rcdc::ContractGenerator& generator,
                          const char* device_name) {
  const auto device = *topology.find_device(device_name);
  std::cout << "\n  " << device_name << " contracts (cf. Figure 4):\n";
  for (const rcdc::Contract& c : generator.for_device(device)) {
    std::cout << "    " << (c.prefix.is_default() ? "0/0        "
                                                  : c.prefix.to_string())
              << "  ->  " << hops_to_names(topology, c.expected_next_hops)
              << (c.mode == rcdc::MatchMode::kSubsetAtLeast
                      ? "  (at least " + std::to_string(c.min_next_hops) +
                            ")"
                      : "")
              << "\n";
  }
}

void validate_and_report(const topo::Topology& topology,
                         const topo::MetadataService& metadata) {
  const routing::BgpSimulator sim(topology);
  const rcdc::SimulatorFibSource fibs(sim);
  const rcdc::DatacenterValidator validator(
      metadata, fibs, rcdc::make_trie_verifier_factory());
  const auto summary = validator.run(/*threads=*/2);
  std::cout << "  checked " << summary.devices_checked << " devices, "
            << summary.contracts_checked << " contracts -> "
            << summary.violations.size() << " violations\n";

  const rcdc::TriageEngine triage(topology);
  for (const rcdc::Violation& v : summary.violations) {
    const auto decision = triage.triage(v);
    std::cout << "    " << topology.device(v.device).name << "  "
              << (v.contract.kind == rcdc::ContractKind::kDefault
                      ? "default"
                      : v.contract.prefix.to_string())
              << "  " << to_string(v.kind) << ": expected "
              << hops_to_names(topology, v.contract.expected_next_hops)
              << ", actual " << hops_to_names(topology, v.actual_next_hops)
              << "  [" << to_string(decision.risk) << " risk, "
              << to_string(decision.action) << "]\n";
  }

  const rcdc::GlobalChecker global(metadata, fibs);
  const auto result = global.check_all_pairs(/*max_failures=*/4);
  std::cout << "  global view: " << result.pairs_checked << " ToR pairs, "
            << result.pairs_reachable << " reachable, "
            << result.pairs_shortest << " on shortest paths, "
            << result.pairs_fully_redundant << " fully redundant\n";
  for (const std::string& failure : result.failures) {
    std::cout << "    global: " << failure << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "== RCDC quickstart: Figure 3 datacenter ==\n";
  topo::Topology topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const rcdc::ContractGenerator generator(metadata);

  std::cout << "\nIntent derived from architecture metadata:";
  print_contract_table(topology, generator, "ToR1");
  print_contract_table(topology, generator, "A1");
  print_contract_table(topology, generator, "D1");

  std::cout << "\nHealthy network:\n";
  validate_and_report(topology, metadata);

  std::cout << "\nApplying Figure 3's four link failures (ToR1-A3, ToR1-A4, "
               "ToR2-A1, ToR2-A2):\n";
  topo::apply_figure3_failures(topology);
  validate_and_report(topology, metadata);

  std::cout << "\nNote how R1/R2 keep their (cardinality-style) contracts "
               "for Prefix_B,\nso the longer detour route of Section 2.4.4 "
               "remains available while the\nToR default contracts flag the "
               "degraded ECMP fan-out.\n";
  return 0;
}
