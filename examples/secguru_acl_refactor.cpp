// Legacy Edge-ACL refactoring (§3.3, Figure 11): a several-thousand-rule
// edge ACL is transformed to its intended shape through a phased plan in
// which every change is pre-checked on a lab device against the regression
// contract suite, deployed, post-checked, and rolled back on failure. One
// step carries the paper's classic typo — a wrong prefix — which the
// precheck catches before it can cause an outage.
#include <iostream>

#include "secguru/acl_parser.hpp"
#include "secguru/refactor.hpp"

int main() {
  using namespace dcv::secguru;

  // A scaled-down edge ACL so the example runs in seconds; the benchmark
  // bench_fig11_refactor exercises the paper's several-thousand-rule scale.
  const LegacyAclParams params{.owned_prefixes = 20,
                               .services = 40,
                               .whitelist_entries_per_service = 6,
                               .zero_day_blocks = 20};
  Policy production = generate_legacy_edge_acl(params);
  const ContractSuite contracts = edge_acl_contracts(params);
  Engine engine;

  std::cout << "== SecGuru: managing a legacy Edge ACL ==\n"
            << "legacy ACL: " << production.rules.size() << " rules; "
            << "regression suite: " << contracts.contracts.size()
            << " contracts\n";

  const auto shadowed = engine.shadowed_rules(production);
  std::cout << "semantic analysis: " << shadowed.size()
            << " rules are fully shadowed (can never decide a packet)\n";

  std::vector<Change> plan;
  plan.push_back(delete_rules_matching(
      "remove duplicate rules accumulated through organic growth",
      [](const Rule& r) { return r.comment == "redundant duplicate"; }));
  plan.push_back(delete_rules_matching(
      "move service whitelists to end-host firewalls",
      [](const Rule& r) { return r.comment.starts_with("service whitelist"); }));
  plan.push_back(delete_rules_matching(
      "retire stale zero-day mitigations",
      [](const Rule& r) {
        return r.comment.starts_with("zero-day mitigation");
      }));
  // The typo step: replace the permit for an owned /20 by a permit for a
  // mistyped prefix (104.209 instead of 104.208). SecGuru's precheck flags
  // the service-reachability contracts that break.
  plan.push_back(Change{
      .description = "consolidate permits (TYPO: 104.209.0.0/20)",
      .apply = [](const Policy& before) {
        Policy after = before;
        for (Rule& rule : after.rules) {
          if (rule.action == Action::kPermit &&
              rule.dst == dcv::net::Prefix::parse("104.208.0.0/20")) {
            rule.dst = dcv::net::Prefix::parse("104.209.0.0/20");
          }
        }
        return after;
      }});
  // The corrected step: a harmless tightening that passes.
  plan.push_back(delete_rules_matching(
      "corrected change: drop nothing further (no-op consolidation)",
      [](const Rule&) { return false; }));

  const auto outcomes =
      execute_refactor_plan(engine, production, plan, contracts);

  std::cout << "\nFigure 11 — rule count across refactoring changes:\n";
  std::cout << "  step  rules-before  rules-after  precheck  applied\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StepOutcome& o = outcomes[i];
    std::cout << "  " << i + 1 << "     " << o.rules_before << "          "
              << o.rules_after << "         "
              << (o.precheck_ok ? "pass" : "FAIL") << "      "
              << (o.applied ? "yes" : "no") << "    " << o.description
              << "\n";
    for (const auto& failure : o.precheck_failures) {
      std::cout << "          precheck caught: " << failure.contract_name;
      if (failure.witness) {
        std::cout << " (witness " << failure.witness->to_string() << ")";
      }
      std::cout << "\n";
    }
  }
  std::cout << "\nfinal ACL: " << production.rules.size()
            << " rules (goal: under 1000, without outages)\n";
  return production.rules.size() < 1000 ? 0 : 1;
}
