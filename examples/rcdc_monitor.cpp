// Live monitoring scenario (§2.6): runs the three-microservice RCDC
// pipeline of Figure 5 over a mid-size datacenter with injected production
// faults drawn from the §2.6.2 catalog, triages every alert, remediates in
// risk order, and repeats the cycle until the datacenter validates clean —
// a miniature of the Figure 6 burndown.
#include <iostream>

#include "rcdc/pipeline.hpp"
#include "rcdc/triage.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

int main() {
  using namespace dcv;

  const topo::ClosParams params{.clusters = 6,
                                .tors_per_cluster = 6,
                                .leaves_per_cluster = 4,
                                .spines_per_plane = 2,
                                .regional_spines = 4};
  topo::Topology topology = topo::build_clos(params);
  const topo::MetadataService metadata(topology);
  std::cout << "== RCDC live monitoring ==\n"
            << "datacenter: " << topology.device_count() << " devices, "
            << metadata.all_prefixes().size() << " hosted prefixes\n";

  // Inject the §2.6.2 fault mix: optical failures, forgotten admin-shuts,
  // and device software/policy bugs.
  topo::FaultInjector faults(topology, /*seed=*/2019);
  faults.random_link_failures(5);
  faults.random_bgp_shutdowns(3);
  faults.random_device_faults(1, topo::DeviceRole::kTor,
                              topo::DeviceFaultKind::kRibFibInconsistency);
  faults.random_device_faults(1, topo::DeviceRole::kLeaf,
                              topo::DeviceFaultKind::kLayer2InterfaceBug);
  faults.random_device_faults(1, topo::DeviceRole::kTor,
                              topo::DeviceFaultKind::kEcmpSingleNextHop);
  std::cout << "injected faults (ground truth):\n";
  for (const auto& record : faults.records()) {
    std::cout << "  " << record.to_string(topology) << "\n";
  }

  const rcdc::PipelineConfig config{
      .puller_workers = 8,
      .validator_workers = 4,
      .fetch_latency_min = std::chrono::microseconds(200'000),
      .fetch_latency_max = std::chrono::microseconds(800'000),
      .time_scale = 0.001,  // production latencies, compressed 1000x
      .seed = 7};
  const rcdc::TriageEngine triage(topology);

  for (int cycle = 1; cycle <= 8; ++cycle) {
    // Each cycle pulls fresh state: re-run routing over the current network.
    const routing::BgpSimulator sim(topology, &faults);
    const rcdc::SimulatorFibSource fibs(sim);
    rcdc::MonitoringPipeline pipeline(metadata, fibs,
                                      rcdc::make_trie_verifier_factory(),
                                      config);
    std::size_t printed = 0;
    pipeline.set_alert_sink([&](const rcdc::Violation& v,
                                const rcdc::RiskAssessment& assessment) {
      if (printed++ >= 6) return;  // sample the alert stream
      const auto decision = triage.triage(v);
      std::cout << "  alert: " << topology.device(v.device).name << " "
                << (v.contract.kind == rcdc::ContractKind::kDefault
                        ? "default"
                        : v.contract.prefix.to_string())
                << " " << to_string(v.kind) << " [" << to_string(decision.risk)
                << "] -> " << to_string(decision.action) << "\n";
    });
    const auto stats = pipeline.run_cycle();
    std::cout << "cycle " << cycle << ": " << stats.devices << " devices, "
              << stats.violations << " violations (" << stats.alerts_high
              << " high / " << stats.alerts_low << " low), wall "
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     stats.wall)
                     .count()
              << " ms, mean simulated fetch "
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     stats.fetch_sim_total)
                         .count() /
                     static_cast<long>(stats.devices)
              << " ms\n";
    if (stats.violations == 0) {
      std::cout << "datacenter validates clean; monitoring continues.\n";
      break;
    }
    // Remediation: fix up to three faults per cycle (risk-agnostic FIFO
    // here; see bench_fig6_burndown for the risk-ordered policy).
    for (int fixed = 0; fixed < 3 && !faults.records().empty(); ++fixed) {
      std::cout << "  remediating: "
                << faults.records().front().to_string(topology) << "\n";
      faults.repair(0);
    }
  }
  return 0;
}
