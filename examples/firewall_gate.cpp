// Validating distributed firewalls (§3.5): the common guest-VM
// restrictions are derived from a template (deny-overrides semantics) and
// every deployment is gated on the security-policy contracts. An automation
// bug that omits the infrastructure-isolation rules is caught before the
// policy ships.
#include <iostream>

#include "secguru/acl_parser.hpp"
#include "secguru/firewall.hpp"

int main() {
  using namespace dcv::secguru;

  Engine engine;
  const InfrastructureEndpoints infra;
  const FirewallDeploymentGate gate(engine, infra);
  const VmInstance vm{.name = "tenant-vm-17",
                      .vnet = dcv::net::Prefix::parse("10.42.0.0/16")};

  std::cout << "== SecGuru distributed-firewall deployment gate ==\n";

  const Policy good = instantiate_common_firewall(vm, infra);
  std::cout << "\ntemplate-derived firewall for " << vm.name
            << " (deny-overrides, " << good.rules.size() << " rules):\n"
            << write_acl(good);

  const auto ok = gate.validate(vm, good);
  std::cout << "deployment gate: "
            << (ok.deployable ? "DEPLOYABLE" : "BLOCKED") << " ("
            << ok.report.contracts_checked << " contracts)\n";

  // The §3.5 failure mode: an automation bug drops the infrastructure
  // isolation section.
  const Policy buggy = instantiate_common_firewall(
      vm, infra, TemplateBugs{.omit_infrastructure_isolation = true});
  const auto blocked = gate.validate(vm, buggy);
  std::cout << "\nbuggy instantiation (infrastructure isolation omitted): "
            << (blocked.deployable ? "DEPLOYABLE" : "BLOCKED") << "\n";
  for (const auto& failure : blocked.report.failures) {
    std::cout << "  failed: " << failure.contract_name;
    if (failure.witness) {
      std::cout << "  witness: " << failure.witness->to_string();
    }
    std::cout << "\n";
  }
  return blocked.deployable ? 1 : 0;
}
