// Preventing dangerous changes (§2.7, Figure 7): proposed network changes
// are applied to an emulated clone of production, routing re-runs, and the
// same RCDC contracts used for live monitoring gate the rollout. The
// rollout below reproduces the §2.6.2 "Migrations" root cause — a leaf-ASN
// collision between decommissioned and new infrastructure — which the
// pre-check rejects before it reaches production.
#include <iostream>

#include "rcdc/precheck.hpp"
#include "topology/clos_builder.hpp"

int main() {
  using namespace dcv;

  topo::Topology production = topo::build_clos(topo::ClosParams{
      .clusters = 3,
      .tors_per_cluster = 4,
      .leaves_per_cluster = 4,
      .spines_per_plane = 2,
      .regional_spines = 4});
  std::cout << "== RCDC pre-check workflow (Figure 7) ==\n"
            << "production: " << production.device_count()
            << " devices; every change is emulated and validated against "
               "the same contracts as live monitoring\n\n";

  const rcdc::PrecheckPipeline pipeline(production);

  std::vector<rcdc::NetworkChange> rollout;
  // Step 1: benign — renumber a ToR within its cluster's unique range.
  rollout.push_back(rcdc::reassign_asn(
      "renumber T0-0-0 to ASN 64990",
      *production.find_device("T0-0-0"), 64990));
  // Step 2: the migration misconfiguration — cluster 2's leaves get
  // cluster 0's leaf ASN.
  rollout.push_back(rcdc::NetworkChange{
      .description = "migrate cluster 2 leaves onto cluster 0's ASN",
      .apply = [](topo::Topology& emulated) {
        const topo::Asn asn =
            emulated.device(emulated.leaves_in_cluster(0)[0]).asn;
        for (const topo::DeviceId leaf : emulated.leaves_in_cluster(2)) {
          emulated.set_asn(leaf, asn);
        }
      }});
  // Step 3: would be fine, but the rollout never gets here.
  rollout.push_back(rcdc::reassign_asn(
      "renumber T0-1-0 to ASN 64991",
      *production.find_device("T0-1-0"), 64991));

  const auto results = pipeline.check_rollout(rollout);
  for (const rcdc::PrecheckResult& result : results) {
    std::cout << (result.approved ? "APPROVED " : "REJECTED ")
              << result.description << "\n"
              << "  baseline violations: " << result.baseline_violations
              << ", after change: " << result.post_change_violations
              << ", introduced: " << result.introduced.size() << "\n";
    std::size_t shown = 0;
    for (const rcdc::Violation& v : result.introduced) {
      if (shown++ >= 5) {
        std::cout << "    ... and " << result.introduced.size() - 5
                  << " more\n";
        break;
      }
      std::cout << "    " << production.device(v.device).name << " "
                << v.contract.prefix.to_string() << " "
                << to_string(v.kind) << "\n";
    }
  }
  if (results.size() < rollout.size()) {
    std::cout << "\nrollout halted: step " << results.size()
              << " rejected; later steps were never attempted.\n";
  }
  return 0;
}
