#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rcdc/fib_source.hpp"
#include "secguru/engine.hpp"
#include "secguru/nsg.hpp"
#include "topology/metadata.hpp"

namespace dcv::e2e {

/// The combined dataplane question of §3.6: "checking customer virtual
/// networks in context of routing rules are simple extensions" — here
/// built. A flow reaches a destination iff the fabric forwards it there
/// (per-device FIBs, RCDC's reality) *and* the destination's network
/// security group admits it (SecGuru's reality).
struct FlowVerdict {
  /// The fabric delivers packets for the destination prefix from the
  /// source ToR to the hosting ToR.
  bool routed = false;
  /// Shortest-path lengths observed (min == max == intended when healthy).
  int min_path_length = 0;
  int max_path_length = 0;
  /// Number of distinct forwarding paths (ECMP redundancy).
  std::uint64_t paths = 0;
  /// The destination NSG admits the flow (unset when no NSG is attached).
  std::optional<bool> admitted;
  /// When admitted == false: the NSG rule that blocked the flow.
  std::optional<std::size_t> blocking_rule;

  [[nodiscard]] bool delivered() const {
    return routed && admitted.value_or(true);
  }
};

/// A destination virtual network: a hosted prefix with an attached NSG.
struct ProtectedPrefix {
  net::Prefix prefix;
  secguru::Nsg nsg;
};

/// Combined routing + connectivity-policy checker.
class EndToEndChecker {
 public:
  EndToEndChecker(const topo::MetadataService& metadata,
                  const rcdc::FibSource& fibs)
      : metadata_(&metadata), fibs_(&fibs) {}

  /// Attaches (or replaces) the NSG protecting a hosted prefix.
  void protect(ProtectedPrefix protected_prefix);

  /// Verdict for a concrete flow from a source ToR toward a packet's
  /// destination. The packet's dst_ip selects the destination prefix; the
  /// full 5-tuple is evaluated against the destination's NSG, if any.
  [[nodiscard]] FlowVerdict check_flow(topo::DeviceId source_tor,
                                       const net::PacketHeader& packet);

  /// Symbolic variant: routing is checked toward the contract's
  /// destination prefix, and the destination NSG (when one protects that
  /// prefix) is checked against the contract with SecGuru. In the verdict,
  /// `admitted` then means "the NSG satisfies the contract" (for both
  /// allow and deny expectations) and `blocking_rule` identifies the
  /// violating rule on failure.
  [[nodiscard]] FlowVerdict check_contract(
      topo::DeviceId source_tor,
      const secguru::ConnectivityContract& contract);

 private:
  /// Forwarding-graph traversal for one destination prefix from one
  /// source, over FIBs fetched on demand (memoized per call).
  FlowVerdict route(topo::DeviceId source_tor, const net::Prefix& prefix);

  const topo::MetadataService* metadata_;
  const rcdc::FibSource* fibs_;
  std::vector<ProtectedPrefix> protected_prefixes_;
  secguru::Engine engine_;
};

}  // namespace dcv::e2e
