#pragma once

#include <string>
#include <vector>

#include "net/header.hpp"
#include "rcdc/fib_source.hpp"
#include "topology/metadata.hpp"

namespace dcv::e2e {

/// One hop of a traced flow.
struct TraceHop {
  topo::DeviceId device = topo::kInvalidDevice;
  /// The FIB rule that decided the forwarding at this device (the matched
  /// prefix); the destination's connected rule for the final hop.
  net::Prefix matched;
};

/// Outcome of tracing one flow.
struct TraceResult {
  enum class Outcome : std::uint8_t {
    kDelivered,   // reached the device hosting the destination prefix
    kDropped,     // no matching rule, or a rule with no next hops (discard)
    kLooped,      // revisited a device
    kMisdelivered,  // hit a connected rule on a device not hosting the
                    // destination
  };
  Outcome outcome = Outcome::kDropped;
  std::vector<TraceHop> hops;  // includes source and final device

  [[nodiscard]] std::string to_string(
      const topo::Topology& topology) const;
};

/// Deterministic per-flow ECMP hash over the 5-tuple, mirroring how switch
/// ASICs pin a flow to one member of an ECMP group. Same flow, same path.
[[nodiscard]] std::size_t ecmp_index(const net::PacketHeader& packet,
                                     std::size_t fanout);

/// Traces a single flow hop by hop through the FIBs: at every device the
/// longest-prefix match decides the ECMP group and the 5-tuple hash picks
/// the member. The dataplane's-eye view that complements the all-paths
/// analyses (GlobalChecker, BeliefChecker).
[[nodiscard]] TraceResult trace_flow(const topo::MetadataService& metadata,
                                     const rcdc::FibSource& fibs,
                                     topo::DeviceId source,
                                     const net::PacketHeader& packet);

}  // namespace dcv::e2e
