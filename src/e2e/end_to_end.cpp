#include "e2e/end_to_end.hpp"

#include <functional>
#include <map>

#include "net/error.hpp"

namespace dcv::e2e {

void EndToEndChecker::protect(ProtectedPrefix protected_prefix) {
  for (ProtectedPrefix& existing : protected_prefixes_) {
    if (existing.prefix == protected_prefix.prefix) {
      existing = std::move(protected_prefix);
      return;
    }
  }
  protected_prefixes_.push_back(std::move(protected_prefix));
}

FlowVerdict EndToEndChecker::route(topo::DeviceId source_tor,
                                   const net::Prefix& prefix) {
  FlowVerdict verdict;
  const auto fact = metadata_->locate(prefix);
  if (!fact) return verdict;  // not a hosted prefix: not routed

  // Depth-first traversal of the forwarding graph for this destination,
  // fetching FIBs on demand and memoizing per device.
  struct NodeState {
    bool visiting = false;
    bool done = false;
    bool reachable = false;
    std::uint64_t paths = 0;
    int min_len = 0;
    int max_len = 0;
  };
  std::map<topo::DeviceId, NodeState> states;
  const net::Ipv4Address address = prefix.first();

  const std::function<NodeState&(topo::DeviceId)> visit =
      [&](topo::DeviceId device) -> NodeState& {
    NodeState& state = states[device];
    if (state.done || state.visiting) return state;  // loop cut: !reachable
    state.visiting = true;
    if (device == fact->tor) {
      state = NodeState{.visiting = false,
                        .done = true,
                        .reachable = true,
                        .paths = 1,
                        .min_len = 0,
                        .max_len = 0};
      return states[device];
    }
    const routing::ForwardingTable fib = fibs_->fetch(device);
    if (const routing::Rule* rule = fib.lookup(address);
        rule != nullptr && !rule->connected) {
      for (const topo::DeviceId next : rule->next_hops) {
        const NodeState child = visit(next);  // copy: map may rehash
        if (!child.reachable) continue;
        if (state.paths == 0) {
          state.min_len = child.min_len + 1;
          state.max_len = child.max_len + 1;
        } else {
          state.min_len = std::min(state.min_len, child.min_len + 1);
          state.max_len = std::max(state.max_len, child.max_len + 1);
        }
        state.reachable = true;
        state.paths += child.paths;
      }
    }
    NodeState& stored = states[device];
    stored.visiting = false;
    stored.done = true;
    return stored;
  };

  const NodeState result = visit(source_tor);
  verdict.routed = result.reachable;
  verdict.paths = result.paths;
  verdict.min_path_length = result.min_len;
  verdict.max_path_length = result.max_len;
  return verdict;
}

FlowVerdict EndToEndChecker::check_flow(topo::DeviceId source_tor,
                                        const net::PacketHeader& packet) {
  // The destination prefix is the hosted prefix containing dst_ip.
  const ProtectedPrefix* destination = nullptr;
  net::Prefix prefix;
  bool found = false;
  for (const topo::PrefixFact& fact : metadata_->all_prefixes()) {
    if (fact.prefix.contains(packet.dst_ip)) {
      prefix = fact.prefix;
      found = true;
      break;
    }
  }
  if (!found) return FlowVerdict{};
  for (const ProtectedPrefix& candidate : protected_prefixes_) {
    if (candidate.prefix == prefix) destination = &candidate;
  }

  FlowVerdict verdict = route(source_tor, prefix);
  if (destination != nullptr) {
    const secguru::Decision decision =
        secguru::evaluate(destination->nsg.to_policy(), packet);
    verdict.admitted = decision.allowed;
    if (!decision.allowed) verdict.blocking_rule = decision.rule_index;
  }
  return verdict;
}

FlowVerdict EndToEndChecker::check_contract(
    topo::DeviceId source_tor,
    const secguru::ConnectivityContract& contract) {
  FlowVerdict verdict = route(source_tor, contract.dst);
  for (const ProtectedPrefix& candidate : protected_prefixes_) {
    if (!candidate.prefix.overlaps(contract.dst)) continue;
    const secguru::ContractCheckResult result =
        engine_.check(candidate.nsg.to_policy(), contract);
    verdict.admitted = result.holds;
    if (!result.holds) verdict.blocking_rule = result.violating_rule;
    break;
  }
  return verdict;
}

}  // namespace dcv::e2e
