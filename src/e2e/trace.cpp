#include "e2e/trace.hpp"

#include <set>
#include <sstream>

namespace dcv::e2e {

std::size_t ecmp_index(const net::PacketHeader& packet, std::size_t fanout) {
  if (fanout <= 1) return 0;
  // FNV-1a over the 5-tuple.
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const auto mix = [&hash](std::uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 0x100000001B3ull;
    }
  };
  mix(packet.src_ip.value(), 4);
  mix(packet.dst_ip.value(), 4);
  mix(packet.src_port, 2);
  mix(packet.dst_port, 2);
  mix(packet.protocol, 1);
  return static_cast<std::size_t>(hash % fanout);
}

TraceResult trace_flow(const topo::MetadataService& metadata,
                       const rcdc::FibSource& fibs, topo::DeviceId source,
                       const net::PacketHeader& packet) {
  TraceResult result;
  std::set<topo::DeviceId> visited;
  topo::DeviceId device = source;

  while (true) {
    if (!visited.insert(device).second) {
      result.outcome = TraceResult::Outcome::kLooped;
      result.hops.push_back(TraceHop{.device = device});
      return result;
    }
    const routing::ForwardingTable fib = fibs.fetch(device);
    const routing::Rule* rule = fib.lookup(packet.dst_ip);
    if (rule == nullptr) {
      result.hops.push_back(TraceHop{.device = device});
      result.outcome = TraceResult::Outcome::kDropped;
      return result;
    }
    result.hops.push_back(
        TraceHop{.device = device, .matched = rule->prefix});
    if (rule->connected) {
      // Delivered below this device iff it actually hosts the address.
      const auto& hosted = metadata.topology().device(device).hosted_prefixes;
      for (const net::Prefix& prefix : hosted) {
        if (prefix.contains(packet.dst_ip)) {
          result.outcome = TraceResult::Outcome::kDelivered;
          return result;
        }
      }
      result.outcome = TraceResult::Outcome::kMisdelivered;
      return result;
    }
    if (rule->next_hops.empty()) {
      result.outcome = TraceResult::Outcome::kDropped;  // discard route
      return result;
    }
    device = rule->next_hops[ecmp_index(packet, rule->next_hops.size())];
  }
}

std::string TraceResult::to_string(const topo::Topology& topology) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out << " -> ";
    out << topology.device(hops[i].device).name;
  }
  switch (outcome) {
    case Outcome::kDelivered:
      out << " [delivered]";
      break;
    case Outcome::kDropped:
      out << " [dropped]";
      break;
    case Outcome::kLooped:
      out << " [loop]";
      break;
    case Outcome::kMisdelivered:
      out << " [misdelivered]";
      break;
  }
  return out.str();
}

}  // namespace dcv::e2e
