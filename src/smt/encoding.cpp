#include "smt/encoding.hpp"

namespace dcv::smt {

z3::expr ip_value(z3::context& ctx, net::Ipv4Address address) {
  return ctx.bv_val(address.value(), 32);
}

z3::expr ip_in_interval(const z3::expr& ip,
                        const net::AddressInterval& interval) {
  z3::context& ctx = ip.ctx();
  return z3::uge(ip, ip_value(ctx, interval.lo)) &&
         z3::ule(ip, ip_value(ctx, interval.hi));
}

z3::expr ip_in_prefix(const z3::expr& ip, const net::Prefix& prefix) {
  return ip_in_interval(ip, net::AddressInterval::from_prefix(prefix));
}

z3::expr port_in_range(const z3::expr& port, const net::PortRange& range) {
  z3::context& ctx = port.ctx();
  if (range.is_any()) return ctx.bool_val(true);
  if (range.lo == range.hi) {
    return port == ctx.bv_val(range.lo, 16);
  }
  return z3::uge(port, ctx.bv_val(range.lo, 16)) &&
         z3::ule(port, ctx.bv_val(range.hi, 16));
}

z3::expr protocol_matches(const z3::expr& protocol,
                          const net::ProtocolSpec& spec) {
  z3::context& ctx = protocol.ctx();
  if (spec.is_any()) return ctx.bool_val(true);
  return protocol == ctx.bv_val(*spec.number, 8);
}

SymbolicPacket SymbolicPacket::create(z3::context& ctx,
                                      const std::string& tag) {
  return SymbolicPacket{
      .src_ip = ctx.bv_const(("srcIp" + tag).c_str(), 32),
      .src_port = ctx.bv_const(("srcPort" + tag).c_str(), 16),
      .dst_ip = ctx.bv_const(("dstIp" + tag).c_str(), 32),
      .dst_port = ctx.bv_const(("dstPort" + tag).c_str(), 16),
      .protocol = ctx.bv_const(("protocol" + tag).c_str(), 8),
  };
}

namespace {

std::uint64_t eval_bv(const z3::model& model, const z3::expr& e) {
  const z3::expr value = model.eval(e, /*model_completion=*/true);
  return value.get_numeral_uint64();
}

}  // namespace

net::Ipv4Address eval_ip(const z3::model& model, const z3::expr& ip) {
  return net::Ipv4Address(static_cast<std::uint32_t>(eval_bv(model, ip)));
}

std::uint16_t eval_port(const z3::model& model, const z3::expr& port) {
  return static_cast<std::uint16_t>(eval_bv(model, port));
}

std::uint8_t eval_protocol(const z3::model& model, const z3::expr& protocol) {
  return static_cast<std::uint8_t>(eval_bv(model, protocol));
}

net::PacketHeader eval_packet(const z3::model& model,
                              const SymbolicPacket& packet) {
  return net::PacketHeader{
      .src_ip = eval_ip(model, packet.src_ip),
      .src_port = eval_port(model, packet.src_port),
      .dst_ip = eval_ip(model, packet.dst_ip),
      .dst_port = eval_port(model, packet.dst_port),
      .protocol = eval_protocol(model, packet.protocol),
  };
}

}  // namespace dcv::smt
