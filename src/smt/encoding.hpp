#pragma once

#include <cstdint>
#include <string>

#include <z3++.h>

#include "net/header.hpp"
#include "net/interval.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"

/// Bit-vector encodings of network objects (§2.5.1, §3.2).
///
/// Policies and contracts are "essentially a set of constraints over IP
/// addresses, ports, and protocol, each of which are bit-vectors of varying
/// sizes". Addresses are 32-bit, ports 16-bit, protocols 8-bit bit-vectors;
/// ranges become unsigned comparisons, exactly as in the paper:
///
///   r.prefix(x) = (10.20.20.0 <= x <= 10.20.20.255)
namespace dcv::smt {

/// A 32-bit bit-vector constant holding an IPv4 address value.
[[nodiscard]] z3::expr ip_value(z3::context& ctx, net::Ipv4Address address);

/// The range predicate lo <= x <= hi over an address bit-vector.
[[nodiscard]] z3::expr ip_in_interval(const z3::expr& ip,
                                      const net::AddressInterval& interval);

/// The prefix-membership predicate, encoded as the unsigned range
/// comparison of §2.5.1 (equation 1).
[[nodiscard]] z3::expr ip_in_prefix(const z3::expr& ip,
                                    const net::Prefix& prefix);

/// The port-range predicate lo <= p <= hi over a 16-bit bit-vector; `true`
/// for the Any range.
[[nodiscard]] z3::expr port_in_range(const z3::expr& port,
                                     const net::PortRange& range);

/// The protocol predicate: `true` for the wildcard ("ip"), equality
/// otherwise.
[[nodiscard]] z3::expr protocol_matches(const z3::expr& protocol,
                                        const net::ProtocolSpec& spec);

/// The symbolic packet header tuple x = <srcIp, srcPort, dstIp, dstPort,
/// protocol> used by policy encodings (§3.2).
struct SymbolicPacket {
  z3::expr src_ip;
  z3::expr src_port;
  z3::expr dst_ip;
  z3::expr dst_port;
  z3::expr protocol;

  /// Fresh bit-vector variables, optionally tagged to keep several packets
  /// in one query distinct.
  static SymbolicPacket create(z3::context& ctx, const std::string& tag = "");
};

/// Reads a concrete IPv4 address out of a model; missing assignments
/// default to 0 (any value satisfies the formula then).
[[nodiscard]] net::Ipv4Address eval_ip(const z3::model& model,
                                       const z3::expr& ip);

/// Reads a concrete port out of a model.
[[nodiscard]] std::uint16_t eval_port(const z3::model& model,
                                      const z3::expr& port);

/// Reads a concrete protocol number out of a model.
[[nodiscard]] std::uint8_t eval_protocol(const z3::model& model,
                                         const z3::expr& protocol);

/// Reads a full concrete packet header out of a model.
[[nodiscard]] net::PacketHeader eval_packet(const z3::model& model,
                                            const SymbolicPacket& packet);

}  // namespace dcv::smt
