#include "dist/messages.hpp"

#include <span>

#include "net/bytes.hpp"

namespace dcv::dist {

namespace {

void put_prefix(net::ByteWriter& writer, const net::Prefix& prefix) {
  writer.u32(prefix.network().value());
  writer.u8(static_cast<std::uint8_t>(prefix.length()));
}

bool get_prefix(net::ByteReader& reader, net::Prefix& out) {
  std::uint32_t network = 0;
  std::uint8_t length = 0;
  if (!reader.u32(network) || !reader.u8(length) || length > 32) return false;
  out = net::Prefix(net::Ipv4Address(network), length);
  return true;
}

// Accepts any contiguous hop view (Rule vectors, arena-backed Rib slices)
// so encoding never forces a copy of compact route state.
void put_hops(net::ByteWriter& writer, std::span<const topo::DeviceId> hops) {
  writer.u32(static_cast<std::uint32_t>(hops.size()));
  for (const topo::DeviceId hop : hops) writer.u32(hop);
}

bool get_hops(net::ByteReader& reader, std::vector<topo::DeviceId>& out) {
  std::uint32_t n = 0;
  if (!reader.count(n, 4)) return false;
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!reader.u32(out[i])) return false;
  }
  return true;
}

void put_contract(net::ByteWriter& writer, const rcdc::Contract& contract) {
  writer.u8(static_cast<std::uint8_t>(contract.kind));
  put_prefix(writer, contract.prefix);
  put_hops(writer, contract.expected_next_hops);
  writer.u8(static_cast<std::uint8_t>(contract.mode));
  writer.u64(contract.min_next_hops);
  writer.u8(contract.allow_default_route ? 1 : 0);
}

bool get_contract(net::ByteReader& reader, rcdc::Contract& out) {
  std::uint8_t kind = 0;
  std::uint8_t mode = 0;
  std::uint8_t allow_default = 0;
  std::uint64_t min_hops = 0;
  if (!reader.u8(kind) ||
      kind > static_cast<std::uint8_t>(rcdc::ContractKind::kSpecific)) {
    return false;
  }
  if (!get_prefix(reader, out.prefix) ||
      !get_hops(reader, out.expected_next_hops)) {
    return false;
  }
  if (!reader.u8(mode) ||
      mode > static_cast<std::uint8_t>(rcdc::MatchMode::kSubsetAtLeast)) {
    return false;
  }
  if (!reader.u64(min_hops) || !reader.u8(allow_default) ||
      allow_default > 1) {
    return false;
  }
  out.kind = static_cast<rcdc::ContractKind>(kind);
  out.mode = static_cast<rcdc::MatchMode>(mode);
  out.min_next_hops = static_cast<std::size_t>(min_hops);
  out.allow_default_route = allow_default != 0;
  return true;
}

void put_violation(net::ByteWriter& writer, const rcdc::Violation& v) {
  writer.u32(v.device);
  put_contract(writer, v.contract);
  writer.u8(static_cast<std::uint8_t>(v.kind));
  put_prefix(writer, v.rule_prefix);
  put_hops(writer, v.actual_next_hops);
}

bool get_violation(net::ByteReader& reader, rcdc::Violation& out) {
  std::uint8_t kind = 0;
  if (!reader.u32(out.device) || !get_contract(reader, out.contract)) {
    return false;
  }
  if (!reader.u8(kind) ||
      kind > static_cast<std::uint8_t>(
                 rcdc::ViolationKind::kSpecificViaDefaultRoute)) {
    return false;
  }
  out.kind = static_cast<rcdc::ViolationKind>(kind);
  return get_prefix(reader, out.rule_prefix) &&
         get_hops(reader, out.actual_next_hops);
}

}  // namespace

Frame encode(const HelloMsg& msg) {
  net::ByteWriter writer;
  writer.str(msg.worker_id);
  writer.u32(msg.protocol);
  writer.u64(msg.topology_epoch);
  writer.u64(msg.send_ns);
  return Frame{MsgType::kHello, writer.take()};
}

std::optional<HelloMsg> decode_hello(std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  HelloMsg msg;
  if (!reader.str(msg.worker_id) || !reader.u32(msg.protocol) ||
      !reader.u64(msg.topology_epoch) || !reader.u64(msg.send_ns) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

Frame encode(const WelcomeMsg& msg) {
  net::ByteWriter writer;
  writer.u64(msg.heartbeat_interval_ns);
  writer.u64(msg.lease_ns);
  writer.u64(msg.send_ns);
  return Frame{MsgType::kWelcome, writer.take()};
}

std::optional<WelcomeMsg> decode_welcome(
    std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  WelcomeMsg msg;
  if (!reader.u64(msg.heartbeat_interval_ns) || !reader.u64(msg.lease_ns) ||
      !reader.u64(msg.send_ns) || !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

Frame encode(const AssignMsg& msg) {
  net::ByteWriter writer;
  writer.u32(msg.shard_id);
  writer.u32(msg.attempt);
  writer.u64(msg.plan_epoch);
  writer.u32(static_cast<std::uint32_t>(msg.devices.size()));
  for (const DeviceWork& work : msg.devices) {
    writer.u32(work.device);
    writer.u32(static_cast<std::uint32_t>(work.contracts.size()));
    for (const rcdc::Contract& contract : work.contracts) {
      put_contract(writer, contract);
    }
  }
  // Trace context and send stamp go after the device list: decoder tests
  // pin the byte offsets of the leading fields, and appending keeps v1
  // payload prefixes byte-identical.
  writer.u64(msg.cycle_id);
  writer.u64(msg.parent_span);
  writer.u64(msg.send_ns);
  return Frame{MsgType::kAssign, writer.take()};
}

std::optional<AssignMsg> decode_assign(std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  AssignMsg msg;
  std::uint32_t devices = 0;
  if (!reader.u32(msg.shard_id) || !reader.u32(msg.attempt) ||
      !reader.u64(msg.plan_epoch) || !reader.count(devices, 8)) {
    return std::nullopt;
  }
  msg.devices.resize(devices);
  for (DeviceWork& work : msg.devices) {
    std::uint32_t contracts = 0;
    // A contract is ≥ 20 bytes on the wire.
    if (!reader.u32(work.device) || !reader.count(contracts, 20)) {
      return std::nullopt;
    }
    work.contracts.resize(contracts);
    for (rcdc::Contract& contract : work.contracts) {
      if (!get_contract(reader, contract)) return std::nullopt;
    }
  }
  if (!reader.u64(msg.cycle_id) || !reader.u64(msg.parent_span) ||
      !reader.u64(msg.send_ns) || !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

Frame encode(const HeartbeatMsg& msg) {
  net::ByteWriter writer;
  writer.u32(msg.shard_id);
  writer.u32(msg.attempt);
  writer.u32(msg.devices_done);
  writer.u64(msg.send_ns);
  writer.u64(msg.peer_tx_ns);
  writer.u64(msg.peer_rx_ns);
  return Frame{MsgType::kHeartbeat, writer.take()};
}

std::optional<HeartbeatMsg> decode_heartbeat(
    std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  HeartbeatMsg msg;
  if (!reader.u32(msg.shard_id) || !reader.u32(msg.attempt) ||
      !reader.u32(msg.devices_done) || !reader.u64(msg.send_ns) ||
      !reader.u64(msg.peer_tx_ns) || !reader.u64(msg.peer_rx_ns) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

Frame encode(const ResultMsg& msg) {
  net::ByteWriter writer;
  writer.u32(msg.shard_id);
  writer.u32(msg.attempt);
  writer.u64(msg.devices_checked);
  writer.u64(msg.contracts_checked);
  writer.u64(msg.devices_failed);
  writer.u64(msg.devices_stale);
  writer.u64(msg.retries);
  writer.u64(msg.breaker_opens);
  writer.u64(msg.violations_degraded);
  writer.u64(msg.elapsed_ns);
  writer.u32(static_cast<std::uint32_t>(msg.violations.size()));
  for (const rcdc::Violation& violation : msg.violations) {
    put_violation(writer, violation);
  }
  writer.u32(static_cast<std::uint32_t>(msg.fingerprints.size()));
  for (const auto& [device, fingerprint] : msg.fingerprints) {
    writer.u32(device);
    writer.u64(fingerprint);
  }
  writer.bytes(msg.registry_blob);
  writer.bytes(msg.trace_blob);
  writer.u64(msg.send_ns);
  writer.u64(msg.peer_tx_ns);
  writer.u64(msg.peer_rx_ns);
  return Frame{MsgType::kResult, writer.take()};
}

std::optional<ResultMsg> decode_result(std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  ResultMsg msg;
  std::uint32_t violations = 0;
  if (!reader.u32(msg.shard_id) || !reader.u32(msg.attempt) ||
      !reader.u64(msg.devices_checked) || !reader.u64(msg.contracts_checked) ||
      !reader.u64(msg.devices_failed) || !reader.u64(msg.devices_stale) ||
      !reader.u64(msg.retries) || !reader.u64(msg.breaker_opens) ||
      !reader.u64(msg.violations_degraded) || !reader.u64(msg.elapsed_ns) ||
      // A violation is ≥ 34 bytes on the wire.
      !reader.count(violations, 34)) {
    return std::nullopt;
  }
  msg.violations.resize(violations);
  for (rcdc::Violation& violation : msg.violations) {
    if (!get_violation(reader, violation)) return std::nullopt;
  }
  std::uint32_t fingerprints = 0;
  if (!reader.count(fingerprints, 12)) return std::nullopt;
  msg.fingerprints.resize(fingerprints);
  for (auto& [device, fingerprint] : msg.fingerprints) {
    if (!reader.u32(device) || !reader.u64(fingerprint)) return std::nullopt;
  }
  if (!reader.bytes(msg.registry_blob) || !reader.bytes(msg.trace_blob) ||
      !reader.u64(msg.send_ns) || !reader.u64(msg.peer_tx_ns) ||
      !reader.u64(msg.peer_rx_ns) || !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

Frame encode_shutdown() { return Frame{MsgType::kShutdown, {}}; }

}  // namespace dcv::dist
