#include "dist/report.hpp"

#include <sstream>

namespace dcv::dist {

std::string write_distributed_report_json(const DistributedSummary& summary,
                                          const topo::Topology& topology,
                                          const rcdc::ReportOptions& options) {
  std::ostringstream out;
  const char* nl = options.pretty ? "\n" : "";
  const char* in1 = options.pretty ? "  " : "";
  const char* in2 = options.pretty ? "    " : "";
  const char* in3 = options.pretty ? "      " : "";

  out << "{" << nl;
  out << in1 << "\"distributed\": {" << nl;
  out << in2 << "\"workers_connected\": " << summary.workers_connected << ","
      << nl;
  out << in2 << "\"workers_lost\": " << summary.workers_lost << "," << nl;
  out << in2 << "\"shards_failed\": " << summary.shards_failed << "," << nl;
  out << in2 << "\"reassignments\": " << summary.reassignments << "," << nl;
  out << in2 << "\"coverage\": " << summary.coverage() << "," << nl;
  out << in2 << "\"degraded\": " << (summary.degraded() ? "true" : "false")
      << "," << nl;
  out << in2 << "\"shards\": [";
  bool first = true;
  for (const ShardOutcome& shard : summary.shards) {
    if (!first) out << ",";
    first = false;
    out << nl << in3 << "{"
        << "\"shard\": " << shard.shard_id << ", "
        << "\"worker\": \"" << rcdc::json_escape(shard.worker) << "\", "
        << "\"devices\": " << shard.devices << ", "
        << "\"attempts\": " << shard.attempts << ", "
        << "\"elapsed_ns\": " << shard.elapsed_ns << ", "
        << "\"status\": \"" << to_string(shard.status) << "\", "
        << "\"degraded_confidence\": "
        << (shard.degraded_confidence ? "true" : "false") << "}";
  }
  out << nl << in2 << "]" << nl;
  out << in1 << "}," << nl;
  std::string inner =
      rcdc::write_report_json(summary.merged, topology, options);
  while (!inner.empty() && inner.back() == '\n') inner.pop_back();
  out << in1 << "\"validation\": " << inner;
  out << nl << "}" << nl;
  return out.str();
}

}  // namespace dcv::dist
