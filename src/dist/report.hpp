#pragma once

#include <string>

#include "dist/coordinator.hpp"
#include "rcdc/report_io.hpp"

namespace dcv::dist {

/// Renders one distributed cycle as JSON: the merged validation report
/// (same schema as single-process write_report_json, so downstream
/// consumers need no new parser) wrapped with a "distributed" object —
/// fleet counters, per-shard outcomes, and the degraded_confidence marks
/// operators use to decide which verdicts deserve a fresh-pull recheck.
[[nodiscard]] std::string write_distributed_report_json(
    const DistributedSummary& summary, const topo::Topology& topology,
    const rcdc::ReportOptions& options = {});

}  // namespace dcv::dist
