#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "topology/device.hpp"

namespace dcv::dist {

/// Feedback-driven cost model for shard carving.
///
/// Workers report wall time per completed shard (the figure feeding
/// dcv_dist_shard_elapsed_ns); the balancer attributes each observation
/// evenly across the shard's devices and folds it into a per-device EWMA.
/// The next cycle then carves shards to equal *estimated time* instead of
/// equal device count, so a fabric whose spines validate 10x slower than
/// its ToRs stops bottlenecking every cycle on whichever worker drew the
/// spine-heavy shard.
///
/// Even-split attribution is deliberately coarse — a shard mixes fast and
/// slow devices — but it converges: devices that keep landing in slow
/// shards accumulate cost, get carved into smaller shards, and subsequent
/// observations attribute their time more precisely.
class ShardBalancer {
 public:
  /// `alpha` weights the newest observation in the EWMA; higher adapts
  /// faster but chases noise.
  explicit ShardBalancer(double alpha = 0.3) : alpha_(alpha) {}

  /// Folds one completed shard's wall time into the model. Empty shards
  /// and zero timings (failed shards report 0) are ignored.
  void record(std::span<const topo::DeviceId> devices,
              std::uint64_t elapsed_ns);

  /// Estimated validation cost of one device, in nanoseconds. Devices
  /// never observed get the mean per-device estimate so newcomers neither
  /// starve nor dominate a shard; before any feedback exists every device
  /// costs 1.0, making cost-balanced carving degrade exactly to the
  /// count-balanced carving used previously.
  [[nodiscard]] double cost(topo::DeviceId device) const;

  [[nodiscard]] bool has_observations() const { return observations_ > 0; }
  [[nodiscard]] std::size_t devices_tracked() const {
    return estimates_.size();
  }

 private:
  double alpha_;
  std::unordered_map<topo::DeviceId, double> estimates_;
  /// Sum of current estimates, kept incrementally for the O(1) mean that
  /// prices never-observed devices.
  double estimate_sum_ = 0.0;
  std::uint64_t observations_ = 0;
};

}  // namespace dcv::dist
