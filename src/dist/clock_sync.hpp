#pragma once

#include <cstdint>

namespace dcv::dist {

/// Estimates a remote peer's steady-clock offset from timestamped message
/// exchanges, NTP style. Each process stamps outgoing frames with its own
/// steady clock and echoes the last timestamp it saw from the peer plus
/// its local receive time, giving the classic four-timestamp sample
///
///   t1 = local send, t2 = remote receive, t3 = remote send,
///   t4 = local receive
///
/// from which offset = ((t2 - t1) + (t3 - t4)) / 2 (remote − local,
/// midpoint-of-RTT assumption: the error is bounded by half the
/// round-trip's asymmetry). The estimator keeps the sample with the
/// smallest RTT seen so far — Cristian's observation that the tightest
/// round trip bounds the offset best — so estimates only sharpen as a
/// session ages. A one-way seed (Hello/Welcome, before any echo exists)
/// fills in a crude first estimate that the first real sample replaces.
class ClockSyncEstimator {
 public:
  /// Crude bootstrap from a single one-way stamp: assumes the frame's
  /// flight time was zero, so the offset error is up to one full one-way
  /// delay. Ignored once any round-trip sample exists.
  void seed_one_way(std::int64_t remote_send_ns, std::int64_t local_recv_ns);

  /// Adds a four-timestamp round-trip sample (all nanoseconds; t1/t4 on
  /// the local clock, t2/t3 on the remote clock). Samples whose implied
  /// RTT is negative — reordered or forged echoes — are rejected.
  void add_sample(std::int64_t t1_local_send_ns,
                  std::int64_t t2_remote_recv_ns,
                  std::int64_t t3_remote_send_ns,
                  std::int64_t t4_local_recv_ns);

  /// Best estimate of remote_clock − local_clock in nanoseconds (so
  /// local = remote − offset); 0 until seeded or sampled.
  [[nodiscard]] std::int64_t offset_ns() const { return offset_ns_; }

  /// RTT of the best sample so far; bounds the estimate's error at
  /// roughly rtt/2. -1 until a round-trip sample lands.
  [[nodiscard]] std::int64_t best_rtt_ns() const { return best_rtt_ns_; }

  /// True once at least one round-trip sample was accepted (the one-way
  /// seed alone does not count as synchronized).
  [[nodiscard]] bool synchronized() const { return best_rtt_ns_ >= 0; }

  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  std::int64_t offset_ns_ = 0;
  std::int64_t best_rtt_ns_ = -1;
  std::uint64_t samples_ = 0;
  bool seeded_ = false;
};

}  // namespace dcv::dist
