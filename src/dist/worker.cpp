#include "dist/worker.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics_serde.hpp"
#include "rcdc/incremental.hpp"

namespace dcv::dist {

WorkerSession::WorkerSession(const rcdc::FibSource& fibs,
                             rcdc::VerifierFactory verifier_factory,
                             WorkerSessionConfig config)
    : fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &default_clock_) {}

SessionEnd WorkerSession::run(Transport& transport) {
  HelloMsg hello;
  hello.worker_id = config_.id;
  hello.topology_epoch = config_.topology_epoch;
  if (!transport.send(encode(hello))) return SessionEnd::kConnectionLost;

  // Wait for the welcome (bounded): the coordinator may instead reject us
  // by closing the connection.
  std::chrono::nanoseconds heartbeat_interval{0};
  const auto handshake_deadline = clock_->now() + config_.handshake_deadline;
  while (true) {
    std::optional<Frame> frame = transport.poll();
    if (frame.has_value()) {
      if (frame->type != MsgType::kWelcome) return SessionEnd::kConnectionLost;
      const std::optional<WelcomeMsg> welcome = decode_welcome(frame->payload);
      if (!welcome.has_value()) return SessionEnd::kConnectionLost;
      heartbeat_interval =
          std::chrono::nanoseconds(welcome->heartbeat_interval_ns);
      break;
    }
    if (transport.closed() || clock_->now() >= handshake_deadline) {
      return SessionEnd::kConnectionLost;
    }
    clock_->sleep_for(config_.poll_interval);
  }

  while (true) {
    std::optional<Frame> frame = transport.poll();
    if (!frame.has_value()) {
      if (transport.closed()) return SessionEnd::kConnectionLost;
      clock_->sleep_for(config_.poll_interval);
      continue;
    }
    switch (frame->type) {
      case MsgType::kShutdown:
        return SessionEnd::kShutdown;
      case MsgType::kAssign: {
        const std::optional<AssignMsg> assignment =
            decode_assign(frame->payload);
        if (!assignment.has_value()) return SessionEnd::kConnectionLost;
        if (!validate_shard(*assignment, transport, heartbeat_interval)) {
          return SessionEnd::kConnectionLost;
        }
        break;
      }
      default:
        // Welcome replays and worker-role frames are protocol noise; the
        // connection is the recovery unit.
        return SessionEnd::kConnectionLost;
    }
  }
}

bool WorkerSession::validate_shard(
    const AssignMsg& assignment, Transport& transport,
    std::chrono::nanoseconds heartbeat_interval) {
  const auto start = clock_->now();
  auto last_heartbeat = start;
  const auto verifier = verifier_factory_();

  ResultMsg result;
  result.shard_id = assignment.shard_id;
  result.attempt = assignment.attempt;
  result.devices_checked = assignment.devices.size();

  const std::chrono::nanoseconds scaled_latency{
      static_cast<std::int64_t>(std::llround(
          static_cast<double>(config_.fetch_latency.count()) *
          std::max(0.0, config_.time_scale)))};

  std::uint32_t done = 0;
  for (const DeviceWork& work : assignment.devices) {
    if (heartbeat_interval.count() > 0 &&
        clock_->now() - last_heartbeat >= heartbeat_interval) {
      HeartbeatMsg heartbeat;
      heartbeat.shard_id = assignment.shard_id;
      heartbeat.attempt = assignment.attempt;
      heartbeat.devices_done = done;
      if (!transport.send(encode(heartbeat))) return false;
      last_heartbeat = clock_->now();
    }
    ++done;
    if (work.contracts.empty()) continue;
    rcdc::FetchOutcome outcome = fibs_->try_fetch(work.device);
    if (scaled_latency.count() > 0) clock_->sleep_for(scaled_latency);
    if (outcome.attempts > 1) result.retries += outcome.attempts - 1;
    if (outcome.breaker_tripped) ++result.breaker_opens;
    if (!outcome.has_table()) {
      ++result.devices_failed;
      continue;
    }
    if (outcome.stale) ++result.devices_stale;
    result.fingerprints.emplace_back(work.device,
                                     rcdc::fingerprint(*outcome.table));
    auto violations =
        verifier->check(*outcome.table, work.contracts, work.device);
    result.contracts_checked += work.contracts.size();
    if (outcome.degraded()) result.violations_degraded += violations.size();
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(violations.begin()),
                             std::make_move_iterator(violations.end()));
  }

  result.elapsed_ns =
      static_cast<std::uint64_t>((clock_->now() - start).count());
  if (config_.metrics != nullptr) {
    result.registry_blob = obs::serialize_registry(*config_.metrics);
  }
  if (!transport.send(encode(result))) return false;
  ++shards_validated_;
  return true;
}

std::chrono::nanoseconds reconnect_backoff(const ReconnectPolicy& policy,
                                           std::uint32_t attempt) {
  if (attempt <= 1) return std::chrono::nanoseconds{0};
  double backoff = static_cast<double>(policy.initial_backoff.count());
  for (std::uint32_t i = 2; i < attempt; ++i) {
    backoff *= policy.multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff.count())) break;
  }
  const double capped =
      std::min(backoff, static_cast<double>(policy.max_backoff.count()));
  return std::chrono::nanoseconds{static_cast<std::int64_t>(capped)};
}

}  // namespace dcv::dist
