#include "dist/worker.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics_serde.hpp"
#include "obs/span_serde.hpp"
#include "rcdc/incremental.hpp"

namespace dcv::dist {

WorkerSession::WorkerSession(const rcdc::FibSource& fibs,
                             rcdc::VerifierFactory verifier_factory,
                             WorkerSessionConfig config)
    : fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &default_clock_) {}

SessionEnd WorkerSession::run(Transport& transport) {
  peer_tx_ns_ = 0;
  peer_rx_ns_ = 0;
  HelloMsg hello;
  hello.worker_id = config_.id;
  hello.topology_epoch = config_.topology_epoch;
  hello.send_ns =
      static_cast<std::uint64_t>(clock_->now().time_since_epoch().count());
  if (!transport.send(encode(hello))) return SessionEnd::kConnectionLost;

  // Wait for the welcome (bounded): the coordinator may instead reject us
  // by closing the connection.
  std::chrono::nanoseconds heartbeat_interval{0};
  const auto handshake_deadline = clock_->now() + config_.handshake_deadline;
  while (true) {
    std::optional<Frame> frame = transport.poll();
    if (frame.has_value()) {
      if (frame->type != MsgType::kWelcome) return SessionEnd::kConnectionLost;
      const std::optional<WelcomeMsg> welcome = decode_welcome(frame->payload);
      if (!welcome.has_value()) return SessionEnd::kConnectionLost;
      if (welcome->send_ns != 0) {
        peer_tx_ns_ = welcome->send_ns;
        peer_rx_ns_ = static_cast<std::uint64_t>(
            clock_->now().time_since_epoch().count());
      }
      heartbeat_interval =
          std::chrono::nanoseconds(welcome->heartbeat_interval_ns);
      break;
    }
    if (transport.closed() || clock_->now() >= handshake_deadline) {
      return SessionEnd::kConnectionLost;
    }
    clock_->sleep_for(config_.poll_interval);
  }

  while (true) {
    std::optional<Frame> frame = transport.poll();
    if (!frame.has_value()) {
      if (transport.closed()) return SessionEnd::kConnectionLost;
      clock_->sleep_for(config_.poll_interval);
      continue;
    }
    switch (frame->type) {
      case MsgType::kShutdown:
        return SessionEnd::kShutdown;
      case MsgType::kAssign: {
        const std::optional<AssignMsg> assignment =
            decode_assign(frame->payload);
        if (!assignment.has_value()) return SessionEnd::kConnectionLost;
        if (assignment->send_ns != 0) {
          peer_tx_ns_ = assignment->send_ns;
          peer_rx_ns_ = static_cast<std::uint64_t>(
              clock_->now().time_since_epoch().count());
        }
        if (!validate_shard(*assignment, transport, heartbeat_interval)) {
          return SessionEnd::kConnectionLost;
        }
        break;
      }
      default:
        // Welcome replays and worker-role frames are protocol noise; the
        // connection is the recovery unit.
        return SessionEnd::kConnectionLost;
    }
  }
}

bool WorkerSession::validate_shard(
    const AssignMsg& assignment, Transport& transport,
    std::chrono::nanoseconds heartbeat_interval) {
  const auto start = clock_->now();
  auto last_heartbeat = start;
  const auto verifier = verifier_factory_();

  ResultMsg result;
  result.shard_id = assignment.shard_id;
  result.attempt = assignment.attempt;
  result.devices_checked = assignment.devices.size();

  // The shard's span tree, shipped to the coordinator on the result frame
  // with *absolute* local-clock starts (the merger rebases them by the
  // estimated offset). Bounded so a huge shard cannot inflate the result
  // frame; the root span always ships, so children stay parentable.
  constexpr std::size_t kMaxTraceEventsPerShard = 8192;
  const std::uint64_t shard_span = obs::allocate_span_id();
  std::vector<obs::TraceEvent> trace_events;
  std::uint64_t trace_dropped = 0;
  const auto add_span = [&](std::string_view name,
                            std::chrono::steady_clock::time_point span_start,
                            std::chrono::nanoseconds duration) {
    if (trace_events.size() >= kMaxTraceEventsPerShard) {
      ++trace_dropped;
      return;
    }
    trace_events.push_back({std::string(name), obs::allocate_span_id(),
                            shard_span, assignment.cycle_id,
                            obs::thread_index(),
                            span_start.time_since_epoch(), duration});
    if (config_.trace != nullptr) {
      const obs::TraceEvent& event = trace_events.back();
      config_.trace->record_span(name, event.id, shard_span,
                                 assignment.cycle_id, span_start, duration);
    }
  };

  const std::chrono::nanoseconds scaled_latency{
      static_cast<std::int64_t>(std::llround(
          static_cast<double>(config_.fetch_latency.count()) *
          std::max(0.0, config_.time_scale)))};

  std::uint32_t done = 0;
  for (const DeviceWork& work : assignment.devices) {
    if (heartbeat_interval.count() > 0 &&
        clock_->now() - last_heartbeat >= heartbeat_interval) {
      HeartbeatMsg heartbeat;
      heartbeat.shard_id = assignment.shard_id;
      heartbeat.attempt = assignment.attempt;
      heartbeat.devices_done = done;
      heartbeat.send_ns = static_cast<std::uint64_t>(
          clock_->now().time_since_epoch().count());
      heartbeat.peer_tx_ns = peer_tx_ns_;
      heartbeat.peer_rx_ns = peer_rx_ns_;
      if (!transport.send(encode(heartbeat))) return false;
      last_heartbeat = clock_->now();
    }
    ++done;
    if (work.contracts.empty()) continue;
    const auto fetch_start = clock_->now();
    rcdc::FetchOutcome outcome = fibs_->try_fetch(work.device);
    if (scaled_latency.count() > 0) clock_->sleep_for(scaled_latency);
    add_span("fetch", fetch_start, clock_->now() - fetch_start);
    if (outcome.attempts > 1) result.retries += outcome.attempts - 1;
    if (outcome.breaker_tripped) ++result.breaker_opens;
    if (!outcome.has_table()) {
      ++result.devices_failed;
      continue;
    }
    if (outcome.stale) ++result.devices_stale;
    result.fingerprints.emplace_back(work.device,
                                     rcdc::fingerprint(*outcome.table));
    const auto validate_start = clock_->now();
    auto violations =
        verifier->check(*outcome.table, work.contracts, work.device);
    add_span("validate", validate_start, clock_->now() - validate_start);
    result.contracts_checked += work.contracts.size();
    if (outcome.degraded()) result.violations_degraded += violations.size();
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(violations.begin()),
                             std::make_move_iterator(violations.end()));
  }

  const auto finished = clock_->now();
  result.elapsed_ns = static_cast<std::uint64_t>((finished - start).count());
  // The shard root (parent 0: the coordinator re-parents batch roots under
  // the assign span) rides past the cap so children always resolve.
  trace_events.push_back({"shard", shard_span, /*parent=*/0,
                          assignment.cycle_id, obs::thread_index(),
                          start.time_since_epoch(), finished - start});
  if (config_.trace != nullptr) {
    config_.trace->record_span("shard", shard_span, 0, assignment.cycle_id,
                               start, finished - start);
  }
  result.trace_blob = obs::serialize_trace(
      trace_events, std::chrono::nanoseconds{0}, trace_dropped);
  if (config_.metrics != nullptr) {
    result.registry_blob = obs::serialize_registry(*config_.metrics);
  }
  result.send_ns =
      static_cast<std::uint64_t>(clock_->now().time_since_epoch().count());
  result.peer_tx_ns = peer_tx_ns_;
  result.peer_rx_ns = peer_rx_ns_;
  if (!transport.send(encode(result))) return false;
  ++shards_validated_;
  return true;
}

std::chrono::nanoseconds reconnect_backoff(const ReconnectPolicy& policy,
                                           std::uint32_t attempt) {
  if (attempt <= 1) return std::chrono::nanoseconds{0};
  double backoff = static_cast<double>(policy.initial_backoff.count());
  for (std::uint32_t i = 2; i < attempt; ++i) {
    backoff *= policy.multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff.count())) break;
  }
  const double capped =
      std::min(backoff, static_cast<double>(policy.max_backoff.count()));
  return std::chrono::nanoseconds{static_cast<std::int64_t>(capped)};
}

}  // namespace dcv::dist
