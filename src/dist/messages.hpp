#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/wire.hpp"
#include "rcdc/contract.hpp"

namespace dcv::dist {

/// Protocol revision carried inside kHello, independent of the frame
/// version: the frame layer can stay at v1 while message payloads evolve.
/// v2 added trace propagation and clock-sync timestamps: every message
/// carries the sender's steady-clock send time, worker→coordinator
/// messages echo the last coordinator timestamp seen (plus its local
/// receive time) for NTP-style offset estimation, AssignMsg names the
/// coordinator's cycle and parent span, and ResultMsg ships the worker's
/// serialized span tree (dcv-trace-v1).
inline constexpr std::uint32_t kProtocolVersion = 2;

/// worker → coordinator on connect.
struct HelloMsg {
  std::string worker_id;
  std::uint32_t protocol = kProtocolVersion;
  /// Epoch of the expected topology the worker loaded; the coordinator
  /// refuses workers validating against a different architecture.
  std::uint64_t topology_epoch = 0;
  /// Sender's steady clock at send (ns since its clock epoch); 0 = sender
  /// does not participate in clock sync.
  std::uint64_t send_ns = 0;
};

/// coordinator → worker acknowledging the hello.
struct WelcomeMsg {
  std::uint64_t heartbeat_interval_ns = 0;
  std::uint64_t lease_ns = 0;
  /// Sender's steady clock at send; 0 = no clock sync.
  std::uint64_t send_ns = 0;
};

/// One device's work item inside an assignment: the device plus the
/// contracts the coordinator's plan derived for it (contract planning is
/// coordinator-owned; workers never re-derive intent).
struct DeviceWork {
  topo::DeviceId device = topo::kInvalidDevice;
  std::vector<rcdc::Contract> contracts;
};

/// coordinator → worker: one shard to fetch and validate.
struct AssignMsg {
  std::uint32_t shard_id = 0;
  /// 0-based delivery attempt; results echo it so a late answer from a
  /// worker the coordinator already gave up on is recognizably stale.
  std::uint32_t attempt = 0;
  std::uint64_t plan_epoch = 0;
  std::vector<DeviceWork> devices;
  /// Trace context: the coordinator's monitoring-cycle id and the span id
  /// the worker's shard tree should hang under in the merged timeline.
  /// Both 0 when the coordinator is not tracing.
  std::uint64_t cycle_id = 0;
  std::uint64_t parent_span = 0;
  /// Sender's steady clock at send; 0 = no clock sync.
  std::uint64_t send_ns = 0;
};

/// worker → coordinator while validating: renews the shard lease.
struct HeartbeatMsg {
  std::uint32_t shard_id = 0;
  std::uint32_t attempt = 0;
  std::uint32_t devices_done = 0;
  /// Clock-sync triple: the worker's steady clock at send, plus an echo of
  /// the newest coordinator timestamp it has seen (peer_tx_ns) and the
  /// worker-clock instant that frame arrived (peer_rx_ns). All 0 when the
  /// worker has nothing to echo yet.
  std::uint64_t send_ns = 0;
  std::uint64_t peer_tx_ns = 0;
  std::uint64_t peer_rx_ns = 0;
};

/// worker → coordinator: everything the coordinator needs to merge one
/// validated shard into the run: summary counts, the violations
/// themselves, per-device FIB fingerprints (for cross-cycle change
/// detection at the coordinator), and the worker's serialized
/// obs::MetricsRegistry (dcv-metrics-v1, possibly empty).
struct ResultMsg {
  std::uint32_t shard_id = 0;
  std::uint32_t attempt = 0;
  std::uint64_t devices_checked = 0;
  std::uint64_t contracts_checked = 0;
  std::uint64_t devices_failed = 0;
  std::uint64_t devices_stale = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t violations_degraded = 0;
  std::uint64_t elapsed_ns = 0;
  std::vector<rcdc::Violation> violations;
  /// (device, fingerprint) pairs for every device that yielded a table.
  std::vector<std::pair<topo::DeviceId, std::uint64_t>> fingerprints;
  std::vector<std::uint8_t> registry_blob;
  /// The worker's span tree for this shard, serialized as dcv-trace-v1
  /// (obs::span_serde); empty when the worker recorded nothing. A blob
  /// decode_result accepts but span_serde rejects degrades to a trace
  /// decode error at the coordinator — it never fails the shard.
  std::vector<std::uint8_t> trace_blob;
  /// Clock-sync triple (see HeartbeatMsg).
  std::uint64_t send_ns = 0;
  std::uint64_t peer_tx_ns = 0;
  std::uint64_t peer_rx_ns = 0;
};

// Encoders produce a complete Frame (payload + type); decoders parse a
// frame payload and return nullopt on any malformed input — wrong counts,
// truncation, out-of-range enum values, prefix lengths beyond /32 — never
// throwing and never reading out of bounds.

[[nodiscard]] Frame encode(const HelloMsg& msg);
[[nodiscard]] Frame encode(const WelcomeMsg& msg);
[[nodiscard]] Frame encode(const AssignMsg& msg);
[[nodiscard]] Frame encode(const HeartbeatMsg& msg);
[[nodiscard]] Frame encode(const ResultMsg& msg);
[[nodiscard]] Frame encode_shutdown();

[[nodiscard]] std::optional<HelloMsg> decode_hello(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<WelcomeMsg> decode_welcome(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<AssignMsg> decode_assign(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<HeartbeatMsg> decode_heartbeat(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<ResultMsg> decode_result(
    std::span<const std::uint8_t> payload);

}  // namespace dcv::dist
