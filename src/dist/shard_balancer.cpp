#include "dist/shard_balancer.hpp"

namespace dcv::dist {

void ShardBalancer::record(std::span<const topo::DeviceId> devices,
                           std::uint64_t elapsed_ns) {
  if (devices.empty() || elapsed_ns == 0) return;
  const double share = static_cast<double>(elapsed_ns) /
                       static_cast<double>(devices.size());
  for (const topo::DeviceId device : devices) {
    const auto [it, inserted] = estimates_.try_emplace(device, share);
    if (inserted) {
      estimate_sum_ += share;
    } else {
      estimate_sum_ -= it->second;
      it->second += alpha_ * (share - it->second);
      estimate_sum_ += it->second;
    }
  }
  ++observations_;
}

double ShardBalancer::cost(topo::DeviceId device) const {
  const auto it = estimates_.find(device);
  if (it != estimates_.end()) return it->second;
  if (estimates_.empty()) return 1.0;
  return estimate_sum_ / static_cast<double>(estimates_.size());
}

}  // namespace dcv::dist
