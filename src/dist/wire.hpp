#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace dcv::dist {

/// Message types of the coordinator/worker protocol (dcv-dist wire v1).
enum class MsgType : std::uint16_t {
  /// worker → coordinator, once per connection: worker id + capabilities.
  kHello = 1,
  /// coordinator → worker: accepted; carries heartbeat interval + epoch.
  kWelcome = 2,
  /// coordinator → worker: one shard of devices with their contracts.
  kAssign = 3,
  /// worker → coordinator: lease renewal + progress while validating.
  kHeartbeat = 4,
  /// worker → coordinator: the shard's verdicts, fingerprints, metrics.
  kResult = 5,
  /// coordinator → worker: drain and exit cleanly.
  kShutdown = 6,
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// One protocol frame: a typed payload. On the wire a frame is
///
///   [magic u32][version u16][type u16][payload_len u32][payload][crc32 u32]
///
/// with the CRC taken over version+type+payload_len+payload. Length-first
/// framing lets the receiver bound the read before buffering; the checksum
/// catches truncation and bit rot; the version field keeps mixed-build
/// fleets from silently misparsing each other.
struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint32_t kWireMagic = 0x57564344;  // "DCVW" on the wire
inline constexpr std::uint16_t kWireVersion = 1;
/// Hard payload bound (64 MiB): a corrupted or hostile length field must
/// never drive an unbounded allocation.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
/// Bytes of framing around the payload (header + trailing checksum).
inline constexpr std::size_t kFrameOverhead = 4 + 2 + 2 + 4 + 4;

/// CRC-32 (IEEE, reflected) of a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Encodes a frame into its wire representation.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Why a buffer failed to decode as a frame.
enum class DecodeError : std::uint8_t {
  /// Not enough bytes yet — read more and retry (not a protocol error).
  kNeedMoreData,
  kBadMagic,
  kBadVersion,
  /// Payload length exceeds kMaxPayload.
  kOversized,
  kBadChecksum,
  /// Type field is not a known MsgType.
  kUnknownType,
};

[[nodiscard]] std::string_view to_string(DecodeError error);

/// Result of one streaming decode attempt over a receive buffer.
struct DecodeResult {
  /// Engaged on success; payload bytes are copied out of the buffer.
  std::optional<Frame> frame;
  std::optional<DecodeError> error;
  /// Bytes the caller must drop from the front of its buffer: the whole
  /// frame on success, 0 for kNeedMoreData, and the rest of the buffer for
  /// every fatal error (a stream that framed wrong cannot be resynced —
  /// the connection is the recovery unit).
  std::size_t consumed = 0;

  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Attempts to decode one frame from the front of `buffer`. Total across
/// all inputs: returns a frame, kNeedMoreData, or a fatal error — it never
/// throws, never reads past the span, and never allocates more than the
/// declared (bounded) payload length. Exercised against the malformed
/// -frame corpus under ASan+UBSan.
[[nodiscard]] DecodeResult try_decode_frame(
    std::span<const std::uint8_t> buffer);

}  // namespace dcv::dist
