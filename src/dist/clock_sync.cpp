#include "dist/clock_sync.hpp"

namespace dcv::dist {

void ClockSyncEstimator::seed_one_way(std::int64_t remote_send_ns,
                                      std::int64_t local_recv_ns) {
  if (seeded_ || synchronized()) return;
  seeded_ = true;
  offset_ns_ = remote_send_ns - local_recv_ns;
}

void ClockSyncEstimator::add_sample(std::int64_t t1_local_send_ns,
                                    std::int64_t t2_remote_recv_ns,
                                    std::int64_t t3_remote_send_ns,
                                    std::int64_t t4_local_recv_ns) {
  const std::int64_t rtt = (t4_local_recv_ns - t1_local_send_ns) -
                           (t3_remote_send_ns - t2_remote_recv_ns);
  if (rtt < 0) return;
  ++samples_;
  if (best_rtt_ns_ >= 0 && rtt >= best_rtt_ns_) return;
  best_rtt_ns_ = rtt;
  offset_ns_ = ((t2_remote_recv_ns - t1_local_send_ns) +
                (t3_remote_send_ns - t4_local_recv_ns)) /
               2;
}

}  // namespace dcv::dist
