#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/wire.hpp"

namespace dcv::dist {

/// One frame-oriented, order-preserving channel to a peer. Implementations:
/// TcpTransport for real coordinator↔worker links, and the test-only
/// in-process transports in tests/dist (scripted crash/hang/partition),
/// which is how the coordinator's failure handling is unit-tested without
/// wall sleeps or real processes.
///
/// Not thread-safe; each endpoint is owned by one event loop.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Queues/writes one frame. Returns false when the peer is gone (broken
  /// pipe, bounded send budget exhausted); the transport is closed then.
  [[nodiscard]] virtual bool send(const Frame& frame) = 0;

  /// Returns the next complete frame if one is available without waiting;
  /// nullopt otherwise. A fatal stream error (EOF, reset, framing error)
  /// flips closed() — frames decoded before the error are still drained
  /// first, so a result followed by a crash is not lost.
  [[nodiscard]] virtual std::optional<Frame> poll() = 0;

  /// The peer is definitively gone; poll() can still drain decoded frames.
  [[nodiscard]] virtual bool closed() const = 0;

  /// Label for logs and metrics ("w0", "127.0.0.1:4219").
  [[nodiscard]] virtual std::string peer() const = 0;
};

struct TcpTransportConfig {
  /// Bounded budget for one send() — a wedged peer fails the send (and
  /// closes the transport) instead of blocking the event loop forever.
  std::chrono::milliseconds send_timeout{5000};
};

/// Frame transport over a connected TCP socket (non-blocking reads,
/// poll()-bounded writes, TCP_NODELAY, SIGPIPE suppressed at the socket).
class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  TcpTransport(int fd, std::string peer, TcpTransportConfig config = {});
  ~TcpTransport() override;

  [[nodiscard]] bool send(const Frame& frame) override;
  [[nodiscard]] std::optional<Frame> poll() override;
  [[nodiscard]] bool closed() const override { return closed_; }
  [[nodiscard]] std::string peer() const override { return peer_; }

  /// The decode error that killed the stream, if any (for logs/metrics).
  [[nodiscard]] std::optional<DecodeError> last_error() const {
    return last_error_;
  }

 private:
  void fill_from_socket();

  int fd_;
  std::string peer_;
  TcpTransportConfig config_;
  bool closed_ = false;
  std::optional<DecodeError> last_error_;
  std::vector<std::uint8_t> recv_buffer_;
  std::deque<Frame> decoded_;
};

/// Listening socket accepting worker connections for a coordinator.
/// Loopback-only by design: cross-host deployment should front this with
/// real transport security, which is out of scope here.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port (0 = ephemeral; read the bound
  /// port back with port()). Throws std::system_error on bind failure.
  explicit TcpListener(std::uint16_t port, int backlog = 16);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection, waiting at most `timeout`; nullptr on timeout.
  [[nodiscard]] std::unique_ptr<TcpTransport> accept(
      std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to a coordinator at 127.0.0.1:port (or `host`); nullptr on
/// refusal/timeout — callers own the retry/backoff loop (see
/// WorkerMain/ReconnectPolicy).
[[nodiscard]] std::unique_ptr<TcpTransport> connect_tcp(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout);

}  // namespace dcv::dist
