#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "dist/messages.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "rcdc/validator.hpp"

namespace dcv::dist {

struct WorkerSessionConfig {
  /// Identity sent in kHello; labels this worker's metric series at the
  /// coordinator.
  std::string id = "worker";
  /// Epoch of the topology this worker loaded; the coordinator refuses the
  /// hello on mismatch.
  std::uint64_t topology_epoch = 0;
  /// Simulated per-device table-acquisition latency on top of the fib
  /// source's own behavior (the paper's 200-800 ms pull cost). Slept on
  /// the injected clock, scaled by time_scale.
  std::chrono::nanoseconds fetch_latency{0};
  double time_scale = 1.0;
  /// How long to wait for kWelcome after sending hello.
  std::chrono::nanoseconds handshake_deadline{std::chrono::seconds(10)};
  /// Idle poll sleep while waiting for frames.
  std::chrono::nanoseconds poll_interval{std::chrono::milliseconds(2)};
  /// When non-null (must outlive the session), local validation metrics
  /// accumulate here and a dcv-metrics-v1 snapshot rides on every result
  /// frame for the coordinator to merge under {worker=<id>}.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-null (must outlive the session), the shard/fetch/validate
  /// spans shipped to the coordinator are also mirrored here, so a lone
  /// worker can dump its own timeline (dcv_worker --trace-out) without a
  /// coordinator merge.
  obs::TraceRing* trace = nullptr;
  /// Injected time source; defaults to the shared SystemFetchClock.
  rcdc::FetchClock* clock = nullptr;
};

/// Why a session over one connection ended.
enum class SessionEnd : std::uint8_t {
  /// Coordinator sent kShutdown: do not reconnect.
  kShutdown,
  /// Transport closed or handshake failed: reconnect with backoff.
  kConnectionLost,
};

/// One worker's side of the protocol, over one connected transport:
/// hello → welcome → (assign → validate shard → result)* until shutdown or
/// connection loss. The fetch→validate inner loop is the same per-device
/// discipline as DatacenterValidator::run — fetch through the FibSource
/// (failures count against coverage, never throw), check contracts that
/// arrived on the wire, fingerprint each fetched table — plus heartbeats
/// at the coordinator-advertised cadence so the shard lease stays alive.
class WorkerSession {
 public:
  /// `fibs` and `verifier_factory` must outlive the session.
  WorkerSession(const rcdc::FibSource& fibs,
                rcdc::VerifierFactory verifier_factory,
                WorkerSessionConfig config = {});

  /// Serves one connection to completion. Never throws on protocol or
  /// peer failure; returns why the session ended.
  SessionEnd run(Transport& transport);

  /// Shards validated over this session's lifetime (all connections).
  [[nodiscard]] std::uint64_t shards_validated() const {
    return shards_validated_;
  }

 private:
  bool validate_shard(const AssignMsg& assignment, Transport& transport,
                      std::chrono::nanoseconds heartbeat_interval);

  const rcdc::FibSource* fibs_;
  rcdc::VerifierFactory verifier_factory_;
  WorkerSessionConfig config_;
  rcdc::SystemFetchClock default_clock_;
  rcdc::FetchClock* clock_;
  std::uint64_t shards_validated_ = 0;
  /// Newest coordinator send stamp seen on this connection and its local
  /// receive time, echoed on every outgoing frame for the coordinator's
  /// clock-offset estimation. 0 until a stamped frame arrives.
  std::uint64_t peer_tx_ns_ = 0;
  std::uint64_t peer_rx_ns_ = 0;
};

/// Reconnect schedule for a worker that lost its coordinator: exponential
/// backoff, capped, no jitter (workers are few; decorrelation comes from
/// their differing shard timing).
struct ReconnectPolicy {
  /// Consecutive failed connection attempts before the worker gives up.
  std::uint32_t max_attempts = 10;
  std::chrono::nanoseconds initial_backoff{std::chrono::milliseconds(100)};
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff{std::chrono::seconds(5)};
};

/// Backoff to sleep before reconnect attempt `attempt` (1-based; attempt 1
/// happens immediately, attempt 2 waits initial_backoff, then ×multiplier
/// per further attempt, capped at max_backoff). Pure so tests verify the
/// schedule without sleeping.
[[nodiscard]] std::chrono::nanoseconds reconnect_backoff(
    const ReconnectPolicy& policy, std::uint32_t attempt);

}  // namespace dcv::dist
