#include "dist/coordinator.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics_serde.hpp"
#include "obs/span_serde.hpp"

namespace dcv::dist {

std::string_view to_string(ShardStatus status) {
  switch (status) {
    case ShardStatus::kValidated:
      return "validated";
    case ShardStatus::kRecovered:
      return "recovered";
    case ShardStatus::kFailed:
      return "failed";
  }
  return "?";
}

Coordinator::Coordinator(const topo::MetadataService& metadata,
                         CoordinatorConfig config)
    : metadata_(&metadata),
      config_(config),
      generator_(metadata, config.contract_options),
      clock_(config.clock != nullptr ? config.clock : &default_clock_),
      merger_(std::make_unique<obs::TraceMerger>(config.trace, "coordinator")) {
  obs::MetricsRegistry* metrics = config_.metrics;
  if (metrics != nullptr) {
    workers_live_gauge_ = &metrics->gauge(
        "dcv_dist_workers_live", "Workers currently admitted to the fleet");
    workers_lost_disconnect_ = &metrics->counter(
        "dcv_dist_workers_lost_total", "Workers lost, by detection path",
        {{"reason", "disconnect"}});
    workers_lost_lease_ = &metrics->counter(
        "dcv_dist_workers_lost_total", "Workers lost, by detection path",
        {{"reason", "lease_expired"}});
    workers_lost_deadline_ = &metrics->counter(
        "dcv_dist_workers_lost_total", "Workers lost, by detection path",
        {{"reason", "shard_deadline"}});
    workers_rejected_ = &metrics->counter(
        "dcv_dist_workers_rejected_total",
        "Connections dropped before admission (bad hello, protocol or "
        "topology-epoch mismatch, handshake timeout)");
    shards_validated_ = &metrics->counter(
        "dcv_dist_shards_total", "Shard cycle outcomes",
        {{"status", "validated"}});
    shards_recovered_ = &metrics->counter(
        "dcv_dist_shards_total", "Shard cycle outcomes",
        {{"status", "recovered"}});
    shards_failed_counter_ = &metrics->counter(
        "dcv_dist_shards_total", "Shard cycle outcomes",
        {{"status", "failed"}});
    reassignments_ = &metrics->counter(
        "dcv_dist_reassignments_total",
        "Shard deliveries beyond each shard's first assignment");
    stale_results_ = &metrics->counter(
        "dcv_dist_stale_results_total",
        "Results ignored because their shard attempt was already "
        "reassigned or finished");
    decode_errors_ = &metrics->counter(
        "dcv_dist_decode_errors_total",
        "Well-framed messages whose payload failed to decode");
    trace_decode_errors_ = &metrics->counter(
        "dcv_dist_trace_decode_errors_total",
        "Result trace blobs that failed dcv-trace-v1 decoding (the shard "
        "result itself still counted)");
    cycle_coverage_ = &metrics->gauge(
        "dcv_dist_cycle_coverage",
        "Device coverage of the latest distributed cycle");
    shard_elapsed_ns_ = &metrics->histogram(
        "dcv_dist_shard_elapsed_ns",
        "Worker-reported wall time per validated shard");
  }
}

void Coordinator::add_worker(std::unique_ptr<Transport> transport) {
  Worker worker;
  worker.id = transport->peer();
  worker.transport = std::move(transport);
  worker.admitted_at = clock_->now();
  workers_.push_back(std::move(worker));
}

std::size_t Coordinator::live_workers() const {
  std::size_t live = 0;
  for (const Worker& worker : workers_) {
    if (!worker.dead && worker.hello_done) ++live;
  }
  return live;
}

std::size_t Coordinator::pump(std::size_t target_workers,
                              std::chrono::nanoseconds deadline) {
  const auto until = clock_->now() + deadline;
  while (true) {
    bool progress = false;
    process_frames(progress);
    detect_failures();
    const std::size_t live = live_workers();
    if (live >= target_workers || clock_->now() >= until) {
      std::erase_if(workers_, [](const Worker& w) { return w.dead; });
      return live;
    }
    if (!progress) clock_->sleep_for(config_.poll_interval);
  }
}

void Coordinator::handle_hello(std::size_t worker_index, const Frame& frame) {
  Worker& worker = workers_[worker_index];
  const std::optional<HelloMsg> hello = decode_hello(frame.payload);
  if (!hello.has_value() || hello->protocol != kProtocolVersion ||
      hello->topology_epoch != metadata_->epoch()) {
    if (workers_rejected_ != nullptr) workers_rejected_->inc();
    lose_worker(worker_index, "rejected");
    return;
  }
  worker.id = hello->worker_id;
  // Keep ids unique so worker-labeled metric series never collide.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i != worker_index && !workers_[i].dead && workers_[i].hello_done &&
        workers_[i].id == worker.id) {
      worker.id += "#" + std::to_string(worker_index);
      break;
    }
  }
  const auto now = clock_->now();
  // A zero stamp means the peer opted out of clock sync (pre-v2 style
  // fakes and test drivers); never seed from it.
  if (hello->send_ns != 0) {
    worker.clock_sync.seed_one_way(
        static_cast<std::int64_t>(hello->send_ns),
        now.time_since_epoch().count());
  }
  if (config_.metrics != nullptr) {
    worker.offset_gauge = &config_.metrics->gauge(
        "dcv_dist_clock_offset_ns",
        "Estimated worker steady-clock offset (worker minus coordinator), "
        "from min-RTT midpoint-of-round-trip samples",
        {{"worker", worker.id}});
    worker.offset_gauge->set(
        static_cast<double>(worker.clock_sync.offset_ns()));
  }
  WelcomeMsg welcome;
  welcome.heartbeat_interval_ns =
      static_cast<std::uint64_t>(config_.heartbeat_interval.count());
  welcome.lease_ns = static_cast<std::uint64_t>(config_.lease.count());
  welcome.send_ns =
      static_cast<std::uint64_t>(now.time_since_epoch().count());
  if (!worker.transport->send(encode(welcome))) {
    lose_worker(worker_index, "disconnect");
    return;
  }
  worker.hello_done = true;
  ++workers_admitted_total_;
  workers_live_.fetch_add(1, std::memory_order_relaxed);
  if (workers_live_gauge_ != nullptr) {
    workers_live_gauge_->set(
        static_cast<double>(workers_live_.load(std::memory_order_relaxed)));
  }
}

void Coordinator::observe_clock_echo(Worker& worker, std::uint64_t send_ns,
                                     std::uint64_t peer_tx_ns,
                                     std::uint64_t peer_rx_ns) {
  if (send_ns == 0 || peer_tx_ns == 0 || peer_rx_ns == 0) return;
  worker.clock_sync.add_sample(static_cast<std::int64_t>(peer_tx_ns),
                               static_cast<std::int64_t>(peer_rx_ns),
                               static_cast<std::int64_t>(send_ns),
                               clock_->now().time_since_epoch().count());
  if (worker.offset_gauge != nullptr) {
    worker.offset_gauge->set(
        static_cast<double>(worker.clock_sync.offset_ns()));
  }
}

void Coordinator::record_assign_span(const Shard& shard,
                                     std::string_view name) {
  if (config_.trace == nullptr || shard.assign_span == 0) return;
  config_.trace->record_span(name, shard.assign_span, cycle_span_,
                             current_cycle_id_, shard.assign_sent_at,
                             clock_->now() - shard.assign_sent_at);
}

void Coordinator::handle_heartbeat(std::size_t worker_index,
                                   const HeartbeatMsg& msg) {
  Worker& worker = workers_[worker_index];
  observe_clock_echo(worker, msg.send_ns, msg.peer_tx_ns, msg.peer_rx_ns);
  if (!worker.active_shard.has_value()) return;
  Shard& shard = shards_[*worker.active_shard];
  if (shard.id != msg.shard_id || shard.attempt != msg.attempt) return;
  // Renew the lease, but never past the per-delivery hard deadline.
  shard.lease_deadline =
      std::min(clock_->now() + config_.lease, shard.hard_deadline);
}

void Coordinator::handle_result(std::size_t worker_index, ResultMsg msg) {
  Worker& worker = workers_[worker_index];
  observe_clock_echo(worker, msg.send_ns, msg.peer_tx_ns, msg.peer_rx_ns);
  const bool current = worker.active_shard.has_value() &&
                       msg.shard_id < shards_.size() &&
                       shards_[msg.shard_id].owner == worker_index &&
                       shards_[msg.shard_id].attempt == msg.attempt &&
                       !shards_[msg.shard_id].done();
  if (!current) {
    if (stale_results_ != nullptr) stale_results_->inc();
    return;
  }
  Shard& shard = shards_[msg.shard_id];
  if (shard_elapsed_ns_ != nullptr) {
    shard_elapsed_ns_->observe(static_cast<double>(msg.elapsed_ns));
  }
  // Feed the shard's wall time back into the carving cost model: the next
  // cycle sizes shards by estimated time, not device count.
  {
    std::vector<topo::DeviceId> shard_devices;
    shard_devices.reserve(shard.devices.size());
    for (const DeviceWork& work : shard.devices) {
      shard_devices.push_back(work.device);
    }
    balancer_.record(shard_devices, msg.elapsed_ns);
  }
  if (config_.metrics != nullptr && !msg.registry_blob.empty()) {
    // Fold the worker's own registry into ours under {worker=<id>}; a
    // malformed blob is dropped (the validation result still counts).
    (void)obs::merge_serialized(*config_.metrics, msg.registry_blob,
                                {{"worker", worker.id}});
  }
  // The assign span must land in the local ring before the worker's tree
  // is merged under it, so no snapshot ever sees children without their
  // parent.
  record_assign_span(shard, "assign");
  if (!msg.trace_blob.empty()) {
    obs::DecodedTrace remote;
    if (obs::deserialize_trace(msg.trace_blob, remote)) {
      // Merger offset is local − remote; the estimator reports remote −
      // local. The floor pins the tree to start no earlier than its
      // assign, absorbing the ±rtt/2 estimation error.
      const std::chrono::nanoseconds floor =
          config_.trace != nullptr
              ? shard.assign_sent_at - config_.trace->epoch()
              : std::chrono::nanoseconds{0};
      merger_->add_remote(worker.id, std::move(remote),
                          -worker.clock_sync.offset_ns(), shard.assign_span,
                          floor);
    } else if (trace_decode_errors_ != nullptr) {
      // Malformed telemetry never fails the shard: the validation result
      // is already decoded and counted.
      trace_decode_errors_->inc();
    }
    msg.trace_blob.clear();
  }
  shard.result = std::move(msg);
  shard.result_worker = worker.id;
  shard.owner.reset();
  worker.active_shard.reset();
}

void Coordinator::process_frames(bool& progress) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    // Indexed loop: handlers may push nothing, but lose_worker mutates
    // workers_[i] in place; the vector itself is stable during a cycle.
    while (!workers_[i].dead) {
      std::optional<Frame> frame = workers_[i].transport->poll();
      if (!frame.has_value()) break;
      progress = true;
      if (!workers_[i].hello_done) {
        if (frame->type == MsgType::kHello) {
          handle_hello(i, *frame);
        } else {
          if (workers_rejected_ != nullptr) workers_rejected_->inc();
          lose_worker(i, "rejected");
        }
        continue;
      }
      switch (frame->type) {
        case MsgType::kHeartbeat: {
          const auto msg = decode_heartbeat(frame->payload);
          if (msg.has_value()) {
            handle_heartbeat(i, *msg);
          } else if (decode_errors_ != nullptr) {
            decode_errors_->inc();
          }
          break;
        }
        case MsgType::kResult: {
          auto msg = decode_result(frame->payload);
          if (msg.has_value()) {
            handle_result(i, std::move(*msg));
          } else if (decode_errors_ != nullptr) {
            decode_errors_->inc();
          }
          break;
        }
        default:
          // A worker has no business sending coordinator-role messages.
          if (decode_errors_ != nullptr) decode_errors_->inc();
          lose_worker(i, "disconnect");
          break;
      }
    }
  }
}

void Coordinator::detect_failures() {
  const auto now = clock_->now();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    if (worker.dead) continue;
    if (worker.transport->closed()) {
      lose_worker(i, "disconnect");
      continue;
    }
    if (!worker.hello_done &&
        now - worker.admitted_at >= config_.hello_deadline) {
      if (workers_rejected_ != nullptr) workers_rejected_->inc();
      lose_worker(i, "rejected");
      continue;
    }
    if (worker.active_shard.has_value()) {
      const Shard& shard = shards_[*worker.active_shard];
      if (now >= shard.hard_deadline) {
        lose_worker(i, "deadline");
      } else if (now >= shard.lease_deadline) {
        lose_worker(i, "lease");
      }
    }
  }
}

void Coordinator::lose_worker(std::size_t worker_index,
                              std::string_view reason) {
  Worker& worker = workers_[worker_index];
  if (worker.dead) return;
  worker.dead = true;
  if (worker.hello_done) {
    workers_live_.fetch_sub(1, std::memory_order_relaxed);
    workers_lost_total_.fetch_add(1, std::memory_order_relaxed);
    if (workers_live_gauge_ != nullptr) {
      workers_live_gauge_->set(
          static_cast<double>(workers_live_.load(std::memory_order_relaxed)));
    }
    obs::Counter* counter = reason == "lease"      ? workers_lost_lease_
                            : reason == "deadline" ? workers_lost_deadline_
                            : reason == "rejected" ? nullptr
                                                   : workers_lost_disconnect_;
    if (counter != nullptr) counter->inc();
  }
  if (worker.active_shard.has_value()) {
    const std::size_t shard_index = *worker.active_shard;
    worker.active_shard.reset();
    shards_[shard_index].owner.reset();
    requeue_or_fail(shard_index);
  }
}

void Coordinator::requeue_or_fail(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.done()) return;
  record_assign_span(shard, "assign_lost");
  shard.assign_span = 0;
  shard.lost_once = true;
  if (shard.deliveries >= 1 + config_.shard_retry_budget) {
    shard.failed = true;
    if (shards_failed_counter_ != nullptr) shards_failed_counter_->inc();
    return;
  }
  ++shard.attempt;
  pending_shards_.push_back(shard_index);
}

bool Coordinator::assign_pending_shards() {
  bool assigned = false;
  while (!pending_shards_.empty()) {
    std::size_t idle_worker = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].dead && workers_[i].hello_done &&
          !workers_[i].active_shard.has_value()) {
        idle_worker = i;
        break;
      }
    }
    if (idle_worker == workers_.size()) break;
    const std::size_t shard_index = pending_shards_.front();
    pending_shards_.pop_front();
    Shard& shard = shards_[shard_index];
    if (shard.done()) continue;
    Worker& worker = workers_[idle_worker];
    shard.owner = idle_worker;
    ++shard.deliveries;
    if (shard.deliveries > 1 && reassignments_ != nullptr) {
      reassignments_->inc();
    }
    const auto now = clock_->now();
    shard.hard_deadline = now + config_.shard_deadline;
    shard.lease_deadline = std::min(now + config_.lease, shard.hard_deadline);
    worker.active_shard = shard_index;
    shard.assign_span = obs::allocate_span_id();
    shard.assign_sent_at = now;
    AssignMsg assign;
    assign.shard_id = shard.id;
    assign.attempt = shard.attempt;
    assign.plan_epoch = metadata_->epoch();
    assign.devices = shard.devices;
    assign.cycle_id = current_cycle_id_;
    assign.parent_span = shard.assign_span;
    assign.send_ns = static_cast<std::uint64_t>(now.time_since_epoch().count());
    if (!worker.transport->send(encode(assign))) {
      // lose_worker sees active_shard and requeues (or fails) the shard.
      lose_worker(idle_worker, "disconnect");
      continue;
    }
    assigned = true;
  }
  return assigned;
}

bool Coordinator::any_admissible_worker() const {
  for (const Worker& worker : workers_) {
    if (!worker.dead) return true;
  }
  return false;
}

void Coordinator::fail_all_pending() {
  for (Shard& shard : shards_) {
    if (!shard.done()) {
      shard.failed = true;
      if (shards_failed_counter_ != nullptr) shards_failed_counter_->inc();
    }
  }
  pending_shards_.clear();
}

DistributedSummary Coordinator::run_cycle() {
  cycle_in_progress_.store(true, std::memory_order_relaxed);
  const auto start = clock_->now();
  current_cycle_id_ = cycles_completed_.load(std::memory_order_relaxed) + 1;
  cycle_span_ = obs::allocate_span_id();
  const std::uint64_t lost_before =
      workers_lost_total_.load(std::memory_order_relaxed);
  std::erase_if(workers_, [](const Worker& w) { return w.dead; });
  for (Worker& worker : workers_) worker.active_shard.reset();

  // Carve the device space into shards, each carrying its devices' full
  // contract sets from the coordinator-owned plan. Shards are cut at a
  // per-shard *cost* budget OR at a wire-size budget, whichever comes
  // first: spine/leaf devices of a big fabric can each carry thousands of
  // contracts, and one assign frame must always stay far below the
  // kMaxPayload cap that workers (rightly) refuse to decode.
  //
  // The cost budget comes from the feedback balancer: per-device EWMA
  // estimates derived from prior cycles' shard wall times. Before any
  // feedback exists every device costs the same and the carve degrades to
  // the equal-device-count chunking used previously.
  const rcdc::ContractPlanPtr plan = generator_.plan();
  const auto& devices = metadata_->topology().devices();
  const std::size_t shard_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.shards_per_worker) *
             std::max<std::size_t>(1, live_workers()));
  double total_cost = 0.0;
  for (const auto& device : devices) total_cost += balancer_.cost(device.id);
  const double cost_budget =
      total_cost / static_cast<double>(std::max<std::size_t>(1, shard_count));
  constexpr std::size_t kShardByteBudget = 8u << 20;  // 1/8 of kMaxPayload
  shards_.clear();
  pending_shards_.clear();
  Shard shard;
  std::size_t shard_bytes = 0;
  double shard_cost = 0.0;
  const auto cut_shard = [this, &shard, &shard_bytes, &shard_cost] {
    if (shard.devices.empty()) return;
    shard.id = static_cast<std::uint32_t>(shards_.size());
    shards_.push_back(std::move(shard));
    shard = Shard{};
    shard_bytes = 0;
    shard_cost = 0.0;
  };
  for (const auto& device : devices) {
    DeviceWork work;
    work.device = device.id;
    const std::span<const rcdc::Contract> contracts =
        plan->contracts_for(device.id);
    work.contracts.assign(contracts.begin(), contracts.end());
    // Wire cost: device id + contract count, then per contract kind(1) +
    // prefix(5) + hop count(4) + hops(4 each) + mode(1) + min(8) + allow(1).
    std::size_t work_bytes = 8;
    for (const rcdc::Contract& contract : work.contracts) {
      work_bytes += 20 + 4 * contract.expected_next_hops.size();
    }
    // Cut *before* exceeding the budget (uniform costs: this is exactly the
    // old `size >= ceil(n / shard_count)` device-count cut).
    if (!shard.devices.empty() &&
        (shard_cost >= cost_budget ||
         shard_bytes + work_bytes > kShardByteBudget)) {
      cut_shard();
    }
    shard.devices.push_back(std::move(work));
    shard_bytes += work_bytes;
    shard_cost += balancer_.cost(device.id);
  }
  cut_shard();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    pending_shards_.push_back(i);
  }

  while (true) {
    bool progress = false;
    process_frames(progress);
    detect_failures();
    if (assign_pending_shards()) progress = true;
    const bool all_done =
        std::all_of(shards_.begin(), shards_.end(),
                    [](const Shard& s) { return s.done(); });
    if (all_done) break;
    if (!any_admissible_worker()) {
      // The whole fleet is gone: complete degraded instead of waiting for
      // workers that can never come back.
      fail_all_pending();
      break;
    }
    if (!progress) clock_->sleep_for(config_.poll_interval);
  }

  DistributedSummary summary = finish_cycle(start);
  summary.workers_lost =
      workers_lost_total_.load(std::memory_order_relaxed) - lost_before;
  return summary;
}

DistributedSummary Coordinator::finish_cycle(
    std::chrono::steady_clock::time_point start) {
  DistributedSummary summary;
  summary.workers_connected = workers_admitted_total_;
  for (Shard& shard : shards_) {
    ShardOutcome outcome;
    outcome.shard_id = shard.id;
    outcome.devices = shard.devices.size();
    outcome.attempts = shard.deliveries;
    if (shard.result.has_value()) {
      const ResultMsg& result = *shard.result;
      outcome.worker = shard.result_worker;
      outcome.elapsed_ns = result.elapsed_ns;
      outcome.status =
          shard.lost_once ? ShardStatus::kRecovered : ShardStatus::kValidated;
      // A recovered shard was fully re-validated, but it sits behind a
      // failure event; keep the reduced-trust mark for operators.
      outcome.degraded_confidence = shard.lost_once;
      if (shard.lost_once) {
        if (shards_recovered_ != nullptr) shards_recovered_->inc();
      } else if (shards_validated_ != nullptr) {
        shards_validated_->inc();
      }
      summary.merged.devices_checked += result.devices_checked;
      summary.merged.contracts_checked += result.contracts_checked;
      summary.merged.devices_failed += result.devices_failed;
      summary.merged.devices_stale += result.devices_stale;
      summary.merged.retries += result.retries;
      summary.merged.breaker_opens += result.breaker_opens;
      summary.merged.violations_degraded += result.violations_degraded;
      summary.merged.violations.insert(summary.merged.violations.end(),
                                       result.violations.begin(),
                                       result.violations.end());
      for (const auto& [device, fingerprint] : result.fingerprints) {
        fingerprints_[device] = fingerprint;
      }
    } else {
      // Failed shard: its devices were never validated; count every one
      // against coverage, exactly like per-device fetch failures.
      outcome.status = ShardStatus::kFailed;
      outcome.degraded_confidence = true;
      summary.merged.devices_checked += shard.devices.size();
      summary.merged.devices_failed += shard.devices.size();
      ++summary.shards_failed;
    }
    summary.reassignments +=
        shard.deliveries > 0 ? shard.deliveries - 1 : 0;
    summary.shards.push_back(std::move(outcome));
  }
  std::stable_sort(summary.merged.violations.begin(),
                   summary.merged.violations.end(),
                   [](const rcdc::Violation& a, const rcdc::Violation& b) {
                     return a.device < b.device;
                   });
  summary.merged.elapsed = clock_->now() - start;
  if (config_.trace != nullptr) {
    config_.trace->record_span("cycle", cycle_span_, /*parent=*/0,
                               current_cycle_id_, start,
                               summary.merged.elapsed);
  }

  const double coverage = summary.coverage();
  last_coverage_.store(coverage, std::memory_order_relaxed);
  shards_failed_last_.store(summary.shards_failed, std::memory_order_relaxed);
  cycles_completed_.fetch_add(1, std::memory_order_relaxed);
  cycle_in_progress_.store(false, std::memory_order_relaxed);
  if (cycle_coverage_ != nullptr) cycle_coverage_->set(coverage);
  std::erase_if(workers_, [](const Worker& w) { return w.dead; });
  return summary;
}

void Coordinator::shutdown_workers() {
  for (Worker& worker : workers_) {
    if (!worker.dead && worker.hello_done) {
      (void)worker.transport->send(encode_shutdown());
    }
  }
}

Coordinator::Health Coordinator::health() const {
  Health health;
  health.workers_live = workers_live_.load(std::memory_order_relaxed);
  health.workers_lost_total =
      workers_lost_total_.load(std::memory_order_relaxed);
  health.cycles_completed = cycles_completed_.load(std::memory_order_relaxed);
  health.last_coverage = last_coverage_.load(std::memory_order_relaxed);
  health.shards_failed_last_cycle =
      shards_failed_last_.load(std::memory_order_relaxed);
  health.cycle_in_progress = cycle_in_progress_.load(std::memory_order_relaxed);
  return health;
}

obs::HealthProbe make_fleet_probe(const Coordinator& coordinator,
                                  FleetReadinessRules rules) {
  return [&coordinator, rules]() -> obs::HealthSnapshot {
    const Coordinator::Health health = coordinator.health();
    obs::HealthSnapshot snapshot;
    std::ostringstream detail;
    bool ready = true;
    if (health.workers_live < rules.min_workers) ready = false;
    detail << "workers_live: " << health.workers_live << " (min "
           << rules.min_workers << ")\n";
    if (health.cycles_completed == 0) ready = false;
    detail << "cycles_completed: " << health.cycles_completed << "\n";
    if (health.last_coverage < rules.min_coverage) ready = false;
    detail << "last_coverage: " << health.last_coverage << " (min "
           << rules.min_coverage << ")\n";
    if (health.shards_failed_last_cycle > rules.max_failed_shards) {
      ready = false;
    }
    detail << "shards_failed_last_cycle: " << health.shards_failed_last_cycle
           << " (max " << rules.max_failed_shards << ")\n";
    detail << "workers_lost_total: " << health.workers_lost_total << "\n";
    snapshot.ready = ready;
    snapshot.detail = detail.str();
    return snapshot;
  };
}

}  // namespace dcv::dist
