#include "dist/process.hpp"

#include <csignal>
#include <cstdlib>

#include <sys/wait.h>
#include <unistd.h>

namespace dcv::dist {

namespace {

volatile std::sig_atomic_t g_child_exited = 0;

extern "C" void on_sigchld(int) { g_child_exited = 1; }

}  // namespace

void install_fleet_signal_handlers() {
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction action{};
  action.sa_handler = on_sigchld;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: reaping happens from the serve loop, not the handler; no
  // syscall in the coordinator should fail with EINTR just because a
  // worker died.
  action.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &action, nullptr);
}

bool child_exit_pending() { return g_child_exited != 0; }

WorkerFleet::WorkerFleet(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    exits_clean_ = &metrics->counter("dcv_dist_worker_exits_total",
                                     "Worker process exits, by kind",
                                     {{"reason", "exit0"}});
    exits_error_ = &metrics->counter("dcv_dist_worker_exits_total",
                                     "Worker process exits, by kind",
                                     {{"reason", "exit"}});
    exits_signal_ = &metrics->counter("dcv_dist_worker_exits_total",
                                      "Worker process exits, by kind",
                                      {{"reason", "signal"}});
  }
}

WorkerFleet::~WorkerFleet() {
  kill_all(SIGKILL);
  // Blocking reap on teardown only: every child is already dead or dying.
  for (const pid_t pid : pids_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  pids_.clear();
}

pid_t WorkerFleet::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) return -1;
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    raw.push_back(const_cast<char*>(arg.c_str()));
  }
  raw.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    // exec failed: exit the child without running parent atexit handlers.
    ::_exit(127);
  }
  pids_.push_back(pid);
  return pid;
}

std::vector<WorkerExit> WorkerFleet::reap() {
  g_child_exited = 0;
  std::vector<WorkerExit> exits;
  for (auto it = pids_.begin(); it != pids_.end();) {
    int status = 0;
    const pid_t done = ::waitpid(*it, &status, WNOHANG);
    if (done != *it) {
      ++it;
      continue;
    }
    WorkerExit exit;
    exit.pid = done;
    if (WIFSIGNALED(status)) {
      exit.reason = "signal";
      exit.code = WTERMSIG(status);
      if (exits_signal_ != nullptr) exits_signal_->inc();
    } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      exit.reason = "exit0";
      exit.code = 0;
      if (exits_clean_ != nullptr) exits_clean_->inc();
    } else {
      exit.reason = "exit";
      exit.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (exits_error_ != nullptr) exits_error_->inc();
    }
    exits.push_back(std::move(exit));
    it = pids_.erase(it);
  }
  return exits;
}

void WorkerFleet::kill_all(int signum) {
  for (const pid_t pid : pids_) {
    ::kill(pid, signum);
  }
}

}  // namespace dcv::dist
