#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dcv::dist {

/// One reaped child: how it left and with what.
struct WorkerExit {
  pid_t pid = -1;
  /// "exit0" (clean), "exit" (nonzero status), "signal" (killed).
  std::string reason;
  /// Exit status for "exit0"/"exit", signal number for "signal".
  int code = 0;
};

/// Installs the coordinator-process signal discipline (idempotent,
/// process-global): SIGPIPE ignored — a worker dying mid-write must
/// surface as a send() error on its transport, not kill the coordinator —
/// and SIGCHLD noted in a flag so the serve loop knows to reap.
void install_fleet_signal_handlers();

/// True once any SIGCHLD arrived since the last reap() — cheap hint, not
/// a requirement: reap() is safe to call any time.
[[nodiscard]] bool child_exit_pending();

/// Local worker processes under one coordinator: fork/exec, reap, kill.
/// Reaping classifies every exit and (when instrumented) counts it in
/// dcv_dist_worker_exits_total{reason=exit0|exit|signal}, so operator
/// dashboards separate clean drains from crash loops. Not thread-safe;
/// owned by the coordinator's main loop.
class WorkerFleet {
 public:
  /// `metrics`, when non-null, must outlive the fleet.
  explicit WorkerFleet(obs::MetricsRegistry* metrics = nullptr);
  /// Kills (SIGKILL) and reaps anything still running.
  ~WorkerFleet();

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// Spawns `argv[0]` with the given argument list. Returns the pid, or
  /// -1 when fork/exec fails.
  pid_t spawn(const std::vector<std::string>& argv);

  /// Reaps every already-exited child without blocking (waitpid WNOHANG);
  /// no zombies survive a serve loop that calls this periodically.
  std::vector<WorkerExit> reap();

  /// Children spawned and not yet reaped.
  [[nodiscard]] std::size_t alive() const { return pids_.size(); }
  [[nodiscard]] const std::vector<pid_t>& pids() const { return pids_; }

  /// Signals every live child (best effort).
  void kill_all(int signum);

 private:
  std::vector<pid_t> pids_;
  obs::Counter* exits_clean_ = nullptr;
  obs::Counter* exits_error_ = nullptr;
  obs::Counter* exits_signal_ = nullptr;
};

}  // namespace dcv::dist
