#include "dist/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

namespace dcv::dist {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(int fd, std::string peer, TcpTransportConfig config)
    : fd_(fd), peer_(std::move(peer)), config_(config) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpTransport::send(const Frame& frame) {
  if (closed_) return false;
  if (frame.payload.size() > kMaxPayload) {
    // The peer would reject this as a fatal framing error anyway; failing
    // the send keeps the stream clean and surfaces the bug at the sender.
    return false;
  }
  const std::vector<std::uint8_t> encoded = encode_frame(frame);
  std::size_t sent = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        config_.send_timeout;
  while (sent < encoded.size()) {
    const ssize_t n = ::send(fd_, encoded.data() + sent, encoded.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        closed_ = true;
        return false;
      }
      struct pollfd pfd{fd_, POLLOUT, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      ::poll(&pfd, 1, static_cast<int>(std::max<std::int64_t>(
                          1, left.count())));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;  // EPIPE/ECONNRESET: the peer is gone
    return false;
  }
  return true;
}

void TcpTransport::fill_from_socket() {
  std::uint8_t chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      recv_buffer_.insert(recv_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;  // n == 0: orderly EOF; n < 0: reset — both terminal
    return;
  }
}

std::optional<Frame> TcpTransport::poll() {
  if (decoded_.empty() && !closed_) fill_from_socket();
  // Decode everything bufferable, even after close: a worker that sent its
  // result and then died must still deliver that result.
  while (!recv_buffer_.empty()) {
    DecodeResult result = try_decode_frame(recv_buffer_);
    if (result.ok()) {
      decoded_.push_back(std::move(*result.frame));
      recv_buffer_.erase(recv_buffer_.begin(),
                         recv_buffer_.begin() +
                             static_cast<std::ptrdiff_t>(result.consumed));
      continue;
    }
    if (result.error == DecodeError::kNeedMoreData) break;
    // Fatal framing error: the stream cannot be resynced.
    last_error_ = result.error;
    closed_ = true;
    recv_buffer_.clear();
    break;
  }
  if (decoded_.empty()) return std::nullopt;
  Frame frame = std::move(decoded_.front());
  decoded_.pop_front();
  return frame;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, backlog) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(saved, std::generic_category(), "bind/listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  set_nonblocking(fd_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  struct pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) return nullptr;
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  const int client = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (client < 0) return nullptr;
  char text[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof text);
  return std::make_unique<TcpTransport>(
      client, std::string(text) + ":" + std::to_string(ntohs(addr.sin_port)));
}

std::unique_ptr<TcpTransport> connect_tcp(const std::string& host,
                                          std::uint16_t port,
                                          std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  set_nonblocking(fd);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  if (rc < 0) {
    struct pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(timeout.count())) <= 0) {
      ::close(fd);
      return nullptr;
    }
    int error = 0;
    socklen_t len = sizeof error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) < 0 ||
        error != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  return std::make_unique<TcpTransport>(
      fd, host + ":" + std::to_string(port));
}

}  // namespace dcv::dist
