#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dist/clock_sync.hpp"
#include "dist/messages.hpp"
#include "dist/shard_balancer.hpp"
#include "dist/transport.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "rcdc/validator.hpp"
#include "topology/metadata.hpp"

namespace dcv::dist {

struct CoordinatorConfig {
  /// A shard assignment not renewed (heartbeat/result) within this window
  /// is considered lost: the owning worker is declared dead and the shard
  /// is reassigned. Should be several multiples of heartbeat_interval.
  std::chrono::nanoseconds lease{std::chrono::seconds(5)};
  /// Advertised to workers in kWelcome; workers heartbeat at this cadence
  /// while validating.
  std::chrono::nanoseconds heartbeat_interval{std::chrono::seconds(1)};
  /// Event-loop idle sleep between polls when nothing is arriving.
  std::chrono::nanoseconds poll_interval{std::chrono::milliseconds(2)};
  /// A worker that connects but never completes the hello handshake is
  /// dropped after this long.
  std::chrono::nanoseconds hello_deadline{std::chrono::seconds(10)};
  /// Hard per-delivery cap: heartbeats renew the lease but can never push
  /// one shard delivery past this, so a worker that heartbeats forever
  /// without producing a result still cannot hang the cycle.
  std::chrono::nanoseconds shard_deadline{std::chrono::minutes(5)};
  /// Extra deliveries a shard may consume after its first assignment is
  /// lost. Once exhausted the shard is marked failed and the cycle
  /// completes with coverage < 1.0 instead of retrying forever.
  std::uint32_t shard_retry_budget = 2;
  /// Shards carved per connected worker at cycle start; > 1 keeps the unit
  /// of loss/reassignment smaller than a whole worker's load and lets
  /// fast workers steal from the queue.
  std::uint32_t shards_per_worker = 4;
  rcdc::ContractGenOptions contract_options{};
  /// When non-null (must outlive the coordinator), receives dcv_dist_*
  /// series plus every worker's merged registry labeled {worker=<id>}.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-null (must outlive the coordinator), receives the
  /// coordinator's own cycle/assign spans, and anchors the merged fleet
  /// timeline: worker span trees arriving in results are re-parented under
  /// their shard's assign span and rebased onto this ring's epoch (see
  /// merger()).
  obs::TraceRing* trace = nullptr;
  /// Injected time source; defaults to the shared SystemFetchClock. Tests
  /// drive lease expiry and idle sleeps with a ManualFetchClock so no
  /// failure scenario ever wall-sleeps.
  rcdc::FetchClock* clock = nullptr;
};

enum class ShardStatus : std::uint8_t {
  /// A worker returned a result for the shard's current attempt.
  kValidated,
  /// Validated, but only after at least one assignment was lost to a
  /// worker crash/hang and the shard was re-delivered.
  kRecovered,
  /// Retry budget exhausted (or no workers left): the shard's devices were
  /// never validated this cycle and count against coverage.
  kFailed,
};

[[nodiscard]] std::string_view to_string(ShardStatus status);

/// Per-shard account of one cycle, carried into the distributed report.
struct ShardOutcome {
  std::uint32_t shard_id = 0;
  /// Worker that produced the accepted result ("" for failed shards).
  std::string worker;
  std::size_t devices = 0;
  /// Deliveries consumed (1 = clean first-assignment validation).
  std::uint32_t attempts = 0;
  /// Worker-reported wall time of the accepted validation (0 for failed
  /// shards) — the same figure feeding dcv_dist_shard_elapsed_ns, carried
  /// per shard so slow shards are attributable from the report alone.
  std::uint64_t elapsed_ns = 0;
  ShardStatus status = ShardStatus::kFailed;
  /// True for results that warrant reduced trust: the shard failed
  /// outright, or was validated only via reassignment after a loss (its
  /// first observation window is unknown territory).
  bool degraded_confidence = true;
};

/// Merged result of one distributed validation cycle. Failed shards'
/// devices are folded into merged.devices_failed, so merged.coverage()
/// reflects fleet losses the same way single-process coverage reflects
/// fetch failures.
struct DistributedSummary {
  rcdc::ValidationSummary merged;
  std::vector<ShardOutcome> shards;
  std::size_t workers_connected = 0;
  std::size_t workers_lost = 0;
  std::size_t shards_failed = 0;
  std::size_t reassignments = 0;

  [[nodiscard]] double coverage() const { return merged.coverage(); }
  [[nodiscard]] bool degraded() const { return shards_failed > 0; }
};

/// Readiness thresholds for the fleet /readyz probe.
struct FleetReadinessRules {
  /// Fewer live workers than this fails readiness.
  std::size_t min_workers = 1;
  /// Last cycle's coverage below this fails readiness.
  double min_coverage = 0.9;
  /// More shards failed last cycle than this fails readiness.
  std::size_t max_failed_shards = 0;
};

/// The distribution layer of the paper's §2.6 deployment story: one
/// coordinator owns contract planning and shard assignment; N worker
/// processes each run fetch→validate over their shard and stream results
/// back. The coordinator is the only component that sees the whole run.
///
/// Failure handling is the point of this class: worker crashes (closed
/// transport), hangs and partitions (lease expiry) all funnel into the
/// same path — the lost shard is reassigned to a surviving worker with an
/// incremented attempt counter, up to shard_retry_budget extra deliveries,
/// after which the shard is marked failed and the cycle *completes* with
/// coverage < 1.0. run_cycle() never hangs and never throws on worker
/// failure; losing the whole fleet yields a summary with every pending
/// shard failed.
///
/// Single-threaded event loop; not thread-safe. health() is the one
/// exception: it reads atomics and may be called from a telemetry thread.
class Coordinator {
 public:
  Coordinator(const topo::MetadataService& metadata,
              CoordinatorConfig config = {});

  /// Adopts a connected worker channel. The worker joins the fleet once
  /// its kHello arrives (validated during pump()/run_cycle()); a hello
  /// with the wrong protocol or topology epoch gets the connection closed.
  void add_worker(std::unique_ptr<Transport> transport);

  /// Processes handshakes/heartbeats while idle, sleeping on the injected
  /// clock, until `deadline` elapses or `target_workers` are live.
  /// Returns the live worker count.
  std::size_t pump(std::size_t target_workers,
                   std::chrono::nanoseconds deadline);

  /// Runs one full validation cycle over every device in the topology.
  /// Blocks until every shard is validated or failed; total time is
  /// bounded by shards × (1 + retry budget) × lease even if every worker
  /// misbehaves.
  [[nodiscard]] DistributedSummary run_cycle();

  /// Broadcasts kShutdown to every live worker (best effort).
  void shutdown_workers();

  [[nodiscard]] std::size_t live_workers() const;
  [[nodiscard]] std::uint64_t cycles_completed() const {
    return cycles_completed_.load(std::memory_order_relaxed);
  }

  /// Per-device FIB fingerprints reported by workers last cycle (devices
  /// whose fetch failed are absent). Basis for cross-cycle change
  /// detection at the coordinator.
  [[nodiscard]] const std::unordered_map<topo::DeviceId, std::uint64_t>&
  fingerprints() const {
    return fingerprints_;
  }

  /// The feedback cost model steering next-cycle shard carving. Exposed
  /// for inspection: cost estimates are internal state, not a report.
  [[nodiscard]] const ShardBalancer& balancer() const { return balancer_; }

  /// Thread-safe snapshot for the fleet /readyz probe.
  struct Health {
    std::size_t workers_live = 0;
    std::uint64_t workers_lost_total = 0;
    std::uint64_t cycles_completed = 0;
    double last_coverage = 1.0;
    std::uint64_t shards_failed_last_cycle = 0;
    bool cycle_in_progress = false;
  };
  [[nodiscard]] Health health() const;

  /// The fleet trace: the coordinator's local spans plus every worker span
  /// tree merged onto the coordinator timeline. Thread-safe (snapshot());
  /// valid for the coordinator's lifetime, useful only when config.trace
  /// was set.
  [[nodiscard]] const obs::TraceMerger& merger() const { return *merger_; }

 private:
  struct Worker {
    std::string id;          // from hello; peer address until then
    std::unique_ptr<Transport> transport;
    bool hello_done = false;
    std::chrono::steady_clock::time_point admitted_at;  // hello deadline
    /// Index into shards_ of the assignment in flight, or nullopt.
    std::optional<std::size_t> active_shard;
    bool dead = false;
    /// Offset of this worker's steady clock, estimated from timestamp
    /// echoes on its heartbeats/results (zero-stamped peers stay
    /// unsynchronized and merge with offset 0).
    ClockSyncEstimator clock_sync;
    obs::Gauge* offset_gauge = nullptr;
  };

  struct Shard {
    std::uint32_t id = 0;
    std::vector<DeviceWork> devices;
    std::uint32_t attempt = 0;      // next delivery's attempt counter
    std::uint32_t deliveries = 0;   // assignments actually sent
    bool lost_once = false;         // any assignment was lost
    std::optional<std::size_t> owner;  // index into workers_
    std::chrono::steady_clock::time_point lease_deadline{};
    std::chrono::steady_clock::time_point hard_deadline{};
    std::optional<ResultMsg> result;
    std::string result_worker;
    bool failed = false;
    /// Trace identity of the delivery in flight: the assign span's id
    /// (minted per delivery) and when it was sent, so the span interval
    /// can be recorded once the result (or the loss) is known.
    std::uint64_t assign_span = 0;
    std::chrono::steady_clock::time_point assign_sent_at{};

    [[nodiscard]] bool done() const { return result.has_value() || failed; }
  };

  void process_frames(bool& progress);
  void handle_hello(std::size_t worker_index, const Frame& frame);
  void handle_heartbeat(std::size_t worker_index, const HeartbeatMsg& msg);
  void handle_result(std::size_t worker_index, ResultMsg msg);
  void detect_failures();
  void lose_worker(std::size_t worker_index, std::string_view reason);
  void requeue_or_fail(std::size_t shard_index);
  bool assign_pending_shards();
  void fail_all_pending();
  [[nodiscard]] bool any_admissible_worker() const;
  DistributedSummary finish_cycle(std::chrono::steady_clock::time_point start);

  /// Records one completed assign-delivery span (or "assign_lost") into
  /// the local trace ring; no-op when untraced.
  void record_assign_span(const Shard& shard, std::string_view name);
  /// Feeds a worker frame's clock-sync triple into its estimator (t4 =
  /// receipt, on the coordinator clock) and refreshes the offset gauge.
  /// Zero stamps — peers not participating in sync — are ignored.
  void observe_clock_echo(Worker& worker, std::uint64_t send_ns,
                          std::uint64_t peer_tx_ns, std::uint64_t peer_rx_ns);

  const topo::MetadataService* metadata_;
  CoordinatorConfig config_;
  rcdc::ContractGenerator generator_;
  rcdc::SystemFetchClock default_clock_;
  rcdc::FetchClock* clock_;
  std::unique_ptr<obs::TraceMerger> merger_;
  /// Trace identity of the cycle in progress (1-based id + root span).
  std::uint64_t current_cycle_id_ = 0;
  std::uint64_t cycle_span_ = 0;

  std::vector<Worker> workers_;
  std::vector<Shard> shards_;
  std::deque<std::size_t> pending_shards_;
  std::unordered_map<topo::DeviceId, std::uint64_t> fingerprints_;
  /// Per-device cost estimates from last cycles' shard timings; biases the
  /// next cycle's carve toward equal estimated time per shard.
  ShardBalancer balancer_;

  std::atomic<std::size_t> workers_live_{0};
  std::atomic<std::uint64_t> workers_lost_total_{0};
  std::atomic<std::uint64_t> cycles_completed_{0};
  std::atomic<double> last_coverage_{1.0};
  std::atomic<std::uint64_t> shards_failed_last_{0};
  std::atomic<bool> cycle_in_progress_{false};

  // Registry handles; all null when uninstrumented.
  obs::Gauge* workers_live_gauge_ = nullptr;
  obs::Counter* workers_lost_disconnect_ = nullptr;
  obs::Counter* workers_lost_lease_ = nullptr;
  obs::Counter* workers_lost_deadline_ = nullptr;
  std::size_t workers_admitted_total_ = 0;
  obs::Counter* workers_rejected_ = nullptr;
  obs::Counter* shards_validated_ = nullptr;
  obs::Counter* shards_recovered_ = nullptr;
  obs::Counter* shards_failed_counter_ = nullptr;
  obs::Counter* reassignments_ = nullptr;
  obs::Counter* stale_results_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* trace_decode_errors_ = nullptr;
  obs::Gauge* cycle_coverage_ = nullptr;
  obs::Histogram* shard_elapsed_ns_ = nullptr;
};

/// /readyz probe over a coordinator fleet: not ready while fewer than
/// rules.min_workers are live, last cycle's coverage is below
/// rules.min_coverage, or more than rules.max_failed_shards shards failed
/// last cycle. The detail text names every violated rule. The coordinator
/// must outlive the probe.
[[nodiscard]] obs::HealthProbe make_fleet_probe(
    const Coordinator& coordinator, FleetReadinessRules rules = {});

}  // namespace dcv::dist
