#include "dist/wire.hpp"

#include <array>
#include <cstring>

#include "net/bytes.hpp"

namespace dcv::dist {

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kWelcome:
      return "welcome";
    case MsgType::kAssign:
      return "assign";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kResult:
      return "result";
    case MsgType::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::string_view to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNeedMoreData:
      return "need-more-data";
    case DecodeError::kBadMagic:
      return "bad-magic";
    case DecodeError::kBadVersion:
      return "bad-version";
    case DecodeError::kOversized:
      return "oversized";
    case DecodeError::kBadChecksum:
      return "bad-checksum";
    case DecodeError::kUnknownType:
      return "unknown-type";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

bool known_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kHello) &&
         type <= static_cast<std::uint16_t>(MsgType::kShutdown);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  net::ByteWriter writer;
  writer.u32(kWireMagic);
  writer.u16(kWireVersion);
  writer.u16(static_cast<std::uint16_t>(frame.type));
  writer.u32(static_cast<std::uint32_t>(frame.payload.size()));
  writer.raw(frame.payload);
  // CRC over everything after the magic: version, type, length, payload.
  const auto& bytes = writer.buffer();
  writer.u32(crc32(std::span(bytes).subspan(4, bytes.size() - 4)));
  return writer.take();
}

DecodeResult try_decode_frame(std::span<const std::uint8_t> buffer) {
  const auto fatal = [&](DecodeError error) {
    return DecodeResult{.error = error, .consumed = buffer.size()};
  };
  if (buffer.size() < kFrameOverhead) {
    return DecodeResult{.error = DecodeError::kNeedMoreData};
  }
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  std::uint32_t length = 0;
  std::memcpy(&magic, buffer.data(), 4);
  std::memcpy(&version, buffer.data() + 4, 2);
  std::memcpy(&type, buffer.data() + 6, 2);
  std::memcpy(&length, buffer.data() + 8, 4);
  if (magic != kWireMagic) return fatal(DecodeError::kBadMagic);
  if (version != kWireVersion) return fatal(DecodeError::kBadVersion);
  if (length > kMaxPayload) return fatal(DecodeError::kOversized);
  const std::size_t total = kFrameOverhead + length;
  if (buffer.size() < total) {
    return DecodeResult{.error = DecodeError::kNeedMoreData};
  }
  std::uint32_t declared_crc = 0;
  std::memcpy(&declared_crc, buffer.data() + 12 + length, 4);
  if (crc32(buffer.subspan(4, 8 + length)) != declared_crc) {
    return fatal(DecodeError::kBadChecksum);
  }
  // Type is validated after the checksum: a random unknown-type value with
  // a valid CRC is a genuine protocol mismatch, not line noise.
  if (!known_type(type)) return fatal(DecodeError::kUnknownType);
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.assign(buffer.begin() + 12,
                       buffer.begin() + 12 + static_cast<std::ptrdiff_t>(length));
  return DecodeResult{.frame = std::move(frame), .consumed = total};
}

}  // namespace dcv::dist
