#include "routing/path_table.hpp"

#include "net/error.hpp"

namespace dcv::routing {

PathId PathTable::intern(std::span<const topo::Asn> path) {
  if (path.empty()) return kEmptyPathId;
  const std::size_t hash = SpanHash{}(path);
  const std::uint32_t stripe_id =
      static_cast<std::uint32_t>(hash % kStripes);
  Stripe& stripe = stripes_[stripe_id];

  const std::lock_guard lock(stripe.mutex);
  const auto it = stripe.index.find(path);
  if (it != stripe.index.end()) {
    return it->second * kStripes + stripe_id + 1;
  }

  const std::uint32_t record_index =
      stripe.count.load(std::memory_order_relaxed);
  const std::size_t block = record_index >> kBlockBits;
  if (block >= kMaxBlocks) throw InvalidArgument("PathTable stripe full");

  // Copy the ASN payload into the current chunk (chunks are reserved up
  // front and never reallocate, so the record's pointer stays valid).
  if (stripe.chunks.empty() ||
      stripe.chunks.back().size() + path.size() >
          stripe.chunks.back().capacity()) {
    stripe.chunks.emplace_back();
    stripe.chunks.back().reserve(std::max(kChunkAsns, path.size()));
  }
  std::vector<topo::Asn>& chunk = stripe.chunks.back();
  const topo::Asn* data = chunk.data() + chunk.size();
  chunk.insert(chunk.end(), path.begin(), path.end());

  Record* records = stripe.blocks[block].load(std::memory_order_acquire);
  if (records == nullptr) {
    records = new Record[kBlockSize];
    stripe.blocks[block].store(records, std::memory_order_release);
  }
  Record& record = records[record_index & (kBlockSize - 1)];
  record.data = data;
  record.length = static_cast<std::uint32_t>(path.size());
  stripe.index.emplace(record, record_index);
  // Publish after the record is fully written: a racing view() of this id
  // can only hold the id after this store (or after a later intern of the
  // same path synchronized through the stripe mutex).
  stripe.count.store(record_index + 1, std::memory_order_release);
  stripe.payload_bytes.fetch_add(path.size() * sizeof(topo::Asn),
                                 std::memory_order_relaxed);
  return record_index * kStripes + stripe_id + 1;
}

std::span<const topo::Asn> PathTable::view(PathId id) const {
  if (id == kEmptyPathId) return {};
  const std::uint32_t v = id - 1;
  const std::uint32_t stripe_id = v % kStripes;
  const std::uint32_t record_index = v / kStripes;
  const Stripe& stripe = stripes_[stripe_id];
  if (record_index >= stripe.count.load(std::memory_order_acquire)) {
    throw InvalidArgument("unknown PathId");
  }
  const Record* records =
      stripe.blocks[record_index >> kBlockBits].load(
          std::memory_order_acquire);
  const Record& record = records[record_index & (kBlockSize - 1)];
  return {record.data, record.length};
}

std::size_t PathTable::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t PathTable::bytes() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.payload_bytes.load(std::memory_order_relaxed);
    const std::uint32_t records = stripe.count.load(std::memory_order_relaxed);
    const std::size_t blocks = (records + kBlockSize - 1) >> kBlockBits;
    total += blocks * kBlockSize * sizeof(Record);
  }
  return total;
}

PathTable& global_path_table() {
  static PathTable table;
  return table;
}

}  // namespace dcv::routing
