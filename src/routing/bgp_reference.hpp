#pragma once

#include <map>
#include <vector>

#include "routing/bgp_sim.hpp"

namespace dcv::routing {

/// The original Jacobi-style EBGP simulator, retained verbatim as the
/// correctness oracle and performance baseline for the worklist engine in
/// BgpSimulator: every round recomputes every device from the previous
/// round's full state and deep-copies the whole network's RIBs. Routing
/// policy (§2.1) and fault handling are identical to BgpSimulator — the
/// differential test suite pins the two engines to byte-equal RIBs and
/// FIBs — but nothing here is incremental, parallel, or allocation-lean.
///
/// One behavioral fix relative to the historical code is included: the
/// per-round convergence check compares origin_datacenter too, so an origin
/// flip with unchanged path/next-hops still triggers another round instead
/// of leaving regional-spine hairpin suppression acting on a stale origin.
///
/// Internally this oracle deliberately keeps the pre-compaction
/// representation — every entry owns its AS-path and next-hop vectors on
/// the heap — and converts to the interned/arena-backed Rib only at the
/// rib()/fib() boundary. That keeps the oracle independent of the compact
/// machinery it is used to validate (a PathTable or arena bug cannot
/// silently cancel out on both sides of a differential comparison), and
/// gives bench_scale a faithful replica of the old per-entry-vector memory
/// layout to measure against.
class ReferenceBgpSimulator {
 public:
  explicit ReferenceBgpSimulator(const topo::Topology& topology,
                                 const topo::FaultInjector* faults = nullptr);

  /// The converged RIB of a device, materialized into the canonical compact
  /// representation for direct comparison with BgpSimulator::rib().
  /// AS-paths are interned into the global PathTable on the way out.
  [[nodiscard]] Rib rib(topo::DeviceId device) const;

  /// The FIB programmed from the RIB, with device-level FIB faults applied.
  [[nodiscard]] ForwardingTable fib(topo::DeviceId device) const;

  /// Number of synchronous rounds until convergence.
  [[nodiscard]] int rounds() const { return rounds_; }

  /// Resident bytes of the converged route state in this oracle's
  /// heap-per-entry representation (entry records plus owned path/hop
  /// vector capacities). The pre-compaction baseline for bench_scale's
  /// bytes-per-device comparison.
  [[nodiscard]] std::size_t route_state_bytes() const;

 private:
  /// Pre-compaction RIB entry: owns its vectors. What every RibEntry used
  /// to look like before path interning and hop arenas.
  struct HeapEntry {
    std::vector<topo::Asn> as_path;
    std::vector<topo::DeviceId> next_hops;
    bool connected = false;
    topo::DatacenterId origin_datacenter = 0;

    friend bool operator==(const HeapEntry&, const HeapEntry&) = default;
  };

  using MapRib = std::map<net::Prefix, HeapEntry>;

  void run();

  const topo::Topology* topology_;
  const topo::FaultInjector* faults_;
  std::vector<MapRib> ribs_;  // indexed by device id
  int rounds_ = 0;
};

}  // namespace dcv::routing
