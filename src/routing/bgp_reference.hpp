#pragma once

#include <map>
#include <vector>

#include "routing/bgp_sim.hpp"

namespace dcv::routing {

/// The original Jacobi-style EBGP simulator, retained verbatim as the
/// correctness oracle and performance baseline for the worklist engine in
/// BgpSimulator: every round recomputes every device from the previous
/// round's full state and deep-copies the whole network's RIBs. Routing
/// policy (§2.1) and fault handling are identical to BgpSimulator — the
/// differential test suite pins the two engines to byte-equal RIBs and
/// FIBs — but nothing here is incremental, parallel, or allocation-lean.
///
/// One behavioral fix relative to the historical code is included: the
/// per-round convergence check compares origin_datacenter too (via
/// RibEntry::operator==), so an origin flip with unchanged path/next-hops
/// still triggers another round instead of leaving regional-spine hairpin
/// suppression acting on a stale origin.
class ReferenceBgpSimulator {
 public:
  explicit ReferenceBgpSimulator(const topo::Topology& topology,
                                 const topo::FaultInjector* faults = nullptr);

  /// The converged RIB of a device, materialized into the canonical flat
  /// representation for direct comparison with BgpSimulator::rib().
  [[nodiscard]] Rib rib(topo::DeviceId device) const;

  /// The FIB programmed from the RIB, with device-level FIB faults applied.
  [[nodiscard]] ForwardingTable fib(topo::DeviceId device) const;

  /// Number of synchronous rounds until convergence.
  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  using MapRib = std::map<net::Prefix, RibEntry>;

  void run();

  const topo::Topology* topology_;
  const topo::FaultInjector* faults_;
  std::vector<MapRib> ribs_;  // indexed by device id
  int rounds_ = 0;
};

}  // namespace dcv::routing
