#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "net/prefix.hpp"
#include "topology/device.hpp"

namespace dcv::routing {

/// A single FIB entry: destination prefix plus the set of ECMP next hops.
/// Next hops are stored as sorted, deduplicated device ids.
struct Rule {
  net::Prefix prefix;
  std::vector<topo::DeviceId> next_hops;

  /// True for locally-attached destinations (a ToR's own VLAN prefix):
  /// traffic is delivered below this device rather than forwarded to a
  /// routing next hop.
  bool connected = false;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Rule&, const Rule&) = default;
};

/// The forwarding information base of one device (§2.2): rules sorted by
/// descending prefix length (canonical longest-prefix-match order), with
/// deterministic tie-breaking by prefix value.
///
/// This is the "reality" object of the paper: everything RCDC checks is a
/// function of per-device ForwardingTables plus contracts.
class ForwardingTable {
 public:
  ForwardingTable() = default;

  /// Adds a rule. Next hops are sorted and deduplicated; inserting a second
  /// rule with the same prefix replaces the first (a FIB has at most one
  /// entry per prefix).
  void add(Rule rule);

  /// Longest-prefix-match lookup (Definition 2.1). Returns nullptr when no
  /// rule matches — i.e. the packet is dropped. Note a default route, when
  /// present, matches everything.
  [[nodiscard]] const Rule* lookup(net::Ipv4Address destination) const;

  /// The rule for exactly this prefix, if present.
  [[nodiscard]] const Rule* find(const net::Prefix& prefix) const;

  /// The 0.0.0.0/0 entry, if present.
  [[nodiscard]] const Rule* default_route() const {
    return find(net::Prefix::default_route());
  }

  /// Rules in canonical order: descending prefix length, then prefix value.
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }

  friend bool operator==(const ForwardingTable&,
                         const ForwardingTable&) = default;

 private:
  std::vector<Rule> rules_;
};

/// Canonicalizes a next-hop set: sorted ascending, duplicates removed.
inline void canonicalize(std::vector<topo::DeviceId>& next_hops) {
  std::sort(next_hops.begin(), next_hops.end());
  next_hops.erase(std::unique(next_hops.begin(), next_hops.end()),
                  next_hops.end());
}

std::ostream& operator<<(std::ostream& os, const Rule& rule);

}  // namespace dcv::routing
