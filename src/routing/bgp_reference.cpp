#include "routing/bgp_reference.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "net/error.hpp"

namespace dcv::routing {

namespace {

/// A route as received from one neighbor: the neighbor id and the AS-path
/// the neighbor advertised (neighbor's ASN first).
struct Candidate {
  topo::DeviceId neighbor = topo::kInvalidDevice;
  std::vector<topo::Asn> as_path;
  topo::DatacenterId origin_datacenter = 0;
};

bool is_private_asn(topo::Asn asn) {
  return BgpSimulator::is_private_asn(asn);
}

}  // namespace

ReferenceBgpSimulator::ReferenceBgpSimulator(const topo::Topology& topology,
                                             const topo::FaultInjector* faults)
    : topology_(&topology), faults_(faults) {
  ribs_.resize(topology.device_count());
  run();
}

Rib ReferenceBgpSimulator::rib(topo::DeviceId device) const {
  if (device >= ribs_.size()) throw InvalidArgument("bad device id");
  PathTable& table = global_path_table();
  Rib rib;
  rib.reserve(ribs_[device].size(), 0);
  for (const auto& [prefix, entry] : ribs_[device]) {
    rib.append(prefix, table.intern(entry.as_path), entry.next_hops,
               entry.connected, entry.origin_datacenter);
  }
  return rib;  // std::map iterates in prefix order: already sorted
}

ForwardingTable ReferenceBgpSimulator::fib(topo::DeviceId device) const {
  return program_fib(rib(device), faults_, device);
}

std::size_t ReferenceBgpSimulator::route_state_bytes() const {
  std::size_t total = ribs_.capacity() * sizeof(MapRib);
  for (const MapRib& rib : ribs_) {
    for (const auto& [prefix, entry] : rib) {
      // One red-black tree node per entry (key + value + ~3 pointers and
      // color, as libstdc++ lays it out) plus the two owned heap vectors.
      total += sizeof(net::Prefix) + sizeof(HeapEntry) +
               4 * sizeof(void*);
      total += entry.as_path.capacity() * sizeof(topo::Asn);
      total += entry.next_hops.capacity() * sizeof(topo::DeviceId);
    }
  }
  return total;
}

void ReferenceBgpSimulator::run() {
  const auto& devices = topology_->devices();

  // Locally originated routes: ToRs originate their hosted VLAN prefixes,
  // regional spines originate the default route (§2.1).
  for (const topo::Device& d : devices) {
    if (d.role == topo::DeviceRole::kTor) {
      for (const net::Prefix& p : d.hosted_prefixes) {
        ribs_[d.id][p] = HeapEntry{.as_path = {},
                                   .next_hops = {},
                                   .connected = true,
                                   .origin_datacenter = d.datacenter};
      }
    } else if (d.role == topo::DeviceRole::kRegionalSpine) {
      const auto def = net::Prefix::default_route();
      ribs_[d.id][def] = HeapEntry{.as_path = {},
                                   .next_hops = {},
                                   .connected = true,
                                   .origin_datacenter = topo::kNoDatacenter};
    }
  }

  // What `from` advertises about `entry` across the session to `to`, or
  // nullopt if its export policy suppresses the route.
  const auto export_path =
      [&](const topo::Device& from, const topo::Device& to,
          const HeapEntry& entry) -> std::optional<std::vector<topo::Asn>> {
    std::vector<topo::Asn> path;
    if (entry.connected) {
      path = {from.asn};
    } else {
      path = entry.as_path;  // already begins with from.asn
    }
    if (from.role == topo::DeviceRole::kRegionalSpine) {
      // Never hairpin a datacenter's own routes back into it.
      if (entry.origin_datacenter != topo::kNoDatacenter &&
          to.datacenter == entry.origin_datacenter) {
        return std::nullopt;
      }
      // Strip private ASNs from the relayed tail (§2.1) so that private-ASN
      // reuse across datacenters cannot cause loop-prevention rejections.
      std::vector<topo::Asn> stripped;
      stripped.push_back(path.front());
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (!is_private_asn(path[i])) stripped.push_back(path[i]);
      }
      path = std::move(stripped);
    }
    return path;
  };

  // Whether `to` accepts an announcement of `prefix` with the given path.
  const auto import_ok = [&](const topo::Device& to, const net::Prefix& prefix,
                             const std::vector<topo::Asn>& path) -> bool {
    if (faults_ != nullptr && prefix.is_default() &&
        faults_->device_has_fault(
            to.id, topo::DeviceFaultKind::kRejectDefaultRoute)) {
      return false;  // route-map misconfiguration (§2.6.2 "Policy Errors")
    }
    if (to.role == topo::DeviceRole::kTor) {
      // ToR upstream sessions accept paths containing the (reused) ToR ASN
      // of a sibling rack (§2.1); path lengths still rule such routes out of
      // best-path selection, so this cannot loop.
      return true;
    }
    if (to.role == topo::DeviceRole::kRegionalSpine) {
      // Tier-peer rule: never re-import a route that already traversed the
      // regional layer (keeps regionals on their own originated default and
      // forbids regional-spine valleys).
      for (const topo::Asn asn : path) {
        if (!is_private_asn(asn)) return false;
      }
      return true;
    }
    return std::find(path.begin(), path.end(), to.asn) == path.end();
  };

  bool changed = true;
  rounds_ = 0;
  // Convergence is bounded by the network diameter; the cap is a safety net.
  constexpr int kMaxRounds = 64;
  while (changed && rounds_ < kMaxRounds) {
    ++rounds_;
    changed = false;
    std::vector<MapRib> next = ribs_;

    for (const topo::Device& d : devices) {
      std::unordered_map<net::Prefix, std::vector<Candidate>> candidates;
      for (const topo::LinkId lid : topology_->links_of(d.id)) {
        const topo::Link& link = topology_->link(lid);
        if (!link.usable()) continue;
        const topo::Device& n = topology_->device(link.other(d.id));
        for (const auto& [prefix, entry] : ribs_[n.id]) {
          const auto path = export_path(n, d, entry);
          if (!path) continue;
          if (!import_ok(d, prefix, *path)) continue;
          candidates[prefix].push_back(
              Candidate{.neighbor = n.id,
                        .as_path = *path,
                        .origin_datacenter = entry.origin_datacenter});
        }
      }

      MapRib rib;
      // Locally originated entries always win.
      for (const auto& [prefix, entry] : ribs_[d.id]) {
        if (entry.connected) rib[prefix] = entry;
      }
      for (auto& [prefix, cands] : candidates) {
        if (rib.contains(prefix)) continue;
        std::size_t best_len = SIZE_MAX;
        for (const Candidate& c : cands) {
          best_len = std::min(best_len, c.as_path.size());
        }
        std::vector<topo::DeviceId> next_hops;
        const std::vector<topo::Asn>* chosen = nullptr;
        topo::DatacenterId origin = 0;
        for (const Candidate& c : cands) {
          if (c.as_path.size() != best_len) continue;
          next_hops.push_back(c.neighbor);
          if (chosen == nullptr || c.as_path < *chosen) {
            chosen = &c.as_path;
            origin = c.origin_datacenter;
          }
        }
        canonicalize(next_hops);
        std::vector<topo::Asn> as_path;
        as_path.reserve(chosen->size() + 1);
        as_path.push_back(d.asn);
        as_path.insert(as_path.end(), chosen->begin(), chosen->end());
        rib[prefix] = HeapEntry{.as_path = std::move(as_path),
                                .next_hops = std::move(next_hops),
                                .connected = false,
                                .origin_datacenter = origin};
      }

      // HeapEntry::operator== includes origin_datacenter — the historical
      // comparison omitted it and could converge on stale origins.
      if (rib != ribs_[d.id]) changed = true;
      next[d.id] = std::move(rib);
    }
    ribs_ = std::move(next);
  }
}

}  // namespace dcv::routing
