#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "routing/fib.hpp"
#include "topology/faults.hpp"
#include "topology/topology.hpp"

namespace dcv::routing {

/// One RIB entry: the selected best routes for a prefix under EBGP
/// shortest-AS-path selection with ECMP across equally-good neighbors.
struct RibEntry {
  net::Prefix prefix;
  /// AS-path of the selected route(s), own ASN first. Empty for locally
  /// originated (connected) prefixes.
  std::vector<topo::Asn> as_path;
  /// Neighbors offering the best path; empty for connected prefixes.
  std::vector<topo::DeviceId> next_hops;
  bool connected = false;
  /// Datacenter where the route originated; kNoDatacenter for the default
  /// route (originated by regional spines). Regional spines use this to
  /// avoid relaying a datacenter's own routes back into it.
  topo::DatacenterId origin_datacenter = 0;
};

/// The routing information base of one device: prefix -> selected routes.
using Rib = std::map<net::Prefix, RibEntry>;

/// A synchronous-round EBGP route-propagation simulator implementing the
/// routing design of §2.1:
///
///  * every link carries one EBGP session; routes flow only over usable
///    sessions;
///  * ToRs originate their hosted VLAN prefixes; regional spines originate
///    the default route 0.0.0.0/0;
///  * best-path selection is shortest AS-path with ECMP across all
///    neighbors advertising an equally short path;
///  * loop prevention rejects announcements carrying the receiver's own
///    ASN — except on ToR upstream sessions, which are configured to accept
///    paths containing the (reused) ToR ASN of a sibling rack (§2.1);
///  * regional spines strip private ASNs from relayed paths;
///  * no route aggregation anywhere (§2.1).
///
/// Device-level faults from a FaultInjector are honored: a device with
/// kRejectDefaultRoute drops default announcements at import; FIB-programming
/// faults (kRibFibInconsistency, kEcmpSingleNextHop) distort fib() output
/// while leaving the RIB intact, reproducing §2.6.2's software bugs.
class BgpSimulator {
 public:
  /// Runs propagation to a fixpoint over the topology's *current* link and
  /// session state. `faults` may be null (no device-level faults).
  /// `metrics`, when non-null, receives one dcv_bgp_convergence_rounds
  /// sample and the dcv_bgp_routes_propagated_total count of accepted
  /// candidate announcements for this run.
  explicit BgpSimulator(const topo::Topology& topology,
                        const topo::FaultInjector* faults = nullptr,
                        obs::MetricsRegistry* metrics = nullptr);

  /// The converged RIB of a device.
  [[nodiscard]] const Rib& rib(topo::DeviceId device) const;

  /// The FIB programmed from the RIB, with any device-level FIB faults
  /// applied. Connected (locally hosted) prefixes are included as connected
  /// rules.
  [[nodiscard]] ForwardingTable fib(topo::DeviceId device) const;

  /// Number of synchronous rounds until convergence.
  [[nodiscard]] int rounds() const { return rounds_; }

  /// True if `asn` falls in the private-use range stripped by regional
  /// spines (we treat 64500..65535 as the datacenter-private range; the
  /// regional tier itself uses ASNs below that range).
  static bool is_private_asn(topo::Asn asn) {
    return asn >= 64500 && asn <= 65535;
  }

 private:
  void run(obs::MetricsRegistry* metrics);

  const topo::Topology* topology_;
  const topo::FaultInjector* faults_;
  std::vector<Rib> ribs_;  // indexed by device id
  int rounds_ = 0;
};

}  // namespace dcv::routing
