#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "routing/fib.hpp"
#include "routing/path_table.hpp"
#include "topology/faults.hpp"
#include "topology/topology.hpp"

namespace dcv::routing {

/// One RIB entry: the selected best routes for a prefix under EBGP
/// shortest-AS-path selection with ECMP across equally-good neighbors.
///
/// Memory-compact representation: the AS-path is a 32-bit PathId into the
/// process-wide hash-consed PathTable (paths are massively shared across
/// devices and prefixes), and the next-hop list is an (offset, count)
/// reference into the owning Rib's shared hop arena — lists of up to
/// kInlineHops device ids are stored directly in the entry. A 100k-device
/// fabric's route state is therefore one ~28-byte record per route plus
/// one contiguous arena per device, instead of two heap vectors per route.
struct RibEntry {
  /// Lists at most this long live inline in hop_words.
  static constexpr std::uint16_t kInlineHops = 2;

  net::Prefix prefix;
  /// AS-path of the selected route(s), own ASN first, interned in
  /// global_path_table(). kEmptyPathId for locally originated (connected)
  /// prefixes.
  PathId path = kEmptyPathId;
  /// Inline next hops (hop_count <= kInlineHops), or {arena offset, unused}
  /// for longer lists. Resolve through Rib::next_hops().
  std::array<topo::DeviceId, kInlineHops> hop_words{};
  std::uint16_t hop_count = 0;
  bool connected = false;
  /// Datacenter where the route originated; kNoDatacenter for the default
  /// route (originated by regional spines). Regional spines use this to
  /// avoid relaying a datacenter's own routes back into it. Part of entry
  /// equality: an origin flip must re-trigger propagation even when path
  /// and next hops are unchanged, or hairpin suppression acts on stale
  /// origins.
  topo::DatacenterId origin_datacenter = 0;

  /// The interned AS-path contents (own ASN first; empty for connected
  /// prefixes). One global table serves every Rib, so this needs no
  /// owning-Rib context.
  [[nodiscard]] std::span<const topo::Asn> as_path() const {
    return global_path_table().view(path);
  }

  /// True when the hop list is stored inline rather than in the arena.
  [[nodiscard]] bool hops_inline() const { return hop_count <= kInlineHops; }

  // Entries do not define operator==: next-hop references are only
  // meaningful relative to the owning Rib's arena. Compare through
  // Rib::entry_equal() (or Rib::operator== for whole tables).
  friend bool operator==(const RibEntry&, const RibEntry&) = delete;
};

/// The routing information base of one device: RibEntry records in a flat
/// vector sorted by prefix (binary-search lookups, cache-friendly scans),
/// with all out-of-line next-hop lists packed into one shared arena — a
/// Rib is at most two contiguous allocations regardless of route count.
class Rib {
 public:
  using const_iterator = std::vector<RibEntry>::const_iterator;

  Rib() = default;

  /// The entry for exactly this prefix, or nullptr.
  [[nodiscard]] const RibEntry* find(const net::Prefix& prefix) const;
  /// The entry for exactly this prefix; throws InvalidArgument if absent.
  [[nodiscard]] const RibEntry& at(const net::Prefix& prefix) const;
  [[nodiscard]] bool contains(const net::Prefix& prefix) const {
    return find(prefix) != nullptr;
  }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<RibEntry>& entries() const {
    return entries_;
  }

  /// The next-hop list of an entry *of this Rib* (sorted, deduplicated;
  /// empty for connected prefixes). The span borrows entry or arena
  /// storage and is valid until the Rib is mutated.
  [[nodiscard]] std::span<const topo::DeviceId> next_hops(
      const RibEntry& entry) const {
    if (entry.hops_inline()) return {entry.hop_words.data(), entry.hop_count};
    return {arena_.data() + entry.hop_words[0], entry.hop_count};
  }

  // -- Building --------------------------------------------------------------

  /// Drops all entries and hop storage, retaining both capacities — a
  /// cleared Rib rebuilds without allocating (pinned by the arena-reuse
  /// property test).
  void clear() {
    entries_.clear();
    arena_.clear();
  }
  void reserve(std::size_t entries, std::size_t arena_hops) {
    entries_.reserve(entries);
    arena_.reserve(arena_hops);
  }
  /// Appends an entry, copying `hops` inline or into the arena. Entries may
  /// be appended in any order; call sort_by_prefix() before lookups if the
  /// append order was not already canonical.
  void append(const net::Prefix& prefix, PathId path,
              std::span<const topo::DeviceId> hops, bool connected,
              topo::DatacenterId origin_datacenter);
  /// Appends a copy of `entry` (owned by `source`), re-homing its hop list
  /// into this Rib's arena.
  void append_from(const Rib& source, const RibEntry& entry) {
    append(entry.prefix, entry.path, source.next_hops(entry), entry.connected,
           entry.origin_datacenter);
  }
  /// Sorts entries into canonical ascending-prefix order. Hop references
  /// travel with their entries; the arena is not reordered.
  void sort_by_prefix();

  /// Content equality of one entry across (possibly different) owning Ribs:
  /// prefix, AS-path (by PathId — the shared global table makes id equality
  /// content equality), connected flag, origin, and next-hop contents.
  [[nodiscard]] static bool entry_equal(const Rib& ra, const RibEntry& a,
                                        const Rib& rb, const RibEntry& b) {
    if (a.prefix != b.prefix || a.path != b.path ||
        a.connected != b.connected ||
        a.origin_datacenter != b.origin_datacenter ||
        a.hop_count != b.hop_count) {
      return false;
    }
    const std::span<const topo::DeviceId> ha = ra.next_hops(a);
    const std::span<const topo::DeviceId> hb = rb.next_hops(b);
    return std::equal(ha.begin(), ha.end(), hb.begin());
  }

  /// Whole-table content equality (same prefixes in order, equal entries).
  friend bool operator==(const Rib& a, const Rib& b) {
    if (a.entries_.size() != b.entries_.size()) return false;
    for (std::size_t i = 0; i < a.entries_.size(); ++i) {
      if (!entry_equal(a, a.entries_[i], b, b.entries_[i])) return false;
    }
    return true;
  }

  /// Raw storage of a Rib: the entry records plus the shared hop arena.
  /// release()/from_sorted() move it wholesale so the worklist commit can
  /// splice state between Ribs without reallocating either buffer.
  struct Storage {
    std::vector<RibEntry> entries;
    std::vector<topo::DeviceId> arena;
  };
  [[nodiscard]] Storage release() && {
    return Storage{std::move(entries_), std::move(arena_)};
  }
  /// Adopts storage whose entries are already in canonical prefix order
  /// with hop references valid against the accompanying arena.
  [[nodiscard]] static Rib from_sorted(Storage storage) {
    Rib rib;
    rib.entries_ = std::move(storage.entries);
    rib.arena_ = std::move(storage.arena);
    return rib;
  }

  /// Resident bytes of this Rib's own storage (capacities, not sizes —
  /// what the allocator is actually holding).
  [[nodiscard]] std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(RibEntry) +
           arena_.capacity() * sizeof(topo::DeviceId);
  }

 private:
  std::vector<RibEntry> entries_;
  std::vector<topo::DeviceId> arena_;
};

/// Programs a FIB from converged RIB entries, applying the device-level
/// FIB-programming faults of §2.6.2 (kRibFibInconsistency,
/// kEcmpSingleNextHop). Shared by the worklist engine and the retained
/// reference implementation.
[[nodiscard]] ForwardingTable program_fib(const Rib& rib,
                                          const topo::FaultInjector* faults,
                                          topo::DeviceId device);

/// Tuning knobs of the worklist engine. The converged result is identical
/// at every thread count: workers read the previous round's state and write
/// per-device results, and best-path selection is order-independent.
struct BgpSimOptions {
  /// Worker threads for frontier processing; 0 picks a hardware default.
  unsigned threads = 0;
  /// Frontiers smaller than this are processed inline on the calling
  /// thread — warm reconvergence frontiers are usually a handful of
  /// devices, where handing work to the pool costs more than the work.
  std::size_t parallel_threshold = 32;
};

/// A synchronous-round EBGP route-propagation simulator implementing the
/// routing design of §2.1:
///
///  * every link carries one EBGP session; routes flow only over usable
///    sessions;
///  * ToRs originate their hosted VLAN prefixes; regional spines originate
///    the default route 0.0.0.0/0;
///  * best-path selection is shortest AS-path with ECMP across all
///    neighbors advertising an equally short path;
///  * loop prevention rejects announcements carrying the receiver's own
///    ASN — except on ToR upstream sessions, which are configured to accept
///    paths containing the (reused) ToR ASN of a sibling rack (§2.1);
///  * regional spines strip private ASNs from relayed paths;
///  * no route aggregation anywhere (§2.1).
///
/// Device-level faults from a FaultInjector are honored: a device with
/// kRejectDefaultRoute drops default announcements at import; FIB-programming
/// faults (kRibFibInconsistency, kEcmpSingleNextHop) distort fib() output
/// while leaving the RIB intact, reproducing §2.6.2's software bugs.
///
/// Unlike the retained ReferenceBgpSimulator (Jacobi full recompute with a
/// whole-network copy per round), this engine is worklist-driven: a round
/// reprocesses only the dirty frontier — devices with at least one neighbor
/// whose RIB changed in the previous round — and double-buffers only those
/// devices' results. Frontiers are processed in parallel; candidate
/// collection borrows AS-path storage from the global PathTable (immutable,
/// append-only) and per-worker memo tables turn repeat rewrites
/// (private-ASN stripping, own-ASN prepends, connected originations) into
/// one hash probe with no lock traffic, so the steady loop allocates
/// nothing per announcement. ReferenceBgpSimulator equivalence is pinned by
/// the differential test suite.
class BgpSimulator {
 public:
  /// Runs propagation to a fixpoint over the topology's *current* link and
  /// session state. `faults` may be null (no device-level faults).
  /// `metrics`, when non-null, receives dcv_bgp_* series for this run and
  /// every later reconverge().
  explicit BgpSimulator(const topo::Topology& topology,
                        const topo::FaultInjector* faults = nullptr,
                        obs::MetricsRegistry* metrics = nullptr,
                        BgpSimOptions options = {});
  ~BgpSimulator();

  BgpSimulator(const BgpSimulator&) = delete;
  BgpSimulator& operator=(const BgpSimulator&) = delete;

  /// Warm-start reconvergence: diffs the topology's current link/session
  /// usability, ASN assignments, hosted prefixes and device-fault state
  /// against a snapshot taken at the last convergence, seeds the worklist
  /// from exactly the changed devices, and propagates deltas to a new
  /// fixpoint. Equivalent to (but much cheaper than) a cold rerun on the
  /// mutated topology; if the device/link sets themselves changed, it
  /// falls back to a cold full run. Returns the rounds taken (0 when
  /// nothing changed). Not thread-safe against concurrent rib()/fib().
  int reconverge();

  /// The converged RIB of a device.
  [[nodiscard]] const Rib& rib(topo::DeviceId device) const;

  /// The FIB programmed from the RIB, with any device-level FIB faults
  /// applied. Connected (locally hosted) prefixes are included as connected
  /// rules. Materialized once and cached; reconverge() invalidates only the
  /// devices whose RIB (or FIB-fault state) actually changed, so steady
  /// monitoring cycles stop rebuilding ForwardingTables. Safe to call
  /// concurrently.
  [[nodiscard]] const ForwardingTable& fib(topo::DeviceId device) const;

  /// Number of synchronous rounds of the most recent convergence (the
  /// initial cold run, or the latest reconverge()).
  [[nodiscard]] int rounds() const { return rounds_; }

  /// Drains the set of devices whose RIB or FIB-programming state changed
  /// since the previous take_changed_devices() call (construction counts
  /// every device). The warm-precheck session uses this to bound
  /// revalidation to the devices a change could have touched. Sorted,
  /// deduplicated. Call only from the mutating thread (same contract as
  /// reconverge()).
  [[nodiscard]] std::vector<topo::DeviceId> take_changed_devices();

  /// Resident bytes of the converged route state: every device's Rib
  /// storage plus this simulator's bookkeeping vectors (FIB caches and
  /// interned paths are accounted separately). Basis of bench_scale's
  /// bytes-per-device metric.
  [[nodiscard]] std::size_t route_state_bytes() const;

  /// True if `asn` falls in the private-use range stripped by regional
  /// spines (we treat 64500..65535 as the datacenter-private range; the
  /// regional tier itself uses ASNs below that range).
  static bool is_private_asn(topo::Asn asn) {
    return asn >= 64500 && asn <= 65535;
  }

 private:
  struct WorkerState;
  struct WorkerPool;

  void cold_run();
  /// Runs the worklist to a fixpoint from the given seed frontier;
  /// returns rounds taken and marks changed devices' FIB caches dirty.
  int run_worklist(std::vector<topo::DeviceId> frontier);
  /// Recomputes a device's routes. In the seed round (`dirty == nullptr`)
  /// the whole RIB is recomputed and `out` receives it in full; in later
  /// rounds only the globally dirty prefixes (sorted) are recomputed —
  /// selection is per-prefix independent, so entries for clean prefixes
  /// cannot have changed — and `out` receives just those entries, which
  /// the commit splices over the previous state. Returns true iff the
  /// device's RIB changed (false leaves `out` untouched).
  bool process_device(const topo::Device& device, WorkerState& state,
                      Rib& out,
                      const std::vector<net::Prefix>* dirty) const;
  void snapshot_state();
  /// Diffs current topology/fault state against the snapshot into a seed
  /// frontier; returns false if the expected shape changed (cold rerun
  /// needed). Devices whose FIB-only fault state flipped get their cached
  /// table invalidated here.
  bool diff_state(std::vector<topo::DeviceId>& seeds);
  void invalidate_fib(topo::DeviceId device);
  void publish_metrics(int rounds, bool warm);

  const topo::Topology* topology_;
  const topo::FaultInjector* faults_;
  obs::MetricsRegistry* metrics_;
  BgpSimOptions options_;
  std::vector<Rib> ribs_;  // indexed by device id
  int rounds_ = 0;

  // Instruments resolved once from metrics_ (null when metrics_ is null).
  obs::Histogram* rounds_hist_ = nullptr;
  obs::Histogram* reconverge_hist_ = nullptr;
  obs::Histogram* frontier_hist_ = nullptr;
  obs::Counter* routes_counter_ = nullptr;
  obs::Gauge* paths_gauge_ = nullptr;
  obs::Counter* fib_rebuilds_ = nullptr;
  obs::Counter* fib_hits_ = nullptr;

  // Per-worker scratch (candidate buffers, rewrite memos); index 0 doubles
  // as the inline/single-thread state. The pool is created lazily on the
  // first frontier large enough to split.
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::unique_ptr<WorkerPool> pool_;

  // Commit-side scratch Rib recycled across partial merges so steady-state
  // commits stop allocating (single-threaded use only).
  Rib merge_scratch_;

  // Snapshot of everything route-affecting, diffed by reconverge().
  std::vector<std::uint8_t> snap_link_usable_;
  std::vector<std::uint8_t> snap_reject_default_;
  std::vector<std::uint8_t> snap_fib_fault_;
  std::vector<topo::Asn> snap_asn_;
  std::vector<std::vector<net::Prefix>> snap_hosted_;

  // Lazily materialized per-device FIBs, striped locks for concurrent
  // fetches.
  mutable std::vector<std::unique_ptr<ForwardingTable>> fib_cache_;
  mutable std::array<std::mutex, 64> fib_locks_;

  // Devices invalidated since the last take_changed_devices() drain
  // (mark vector dedups; touched only on the mutating thread).
  std::vector<std::uint8_t> changed_mark_;
  std::vector<topo::DeviceId> changed_list_;
};

}  // namespace dcv::routing
