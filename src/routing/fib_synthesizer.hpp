#pragma once

#include "routing/fib.hpp"
#include "topology/metadata.hpp"

namespace dcv::routing {

/// Produces the FIB that EBGP propagation converges to on a *fault-free*
/// structured datacenter, directly from architecture metadata in
/// O(prefixes) per device and O(1) extra memory.
///
/// This serves two purposes:
///  * it is the closed-form statement of the routing intent (§2.3) from
///    which contracts derive — for a healthy network, FibSynthesizer output
///    and ContractGenerator expectations coincide by construction;
///  * it lets benchmarks stream realistic converged FIBs for 10^4-router
///    datacenters without paying for full route propagation, the same way
///    the paper's synthetic-benchmark topology generator does (§2.6.3).
///
/// Equivalence with BgpSimulator on fault-free topologies is asserted by
/// integration tests. For faulty networks use BgpSimulator: synthesis is
/// only meaningful for the converged healthy state.
class FibSynthesizer {
 public:
  explicit FibSynthesizer(const topo::MetadataService& metadata)
      : metadata_(&metadata) {}

  /// The converged fault-free FIB of one device.
  [[nodiscard]] ForwardingTable fib(topo::DeviceId device) const;

 private:
  const topo::MetadataService* metadata_;
};

}  // namespace dcv::routing
