#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "routing/fib.hpp"
#include "topology/topology.hpp"

namespace dcv::routing {

/// The synthetic management address of a device, used when rendering
/// routing tables as text ("via <address>") and when resolving parsed
/// next hops back to devices. Devices are numbered within 172.16.0.0/12.
[[nodiscard]] net::Ipv4Address device_address(topo::DeviceId device);

/// A routing-table entry as read from device output, before next-hop
/// addresses are resolved to devices.
struct ParsedRoute {
  net::Prefix prefix;
  bool connected = false;
  std::vector<net::Ipv4Address> via;
};

/// A parsed device routing table (Figure 2 format).
struct ParsedRoutingTable {
  std::string vrf = "default";
  std::vector<ParsedRoute> routes;
};

/// Renders a FIB in the style of Figure 2:
///
///   VRF name: default
///   Codes: C - connected, B E - eBGP
///   B E 0.0.0.0/0 [200/0] via 172.16.0.13
///                         via 172.16.0.14
///   C 10.0.0.0/24 directly connected
[[nodiscard]] std::string write_routing_table(const ForwardingTable& fib);

/// Parses text in the format produced by write_routing_table (tolerant of
/// the decorations in Figure 2: code legend lines, gateway-of-last-resort
/// banner, administrative distances). Throws dcv::ParseError on malformed
/// route lines.
[[nodiscard]] ParsedRoutingTable parse_routing_table(std::string_view text);

/// Resolves parsed next-hop addresses to device ids via device_address().
/// Throws dcv::ParseError if an address does not map to a device of the
/// topology.
[[nodiscard]] ForwardingTable to_forwarding_table(
    const ParsedRoutingTable& parsed, const topo::Topology& topology);

}  // namespace dcv::routing
