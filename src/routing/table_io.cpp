#include "routing/table_io.hpp"

#include <sstream>

#include "net/error.hpp"

namespace dcv::routing {

net::Ipv4Address device_address(topo::DeviceId device) {
  return net::Ipv4Address(net::Ipv4Address::from_octets(172, 16, 0, 0).value() +
                          device + 1);
}

std::string write_routing_table(const ForwardingTable& fib) {
  std::ostringstream out;
  out << "VRF name: default\n";
  out << "Codes: C - connected, S - static, B E - eBGP\n";
  if (const Rule* def = fib.default_route(); def != nullptr) {
    out << "Gateway of last resort:\n";
  }
  for (const Rule& rule : fib.rules()) {
    if (rule.connected) {
      out << "C " << rule.prefix.to_string() << " directly connected\n";
      continue;
    }
    out << "B E " << rule.prefix.to_string() << " [200/0]";
    bool first = true;
    for (const topo::DeviceId hop : rule.next_hops) {
      if (first) {
        out << " via " << device_address(hop).to_string() << "\n";
        first = false;
      } else {
        out << "      via " << device_address(hop).to_string() << "\n";
      }
    }
    if (first) out << " drop\n";  // no next hops programmed
  }
  return out.str();
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Extracts the next whitespace-delimited token, advancing `s` past it.
std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const auto token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

}  // namespace

ParsedRoutingTable parse_routing_table(std::string_view text) {
  ParsedRoutingTable table;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "VRF name:")) {
      table.vrf = std::string(trim(line.substr(9)));
      continue;
    }
    if (starts_with(line, "Codes:") || starts_with(line, "Gateway of")) {
      continue;
    }
    if (starts_with(line, "via ")) {
      // Continuation line: additional ECMP next hop of the previous route.
      if (table.routes.empty()) {
        throw ParseError("continuation 'via' before any route line");
      }
      auto rest = line.substr(4);
      table.routes.back().via.push_back(
          net::Ipv4Address::parse(std::string(trim(rest))));
      continue;
    }
    if (starts_with(line, "C ")) {
      auto rest = line.substr(2);
      const auto prefix_token = next_token(rest);
      table.routes.push_back(
          ParsedRoute{.prefix = net::Prefix::parse(prefix_token),
                      .connected = true,
                      .via = {}});
      continue;
    }
    if (starts_with(line, "B E ")) {
      auto rest = line.substr(4);
      const auto prefix_token = next_token(rest);
      ParsedRoute route{.prefix = net::Prefix::parse(prefix_token),
                        .connected = false,
                        .via = {}};
      // Remaining tokens: optional "[adm/metric]", then "via <addr>" or
      // "drop".
      while (true) {
        const auto token = next_token(rest);
        if (token.empty()) break;
        if (token.front() == '[') continue;  // administrative distance
        if (token == "drop") break;
        if (token == "via") {
          const auto addr = next_token(rest);
          // Tolerate trailing commas as in real device output.
          auto cleaned = addr;
          if (!cleaned.empty() && cleaned.back() == ',') {
            cleaned.remove_suffix(1);
          }
          route.via.push_back(net::Ipv4Address::parse(cleaned));
          continue;
        }
        throw ParseError("unexpected token '" + std::string(token) +
                         "' in route line");
      }
      table.routes.push_back(std::move(route));
      continue;
    }
    throw ParseError("unrecognized routing-table line: '" +
                     std::string(line) + "'");
  }
  return table;
}

ForwardingTable to_forwarding_table(const ParsedRoutingTable& parsed,
                                    const topo::Topology& topology) {
  const std::uint32_t base =
      net::Ipv4Address::from_octets(172, 16, 0, 0).value();
  ForwardingTable fib;
  for (const ParsedRoute& route : parsed.routes) {
    Rule rule{.prefix = route.prefix,
              .next_hops = {},
              .connected = route.connected};
    for (const net::Ipv4Address via : route.via) {
      const std::uint64_t offset = std::uint64_t{via.value()} - base;
      if (via.value() < base || offset == 0 ||
          offset > topology.device_count()) {
        throw ParseError("next hop " + via.to_string() +
                         " does not resolve to a device");
      }
      rule.next_hops.push_back(static_cast<topo::DeviceId>(offset - 1));
    }
    fib.add(std::move(rule));
  }
  return fib;
}

}  // namespace dcv::routing
