#include "routing/aggregation.hpp"

#include <algorithm>
#include <optional>

namespace dcv::routing {

namespace {

/// The configured aggregate of a cluster: the common prefix of its hosted
/// ranges (from expected-topology metadata, like any configured policy).
std::optional<net::Prefix> cluster_aggregate(
    const topo::MetadataService& metadata, topo::ClusterId cluster) {
  const auto facts = metadata.prefixes_in_cluster(cluster);
  if (facts.empty()) return std::nullopt;
  net::Prefix aggregate = facts.front().prefix;
  for (const topo::PrefixFact& fact : facts) {
    aggregate = net::common_prefix(aggregate, fact.prefix);
  }
  return aggregate;
}

}  // namespace

ForwardingTable aggregate_cluster_routes(const ForwardingTable& fib,
                                         const topo::MetadataService& metadata,
                                         topo::DeviceId device) {
  const topo::Topology& topology = metadata.topology();
  const topo::Device& d = topology.device(device);

  if (d.role == topo::DeviceRole::kLeaf) {
    // The leaf keeps its specifics but originates the cluster aggregate —
    // with the matching discard route — while any component survives.
    ForwardingTable out = fib;
    if (d.cluster == topo::kNoCluster) return out;
    const auto aggregate = cluster_aggregate(metadata, d.cluster);
    if (!aggregate) return out;
    const auto usable = topology.usable_neighbors(device);
    const bool any_component = std::any_of(
        usable.begin(), usable.end(), [&](topo::DeviceId neighbor) {
          return topology.device(neighbor).role == topo::DeviceRole::kTor;
        });
    if (any_component && fib.find(*aggregate) == nullptr) {
      out.add(Rule{.prefix = *aggregate, .next_hops = {}});  // discard
    }
    return out;
  }

  if (d.role != topo::DeviceRole::kSpine &&
      d.role != topo::DeviceRole::kRegionalSpine) {
    return fib;
  }

  // Spines / regional spines: hosted-prefix specifics are replaced by the
  // per-cluster aggregates, pointing at whichever expected downlinks are
  // still announcing (i.e. alive) — the aggregate hides component
  // withdrawals by construction.
  ForwardingTable out;
  for (const Rule& rule : fib.rules()) {
    if (!metadata.locate(rule.prefix)) out.add(rule);
  }
  const auto usable = topology.usable_neighbors(device);
  for (topo::ClusterId cluster = 0;
       cluster < static_cast<topo::ClusterId>(topology.cluster_count());
       ++cluster) {
    const auto aggregate = cluster_aggregate(metadata, cluster);
    if (!aggregate) continue;
    const auto downlinks =
        d.role == topo::DeviceRole::kSpine
            ? metadata.spine_downlinks_into(device, cluster)
            : metadata.regional_downlinks_toward(device, cluster);
    std::vector<topo::DeviceId> next_hops;
    for (const topo::DeviceId downlink : downlinks) {
      if (std::binary_search(usable.begin(), usable.end(), downlink)) {
        next_hops.push_back(downlink);
      }
    }
    if (next_hops.empty()) continue;
    out.add(Rule{.prefix = *aggregate, .next_hops = std::move(next_hops)});
  }
  return out;
}

}  // namespace dcv::routing
