#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/device.hpp"

namespace dcv::routing {

/// Identity of a hash-consed AS-path in a PathTable. Id 0 is the empty
/// path (locally originated routes). Within one table, two paths are
/// content-equal iff their ids are equal, so RIB comparison degrades to an
/// integer compare.
using PathId = std::uint32_t;

inline constexpr PathId kEmptyPathId = 0;

/// Global hash-consed AS-path storage: every distinct AS-path in the
/// process is stored exactly once and addressed by a 32-bit PathId.
///
/// AS-paths in a Clos are massively shared — every device of a tier
/// selects routes whose paths differ only in the leading ASN, and the
/// regional layer collapses private tails — so one table serving every
/// simulator keeps total path storage near the count of *distinct* paths
/// in the fabric instead of one heap vector per RIB entry.
///
/// Concurrency: the table is append-only and lock-striped. intern() takes
/// one stripe mutex (paths hash to a stripe, so unrelated interns do not
/// contend); view() is lock-free — records live in pre-sized block arrays
/// published with release stores, and the ASN bytes they point at are
/// written before the record is indexed and never change afterwards.
/// Ids are never recycled; memory is bounded by the number of distinct
/// paths ever interned (small: paths are a few ASNs and heavily reused).
class PathTable {
 public:
  PathTable() = default;
  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;

  /// Returns the id of the unique stored path with these contents,
  /// creating it on first sight. Thread-safe. The empty path is kEmptyPathId
  /// without touching any stripe.
  [[nodiscard]] PathId intern(std::span<const topo::Asn> path);

  /// The stored contents of a path. Lock-free; the returned span is valid
  /// for the table's lifetime. kEmptyPathId yields an empty span.
  [[nodiscard]] std::span<const topo::Asn> view(PathId id) const;

  /// Number of distinct non-empty paths interned so far (approximate under
  /// concurrent interning).
  [[nodiscard]] std::size_t size() const;

  /// Resident bytes attributable to path payloads and records (excludes
  /// the hash indexes; approximate under concurrent interning).
  [[nodiscard]] std::size_t bytes() const;

 private:
  // Id layout: (record_index * kStripes + stripe) + 1. 64 stripes leave
  // ~67M paths per stripe before the 32-bit space runs out — far beyond
  // the distinct-path count of any fabric we simulate.
  static constexpr std::uint32_t kStripes = 64;
  static constexpr std::size_t kBlockBits = 12;  // 4096 records per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kMaxBlocks = 1024;
  /// ASN payload chunk: one allocation amortizes thousands of paths.
  static constexpr std::size_t kChunkAsns = 1 << 14;

  struct Record {
    const topo::Asn* data = nullptr;
    std::uint32_t length = 0;
  };

  struct SpanHash {
    using is_transparent = void;
    std::size_t operator()(std::span<const topo::Asn> path) const noexcept {
      std::size_t h = 0xcbf29ce484222325ull;  // FNV-1a
      for (const topo::Asn asn : path) {
        h ^= asn;
        h *= 0x100000001b3ull;
      }
      return h;
    }
    std::size_t operator()(const Record& record) const noexcept {
      return (*this)(std::span<const topo::Asn>(record.data, record.length));
    }
  };

  struct SpanEq {
    using is_transparent = void;
    static std::span<const topo::Asn> as_span(const Record& r) noexcept {
      return {r.data, r.length};
    }
    static std::span<const topo::Asn> as_span(
        std::span<const topo::Asn> s) noexcept {
      return s;
    }
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const noexcept {
      const auto sa = as_span(a);
      const auto sb = as_span(b);
      return sa.size() == sb.size() &&
             std::equal(sa.begin(), sa.end(), sb.begin());
    }
  };

  struct Stripe {
    std::mutex mutex;
    /// Content → record index within this stripe. Guarded by mutex; keys
    /// reference the immutable record storage.
    std::unordered_map<Record, std::uint32_t, SpanHash, SpanEq> index;
    /// Record blocks, published with release stores as they are created;
    /// readers load acquire and index without locks.
    std::array<std::atomic<Record*>, kMaxBlocks> blocks{};
    /// ASN payload chunks. Each chunk is reserved to kChunkAsns up front
    /// and never reallocates, so record pointers into it stay valid.
    std::deque<std::vector<topo::Asn>> chunks;
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::size_t> payload_bytes{0};

    ~Stripe() {
      for (std::atomic<Record*>& block : blocks) {
        delete[] block.load(std::memory_order_relaxed);
      }
    }
  };

  std::array<Stripe, kStripes> stripes_;
};

/// The process-wide table every Rib's PathIds resolve against. One shared
/// table is what makes PathId comparison equivalent to path comparison
/// across simulators (worklist engine vs reference oracle, warm vs cold).
[[nodiscard]] PathTable& global_path_table();

}  // namespace dcv::routing
