#include "routing/fib_synthesizer.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace dcv::routing {

namespace {

using topo::Device;
using topo::DeviceId;
using topo::DeviceRole;
using topo::MetadataService;
using topo::PrefixFact;

void synthesize_tor(const MetadataService& metadata, const Device& tor,
                    ForwardingTable& fib) {
  const auto leaves_adj =
      metadata.topology().neighbors_with_role(tor.id, DeviceRole::kLeaf);
  const std::vector<DeviceId> leaves(leaves_adj.begin(), leaves_adj.end());
  fib.add(Rule{.prefix = net::Prefix::default_route(),
               .next_hops = leaves,
               .connected = false});
  for (const net::Prefix& own : tor.hosted_prefixes) {
    fib.add(Rule{.prefix = own, .next_hops = {}, .connected = true});
  }
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    if (fact.tor == tor.id) continue;
    // Every other prefix in the region is reached through the leaf layer.
    fib.add(Rule{.prefix = fact.prefix,
                 .next_hops = leaves,
                 .connected = false});
  }
}

void synthesize_leaf(const MetadataService& metadata, const Device& leaf,
                     ForwardingTable& fib) {
  const auto& topology = metadata.topology();
  const auto spines_adj =
      topology.neighbors_with_role(leaf.id, DeviceRole::kSpine);
  const std::vector<DeviceId> spines(spines_adj.begin(), spines_adj.end());
  fib.add(Rule{.prefix = net::Prefix::default_route(),
               .next_hops = spines,
               .connected = false});
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    if (fact.cluster == leaf.cluster) {
      // Prefixes of the own cluster go straight down to the hosting ToR.
      fib.add(Rule{.prefix = fact.prefix,
                   .next_hops = {fact.tor},
                   .connected = false});
      continue;
    }
    const topo::DatacenterId fact_dc =
        topology.device(fact.tor).datacenter;
    std::vector<DeviceId> next_hops;
    if (fact_dc == leaf.datacenter) {
      // Same datacenter: spines that reach the destination cluster.
      next_hops = metadata.leaf_uplinks_toward(leaf.id, fact.cluster);
    } else {
      // Other datacenter: spines with a regional uplink toward a regional
      // spine that serves the destination cluster.
      const auto& serving_regionals =
          metadata.regionals_serving_cluster(fact.cluster);
      for (const DeviceId spine : spines) {
        const auto regionals = topology.neighbors_with_role(
            spine, DeviceRole::kRegionalSpine);
        if (std::any_of(regionals.begin(), regionals.end(),
                        [&](DeviceId r) {
                          return serving_regionals.contains(r);
                        })) {
          next_hops.push_back(spine);
        }
      }
    }
    fib.add(Rule{.prefix = fact.prefix,
                 .next_hops = std::move(next_hops),
                 .connected = false});
  }
}

void synthesize_spine(const MetadataService& metadata, const Device& spine,
                      ForwardingTable& fib) {
  const auto& topology = metadata.topology();
  const auto regionals_adj =
      topology.neighbors_with_role(spine.id, DeviceRole::kRegionalSpine);
  const std::vector<DeviceId> regionals(regionals_adj.begin(),
                                        regionals_adj.end());
  fib.add(Rule{.prefix = net::Prefix::default_route(),
               .next_hops = regionals,
               .connected = false});
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    const topo::DatacenterId fact_dc = topology.device(fact.tor).datacenter;
    std::vector<DeviceId> next_hops;
    if (fact_dc == spine.datacenter) {
      next_hops = metadata.spine_downlinks_into(spine.id, fact.cluster);
      if (next_hops.empty()) continue;  // plane does not serve that cluster
    } else {
      const auto& serving_regionals =
          metadata.regionals_serving_cluster(fact.cluster);
      for (const DeviceId r : regionals) {
        if (serving_regionals.contains(r)) next_hops.push_back(r);
      }
      if (next_hops.empty()) continue;
    }
    fib.add(Rule{.prefix = fact.prefix,
                 .next_hops = std::move(next_hops),
                 .connected = false});
  }
}

void synthesize_regional(const MetadataService& metadata,
                         const Device& regional, ForwardingTable& fib) {
  fib.add(Rule{.prefix = net::Prefix::default_route(),
               .next_hops = {},
               .connected = true});
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    auto next_hops =
        metadata.regional_downlinks_toward(regional.id, fact.cluster);
    if (next_hops.empty()) continue;  // regional does not serve that cluster
    fib.add(Rule{.prefix = fact.prefix,
                 .next_hops = std::move(next_hops),
                 .connected = false});
  }
}

}  // namespace

ForwardingTable FibSynthesizer::fib(topo::DeviceId device) const {
  const Device& d = metadata_->topology().device(device);
  ForwardingTable fib;
  switch (d.role) {
    case DeviceRole::kTor:
      synthesize_tor(*metadata_, d, fib);
      break;
    case DeviceRole::kLeaf:
      synthesize_leaf(*metadata_, d, fib);
      break;
    case DeviceRole::kSpine:
      synthesize_spine(*metadata_, d, fib);
      break;
    case DeviceRole::kRegionalSpine:
      synthesize_regional(*metadata_, d, fib);
      break;
  }
  return fib;
}

}  // namespace dcv::routing
