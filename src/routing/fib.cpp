#include "routing/fib.hpp"

#include <ostream>

namespace dcv::routing {

namespace {

/// Canonical FIB order: longest prefixes first, then by prefix value.
bool rule_order(const Rule& a, const Rule& b) {
  if (a.prefix.length() != b.prefix.length()) {
    return a.prefix.length() > b.prefix.length();
  }
  return a.prefix < b.prefix;
}

}  // namespace

std::string Rule::to_string() const {
  std::string out = prefix.to_string() + " ->";
  if (connected) out += " connected";
  for (const auto hop : next_hops) out += " " + std::to_string(hop);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Rule& rule) {
  return os << rule.to_string();
}

void ForwardingTable::add(Rule rule) {
  canonicalize(rule.next_hops);
  const auto insert_at =
      std::lower_bound(rules_.begin(), rules_.end(), rule, rule_order);
  if (insert_at != rules_.end() && insert_at->prefix == rule.prefix) {
    *insert_at = std::move(rule);
  } else {
    rules_.insert(insert_at, std::move(rule));
  }
}

const Rule* ForwardingTable::lookup(net::Ipv4Address destination) const {
  // Rules are sorted longest-first, so the first containing rule is the
  // longest-prefix match.
  for (const Rule& rule : rules_) {
    if (rule.prefix.contains(destination)) return &rule;
  }
  return nullptr;
}

const Rule* ForwardingTable::find(const net::Prefix& prefix) const {
  const Rule probe{.prefix = prefix, .next_hops = {}, .connected = false};
  const auto it =
      std::lower_bound(rules_.begin(), rules_.end(), probe, rule_order);
  if (it != rules_.end() && it->prefix == prefix) return &*it;
  return nullptr;
}

}  // namespace dcv::routing
