#pragma once

#include "routing/fib.hpp"
#include "topology/metadata.hpp"

namespace dcv::routing {

/// Route aggregation at the cluster boundary — the design the paper's
/// architecture deliberately rejects: "they do not use route aggregation
/// because such aggregations can result in black-holing of traffic due to
/// a single-link failure" (§2.1).
///
/// This transform reproduces how configured aggregation actually behaves:
///
///  * a leaf originates its cluster's *configured* aggregate (the common
///    prefix of the cluster's hosted ranges) for as long as any component
///    survives, installing the usual discard route for the aggregate in
///    its own FIB;
///  * spines and regional spines carry the aggregate (pointing at their
///    live leaf downlinks for the cluster) instead of per-prefix routes.
///
/// On a healthy network forwarding is unchanged — the leaf's specific
/// routes are longer than its discard route. After a single ToR uplink
/// failure the aggregate keeps attracting traffic to the leaf, where the
/// lost specific now exposes the discard route: a black hole, invisible to
/// the upper layers because the aggregate announcement never changed. The
/// aggregation-free design instead degrades onto the regional detour
/// (§2.4.4). See tests/routing/aggregation_test.cpp.
[[nodiscard]] ForwardingTable aggregate_cluster_routes(
    const ForwardingTable& fib, const topo::MetadataService& metadata,
    topo::DeviceId device);

}  // namespace dcv::routing
