#include "routing/bgp_sim.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "net/error.hpp"

namespace dcv::routing {

namespace {

/// A route as received from one neighbor: the neighbor id and the AS-path
/// the neighbor advertised (neighbor's ASN first).
struct Candidate {
  topo::DeviceId neighbor = topo::kInvalidDevice;
  std::vector<topo::Asn> as_path;
  topo::DatacenterId origin_datacenter = 0;
};

}  // namespace

BgpSimulator::BgpSimulator(const topo::Topology& topology,
                           const topo::FaultInjector* faults,
                           obs::MetricsRegistry* metrics)
    : topology_(&topology), faults_(faults) {
  ribs_.resize(topology.device_count());
  run(metrics);
}

const Rib& BgpSimulator::rib(topo::DeviceId device) const {
  if (device >= ribs_.size()) throw InvalidArgument("bad device id");
  return ribs_[device];
}

void BgpSimulator::run(obs::MetricsRegistry* metrics) {
  const auto& devices = topology_->devices();
  std::uint64_t routes_propagated = 0;

  // Locally originated routes: ToRs originate their hosted VLAN prefixes,
  // regional spines originate the default route (§2.1).
  for (const topo::Device& d : devices) {
    if (d.role == topo::DeviceRole::kTor) {
      for (const net::Prefix& p : d.hosted_prefixes) {
        ribs_[d.id][p] = RibEntry{.prefix = p,
                                  .as_path = {},
                                  .next_hops = {},
                                  .connected = true,
                                  .origin_datacenter = d.datacenter};
      }
    } else if (d.role == topo::DeviceRole::kRegionalSpine) {
      const auto def = net::Prefix::default_route();
      ribs_[d.id][def] = RibEntry{.prefix = def,
                                  .as_path = {},
                                  .next_hops = {},
                                  .connected = true,
                                  .origin_datacenter = topo::kNoDatacenter};
    }
  }

  // What `from` advertises about `entry` across the session to `to`, or
  // nullopt if its export policy suppresses the route.
  const auto export_path =
      [&](const topo::Device& from, const topo::Device& to,
          const RibEntry& entry) -> std::optional<std::vector<topo::Asn>> {
    std::vector<topo::Asn> path;
    if (entry.connected) {
      path = {from.asn};
    } else {
      path = entry.as_path;  // already begins with from.asn
    }
    if (from.role == topo::DeviceRole::kRegionalSpine) {
      // Never hairpin a datacenter's own routes back into it.
      if (entry.origin_datacenter != topo::kNoDatacenter &&
          to.datacenter == entry.origin_datacenter) {
        return std::nullopt;
      }
      // Strip private ASNs from the relayed tail (§2.1) so that private-ASN
      // reuse across datacenters cannot cause loop-prevention rejections.
      std::vector<topo::Asn> stripped;
      stripped.push_back(path.front());
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (!is_private_asn(path[i])) stripped.push_back(path[i]);
      }
      path = std::move(stripped);
    }
    return path;
  };

  // Whether `to` accepts an announcement of `prefix` with the given path.
  const auto import_ok = [&](const topo::Device& to, const net::Prefix& prefix,
                             const std::vector<topo::Asn>& path) -> bool {
    if (faults_ != nullptr && prefix.is_default() &&
        faults_->device_has_fault(
            to.id, topo::DeviceFaultKind::kRejectDefaultRoute)) {
      return false;  // route-map misconfiguration (§2.6.2 "Policy Errors")
    }
    if (to.role == topo::DeviceRole::kTor) {
      // ToR upstream sessions accept paths containing the (reused) ToR ASN
      // of a sibling rack (§2.1); path lengths still rule such routes out of
      // best-path selection, so this cannot loop.
      return true;
    }
    if (to.role == topo::DeviceRole::kRegionalSpine) {
      // Tier-peer rule: never re-import a route that already traversed the
      // regional layer (keeps regionals on their own originated default and
      // forbids regional-spine valleys).
      for (const topo::Asn asn : path) {
        if (!is_private_asn(asn)) return false;
      }
      return true;
    }
    return std::find(path.begin(), path.end(), to.asn) == path.end();
  };

  bool changed = true;
  rounds_ = 0;
  // Convergence is bounded by the network diameter; the cap is a safety net.
  constexpr int kMaxRounds = 64;
  while (changed && rounds_ < kMaxRounds) {
    ++rounds_;
    changed = false;
    std::vector<Rib> next = ribs_;

    for (const topo::Device& d : devices) {
      std::unordered_map<net::Prefix, std::vector<Candidate>> candidates;
      for (const topo::LinkId lid : topology_->links_of(d.id)) {
        const topo::Link& link = topology_->link(lid);
        if (!link.usable()) continue;
        const topo::Device& n = topology_->device(link.other(d.id));
        for (const auto& [prefix, entry] : ribs_[n.id]) {
          const auto path = export_path(n, d, entry);
          if (!path) continue;
          if (!import_ok(d, prefix, *path)) continue;
          ++routes_propagated;
          candidates[prefix].push_back(
              Candidate{.neighbor = n.id,
                        .as_path = *path,
                        .origin_datacenter = entry.origin_datacenter});
        }
      }

      Rib rib;
      // Locally originated entries always win.
      for (const auto& [prefix, entry] : ribs_[d.id]) {
        if (entry.connected) rib[prefix] = entry;
      }
      for (auto& [prefix, cands] : candidates) {
        if (rib.contains(prefix)) continue;
        std::size_t best_len = SIZE_MAX;
        for (const Candidate& c : cands) {
          best_len = std::min(best_len, c.as_path.size());
        }
        std::vector<topo::DeviceId> next_hops;
        const std::vector<topo::Asn>* chosen = nullptr;
        topo::DatacenterId origin = 0;
        for (const Candidate& c : cands) {
          if (c.as_path.size() != best_len) continue;
          next_hops.push_back(c.neighbor);
          if (chosen == nullptr || c.as_path < *chosen) {
            chosen = &c.as_path;
            origin = c.origin_datacenter;
          }
        }
        canonicalize(next_hops);
        std::vector<topo::Asn> as_path;
        as_path.reserve(chosen->size() + 1);
        as_path.push_back(d.asn);
        as_path.insert(as_path.end(), chosen->begin(), chosen->end());
        rib[prefix] = RibEntry{.prefix = prefix,
                               .as_path = std::move(as_path),
                               .next_hops = std::move(next_hops),
                               .connected = false,
                               .origin_datacenter = origin};
      }

      if (rib.size() != ribs_[d.id].size() ||
          !std::equal(rib.begin(), rib.end(), ribs_[d.id].begin(),
                      [](const auto& a, const auto& b) {
                        return a.first == b.first &&
                               a.second.as_path == b.second.as_path &&
                               a.second.next_hops == b.second.next_hops &&
                               a.second.connected == b.second.connected;
                      })) {
        changed = true;
      }
      next[d.id] = std::move(rib);
    }
    ribs_ = std::move(next);
  }

  if (metrics != nullptr) {
    metrics
        ->histogram("dcv_bgp_convergence_rounds",
                    "Synchronous rounds until EBGP convergence")
        .observe(static_cast<std::uint64_t>(rounds_));
    metrics
        ->counter("dcv_bgp_routes_propagated_total",
                  "Accepted candidate announcements across all rounds")
        .inc(routes_propagated);
  }
}

ForwardingTable BgpSimulator::fib(topo::DeviceId device) const {
  if (device >= ribs_.size()) throw InvalidArgument("bad device id");
  const bool rib_fib_bug =
      faults_ != nullptr &&
      faults_->device_has_fault(device,
                                topo::DeviceFaultKind::kRibFibInconsistency);
  const bool ecmp_bug =
      faults_ != nullptr &&
      faults_->device_has_fault(device,
                                topo::DeviceFaultKind::kEcmpSingleNextHop);

  ForwardingTable fib;
  for (const auto& [prefix, entry] : ribs_[device]) {
    Rule rule{.prefix = prefix,
              .next_hops = entry.next_hops,
              .connected = entry.connected};
    // "Software Bug 1": the FIB retains far fewer next hops for the default
    // route than the RIB computed (§2.6.2).
    if (rib_fib_bug && prefix.is_default() && rule.next_hops.size() > 1) {
      rule.next_hops.resize(1);
    }
    // ECMP misconfiguration: a single next hop is programmed everywhere
    // instead of the full available set (§2.6.2 "Policy Errors").
    if (ecmp_bug && rule.next_hops.size() > 1) {
      rule.next_hops.resize(1);
    }
    fib.add(std::move(rule));
  }
  return fib;
}

}  // namespace dcv::routing
