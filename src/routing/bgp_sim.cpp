#include "routing/bgp_sim.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <thread>
#include <unordered_map>

#include "net/error.hpp"

namespace dcv::routing {

namespace {

using topo::Asn;
using topo::DeviceId;

/// A route as received from one neighbor during one device step. The path
/// view borrows the global PathTable's storage (append-only, immutable), so
/// it is valid for the whole run; path_id is the same path's interned
/// identity, carried so selection results can reference it without
/// re-interning.
struct Candidate {
  net::Prefix prefix;
  DeviceId neighbor = topo::kInvalidDevice;
  PathId path_id = kEmptyPathId;
  std::span<const Asn> path;
  topo::DatacenterId origin_datacenter = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Rib

const RibEntry* Rib::find(const net::Prefix& prefix) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RibEntry& e, const net::Prefix& p) { return e.prefix < p; });
  if (it == entries_.end() || it->prefix != prefix) return nullptr;
  return &*it;
}

const RibEntry& Rib::at(const net::Prefix& prefix) const {
  const RibEntry* entry = find(prefix);
  if (entry == nullptr) throw InvalidArgument("no RIB entry for prefix");
  return *entry;
}

void Rib::append(const net::Prefix& prefix, PathId path,
                 std::span<const topo::DeviceId> hops, bool connected,
                 topo::DatacenterId origin_datacenter) {
  RibEntry entry;
  entry.prefix = prefix;
  entry.path = path;
  entry.connected = connected;
  entry.origin_datacenter = origin_datacenter;
  entry.hop_count = static_cast<std::uint16_t>(hops.size());
  if (hops.size() <= RibEntry::kInlineHops) {
    std::copy(hops.begin(), hops.end(), entry.hop_words.begin());
  } else {
    entry.hop_words[0] = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), hops.begin(), hops.end());
  }
  entries_.push_back(entry);
}

void Rib::sort_by_prefix() {
  std::sort(entries_.begin(), entries_.end(),
            [](const RibEntry& a, const RibEntry& b) {
              return a.prefix < b.prefix;
            });
}

// ---------------------------------------------------------------------------
// FIB programming (shared with ReferenceBgpSimulator)

ForwardingTable program_fib(const Rib& rib, const topo::FaultInjector* faults,
                            topo::DeviceId device) {
  const bool rib_fib_bug =
      faults != nullptr &&
      faults->device_has_fault(device,
                               topo::DeviceFaultKind::kRibFibInconsistency);
  const bool ecmp_bug =
      faults != nullptr &&
      faults->device_has_fault(device,
                               topo::DeviceFaultKind::kEcmpSingleNextHop);

  ForwardingTable fib;
  for (const RibEntry& entry : rib) {
    const std::span<const DeviceId> hops = rib.next_hops(entry);
    Rule rule{.prefix = entry.prefix,
              .next_hops = std::vector<DeviceId>(hops.begin(), hops.end()),
              .connected = entry.connected};
    // "Software Bug 1": the FIB retains far fewer next hops for the default
    // route than the RIB computed (§2.6.2).
    if (rib_fib_bug && entry.prefix.is_default() &&
        rule.next_hops.size() > 1) {
      rule.next_hops.resize(1);
    }
    // ECMP misconfiguration: a single next hop is programmed everywhere
    // instead of the full available set (§2.6.2 "Policy Errors").
    if (ecmp_bug && rule.next_hops.size() > 1) {
      rule.next_hops.resize(1);
    }
    fib.add(std::move(rule));
  }
  return fib;
}

// ---------------------------------------------------------------------------
// Worker state and pool

struct BgpSimulator::WorkerState {
  std::vector<Candidate> candidates;
  std::vector<DeviceId> hops_scratch;
  std::vector<Asn> path_scratch;
  /// Recomputed entries; only moved out when the device actually changed,
  /// so the storage is reused across the (common) unchanged devices.
  Rib fresh;
  /// Rewrite memos: intern() results are pure functions of their inputs, so
  /// one hash probe replaces the stripe lock + payload copy on repeats.
  std::unordered_map<Asn, PathId> origin_memo;          // [asn] origination
  std::unordered_map<PathId, PathId> strip_memo;        // private-ASN strip
  std::unordered_map<std::uint64_t, PathId> prepend_memo;  // (asn, path)
  std::uint64_t routes_propagated = 0;
};

/// A persistent pool: N-1 spawned threads plus the calling thread. run()
/// is a barrier — it returns only after every worker finished the job, so
/// frontier results published by workers are visible to the committing
/// thread through the pool mutex.
struct BgpSimulator::WorkerPool {
  explicit WorkerPool(unsigned workers) {
    for (unsigned t = 1; t < workers; ++t) {
      threads_.emplace_back([this, t] { loop(t); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
  }

  void run(const std::function<void(unsigned)>& job) {
    {
      const std::lock_guard lock(mutex_);
      job_ = &job;
      ++generation_;
      pending_ = threads_.size();
    }
    wake_.notify_all();
    job(0);
    std::unique_lock lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  void loop(unsigned id) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(unsigned)>* job = nullptr;
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(id);
      {
        const std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_.notify_one();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::jthread> threads_;
};

// ---------------------------------------------------------------------------
// BgpSimulator

BgpSimulator::BgpSimulator(const topo::Topology& topology,
                           const topo::FaultInjector* faults,
                           obs::MetricsRegistry* metrics,
                           BgpSimOptions options)
    : topology_(&topology),
      faults_(faults),
      metrics_(metrics),
      options_(options) {
  if (options_.threads == 0) {
    options_.threads =
        std::clamp(std::thread::hardware_concurrency(), 1u, 16u);
  }
  workers_.reserve(options_.threads);
  for (unsigned t = 0; t < options_.threads; ++t) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  if (metrics_ != nullptr) {
    rounds_hist_ = &metrics_->histogram(
        "dcv_bgp_convergence_rounds",
        "Synchronous rounds until EBGP convergence");
    reconverge_hist_ = &metrics_->histogram(
        "dcv_bgp_reconverge_rounds",
        "Rounds a warm-start reconverge() took to reach the new fixpoint");
    frontier_hist_ = &metrics_->histogram(
        "dcv_bgp_frontier_devices",
        "Devices reprocessed per worklist round");
    routes_counter_ = &metrics_->counter(
        "dcv_bgp_routes_propagated_total",
        "Accepted candidate announcements across all rounds");
    paths_gauge_ = &metrics_->gauge(
        "dcv_bgp_paths_interned",
        "Distinct AS-paths hash-consed in the global PathTable");
    fib_rebuilds_ = &metrics_->counter(
        "dcv_bgp_fib_rebuilds_total",
        "ForwardingTable materializations from a converged RIB");
    fib_hits_ = &metrics_->counter(
        "dcv_bgp_fib_cache_hits_total",
        "fib() fetches served from the materialized-table cache");
  }
  ribs_.resize(topology.device_count());
  fib_cache_.resize(topology.device_count());
  cold_run();
}

BgpSimulator::~BgpSimulator() = default;

const Rib& BgpSimulator::rib(topo::DeviceId device) const {
  if (device >= ribs_.size()) throw InvalidArgument("bad device id");
  return ribs_[device];
}

const ForwardingTable& BgpSimulator::fib(topo::DeviceId device) const {
  if (device >= ribs_.size()) throw InvalidArgument("bad device id");
  const std::lock_guard lock(fib_locks_[device % fib_locks_.size()]);
  std::unique_ptr<ForwardingTable>& slot = fib_cache_[device];
  if (slot == nullptr) {
    slot = std::make_unique<ForwardingTable>(
        program_fib(ribs_[device], faults_, device));
    if (fib_rebuilds_ != nullptr) fib_rebuilds_->inc();
  } else if (fib_hits_ != nullptr) {
    fib_hits_->inc();
  }
  return *slot;
}

std::size_t BgpSimulator::route_state_bytes() const {
  std::size_t total = ribs_.capacity() * sizeof(Rib);
  for (const Rib& rib : ribs_) total += rib.memory_bytes();
  return total;
}

void BgpSimulator::invalidate_fib(topo::DeviceId device) {
  {
    const std::lock_guard lock(fib_locks_[device % fib_locks_.size()]);
    fib_cache_[device].reset();
  }
  if (changed_mark_.size() < topology_->device_count()) {
    changed_mark_.resize(topology_->device_count(), 0);
  }
  if (changed_mark_[device] == 0) {
    changed_mark_[device] = 1;
    changed_list_.push_back(device);
  }
}

std::vector<topo::DeviceId> BgpSimulator::take_changed_devices() {
  std::vector<topo::DeviceId> drained = std::move(changed_list_);
  changed_list_.clear();
  for (const topo::DeviceId device : drained) {
    if (device < changed_mark_.size()) changed_mark_[device] = 0;
  }
  std::sort(drained.begin(), drained.end());
  return drained;
}

void BgpSimulator::snapshot_state() {
  const auto& devices = topology_->devices();
  const auto& links = topology_->links();
  snap_link_usable_.resize(links.size());
  for (std::size_t l = 0; l < links.size(); ++l) {
    snap_link_usable_[l] = links[l].usable() ? 1 : 0;
  }
  snap_reject_default_.assign(devices.size(), 0);
  snap_fib_fault_.assign(devices.size(), 0);
  snap_asn_.resize(devices.size());
  snap_hosted_.resize(devices.size());
  for (const topo::Device& d : devices) {
    if (faults_ != nullptr) {
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kRejectDefaultRoute)) {
        snap_reject_default_[d.id] = 1;
      }
      std::uint8_t sig = 0;
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kRibFibInconsistency)) {
        sig |= 1;
      }
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kEcmpSingleNextHop)) {
        sig |= 2;
      }
      snap_fib_fault_[d.id] = sig;
    }
    snap_asn_[d.id] = d.asn;
    snap_hosted_[d.id] = d.hosted_prefixes;
  }
}

bool BgpSimulator::diff_state(std::vector<topo::DeviceId>& seeds) {
  const auto& devices = topology_->devices();
  const auto& links = topology_->links();
  if (devices.size() != snap_asn_.size() ||
      links.size() != snap_link_usable_.size()) {
    return false;  // expected shape changed: warm state is unusable
  }

  std::vector<std::uint8_t> marked(devices.size(), 0);
  const auto seed = [&](DeviceId d) {
    if (!marked[d]) {
      marked[d] = 1;
      seeds.push_back(d);
    }
  };

  for (std::size_t l = 0; l < links.size(); ++l) {
    const std::uint8_t usable = links[l].usable() ? 1 : 0;
    if (usable != snap_link_usable_[l]) {
      seed(links[l].a);
      seed(links[l].b);
    }
  }
  for (const topo::Device& d : devices) {
    std::uint8_t reject = 0;
    std::uint8_t sig = 0;
    if (faults_ != nullptr) {
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kRejectDefaultRoute)) {
        reject = 1;
      }
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kRibFibInconsistency)) {
        sig |= 1;
      }
      if (faults_->device_has_fault(
              d.id, topo::DeviceFaultKind::kEcmpSingleNextHop)) {
        sig |= 2;
      }
    }
    if (reject != snap_reject_default_[d.id]) seed(d.id);
    // FIB-programming faults never touch the RIB; flipping one only stales
    // the materialized table.
    if (sig != snap_fib_fault_[d.id]) invalidate_fib(d.id);
    if (d.asn != snap_asn_[d.id]) {
      // The device's own paths and its neighbors' loop checks both involve
      // this ASN.
      seed(d.id);
      for (const topo::LinkId lid : topology_->links_of(d.id)) {
        seed(topology_->link(lid).other(d.id));
      }
    }
    if (d.hosted_prefixes != snap_hosted_[d.id]) seed(d.id);
  }
  return true;
}

void BgpSimulator::cold_run() {
  const auto& devices = topology_->devices();
  // Seed locally originated routes so the first round already propagates
  // them: ToRs originate their hosted VLAN prefixes, regional spines the
  // default route (§2.1).
  for (const topo::Device& d : devices) {
    Rib rib;
    if (d.role == topo::DeviceRole::kTor) {
      rib.reserve(d.hosted_prefixes.size(), 0);
      for (const net::Prefix& p : d.hosted_prefixes) {
        rib.append(p, kEmptyPathId, {}, /*connected=*/true, d.datacenter);
      }
      rib.sort_by_prefix();
    } else if (d.role == topo::DeviceRole::kRegionalSpine) {
      rib.append(net::Prefix::default_route(), kEmptyPathId, {},
                 /*connected=*/true, topo::kNoDatacenter);
    }
    ribs_[d.id] = std::move(rib);
    invalidate_fib(d.id);
  }
  snapshot_state();
  std::vector<DeviceId> frontier(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    frontier[d] = static_cast<DeviceId>(d);
  }
  rounds_ = run_worklist(std::move(frontier));
  publish_metrics(rounds_, /*warm=*/false);
}

int BgpSimulator::reconverge() {
  std::vector<DeviceId> seeds;
  if (!diff_state(seeds)) {
    ribs_.assign(topology_->device_count(), Rib{});
    fib_cache_.clear();
    fib_cache_.resize(topology_->device_count());
    cold_run();
    return rounds_;
  }
  snapshot_state();  // import_ok reads the refreshed fault flags
  rounds_ = seeds.empty() ? 0 : run_worklist(std::move(seeds));
  publish_metrics(rounds_, /*warm=*/true);
  return rounds_;
}

int BgpSimulator::run_worklist(std::vector<topo::DeviceId> frontier) {
  const auto& devices = topology_->devices();
  for (const auto& worker : workers_) worker->routes_propagated = 0;

  int rounds = 0;
  // Convergence is bounded by the network diameter; the cap is a safety net.
  constexpr int kMaxRounds = 64;
  std::vector<Rib> results;
  std::vector<std::uint8_t> changed;
  std::vector<std::uint8_t> queued(devices.size(), 0);
  std::vector<DeviceId> next;
  // Prefixes whose entries changed anywhere in the previous round, sorted.
  // The seed round recomputes its devices in full (external state changed
  // under them); every later round only reselects dirty prefixes.
  std::vector<net::Prefix> dirty;
  std::vector<net::Prefix> next_dirty;
  bool seed_round = true;

  while (!frontier.empty() && rounds < kMaxRounds) {
    ++rounds;
    if (frontier_hist_ != nullptr) frontier_hist_->observe(frontier.size());
    results.assign(frontier.size(), Rib{});
    changed.assign(frontier.size(), 0);
    const std::vector<net::Prefix>* round_dirty = seed_round ? nullptr : &dirty;

    std::atomic<std::size_t> cursor{0};
    const auto job = [&](unsigned worker) {
      WorkerState& state = *workers_[worker];
      while (true) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size()) break;
        changed[i] = process_device(devices[frontier[i]], state, results[i],
                                    round_dirty)
                         ? 1
                         : 0;
      }
    };
    if (workers_.size() > 1 &&
        frontier.size() >= options_.parallel_threshold) {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<WorkerPool>(
            static_cast<unsigned>(workers_.size()));
      }
      pool_->run(job);
    } else {
      job(0);
    }

    // Commit changed results: splice partial (dirty-only) results over the
    // previous state, record which prefixes changed for the next round's
    // dirty set, and enqueue usable-link neighbors as the next frontier.
    next.clear();
    next_dirty.clear();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!changed[i]) continue;
      const DeviceId d = frontier[i];
      if (round_dirty == nullptr) {
        // Full recompute: diff old vs new for the dirty set, then adopt the
        // fresh Rib wholesale (entries + arena move together).
        const Rib& fresh = results[i];
        const Rib& old = ribs_[d];
        auto oit = old.begin();
        auto fit = fresh.begin();
        while (oit != old.end() || fit != fresh.end()) {
          if (fit == fresh.end() ||
              (oit != old.end() && oit->prefix < fit->prefix)) {
            next_dirty.push_back((oit++)->prefix);  // entry removed
          } else if (oit == old.end() || fit->prefix < oit->prefix) {
            next_dirty.push_back((fit++)->prefix);  // entry added
          } else {
            if (!Rib::entry_equal(old, *oit, fresh, *fit)) {
              next_dirty.push_back(fit->prefix);
            }
            ++oit;
            ++fit;
          }
        }
        ribs_[d] = std::move(results[i]);
      } else {
        // Partial recompute: the result holds entries for dirty prefixes
        // only. Merge-walk old entries with the fresh ones into the
        // recycled scratch Rib (entry records and hop lists land in its
        // retained buffers — no allocation once warm); an old dirty-prefix
        // entry with no fresh counterpart was withdrawn.
        const Rib& fresh = results[i];
        const Rib& old = ribs_[d];
        merge_scratch_.clear();
        merge_scratch_.reserve(old.size() + fresh.size(), 0);
        auto dit = round_dirty->begin();
        auto fit = fresh.begin();
        for (const RibEntry& entry : old) {
          while (fit != fresh.end() && fit->prefix < entry.prefix) {
            next_dirty.push_back(fit->prefix);  // entry added
            merge_scratch_.append_from(fresh, *fit);
            ++fit;
          }
          while (dit != round_dirty->end() && *dit < entry.prefix) ++dit;
          if (dit == round_dirty->end() || *dit != entry.prefix) {
            merge_scratch_.append_from(old, entry);  // clean prefix: keep
            continue;
          }
          if (fit != fresh.end() && fit->prefix == entry.prefix) {
            if (!Rib::entry_equal(old, entry, fresh, *fit)) {
              next_dirty.push_back(fit->prefix);
            }
            merge_scratch_.append_from(fresh, *fit);
            ++fit;
          } else {
            next_dirty.push_back(entry.prefix);  // withdrawn
          }
        }
        for (; fit != fresh.end(); ++fit) {
          next_dirty.push_back(fit->prefix);
          merge_scratch_.append_from(fresh, *fit);
        }
        // The displaced Rib becomes the next merge's scratch, keeping its
        // entry and arena capacity in rotation.
        std::swap(ribs_[d], merge_scratch_);
      }
      invalidate_fib(d);
      for (const topo::LinkId lid : topology_->links_of(d)) {
        const topo::Link& link = topology_->link(lid);
        if (!link.usable()) continue;
        const DeviceId neighbor = link.other(d);
        if (!queued[neighbor]) {
          queued[neighbor] = 1;
          next.push_back(neighbor);
        }
      }
    }
    for (const DeviceId d : next) queued[d] = 0;
    frontier = next;
    std::sort(next_dirty.begin(), next_dirty.end());
    next_dirty.erase(std::unique(next_dirty.begin(), next_dirty.end()),
                     next_dirty.end());
    std::swap(dirty, next_dirty);
    seed_round = false;
  }
  return rounds;
}

bool BgpSimulator::process_device(const topo::Device& d, WorkerState& state,
                                  Rib& out,
                                  const std::vector<net::Prefix>* dirty) const {
  PathTable& table = global_path_table();
  Rib& fresh = state.fresh;
  fresh.clear();
  const auto is_dirty = [dirty](const net::Prefix& p) {
    return dirty == nullptr ||
           std::binary_search(dirty->begin(), dirty->end(), p);
  };
  std::size_t connected_count = 0;
  if (d.role == topo::DeviceRole::kTor) {
    for (const net::Prefix& p : d.hosted_prefixes) {
      if (!is_dirty(p)) continue;
      fresh.append(p, kEmptyPathId, {}, /*connected=*/true, d.datacenter);
    }
    connected_count = fresh.size();
  } else if (d.role == topo::DeviceRole::kRegionalSpine) {
    if (is_dirty(net::Prefix::default_route())) {
      fresh.append(net::Prefix::default_route(), kEmptyPathId, {},
                   /*connected=*/true, topo::kNoDatacenter);
      connected_count = 1;
    }
  }

  // Collect acceptable announcements from all usable sessions. Path views
  // borrow the global PathTable's storage; rewrites (connected origination,
  // private-ASN stripping) are pure functions of their inputs, so the
  // per-worker memos reduce them to one hash probe with no stripe-lock
  // traffic. In dirty mode only the neighbors' entries for dirty prefixes
  // are considered — entries for clean prefixes are bit-identical to last
  // round, so they cannot change this device's selection.
  state.candidates.clear();
  for (const topo::LinkId lid : topology_->links_of(d.id)) {
    const topo::Link& link = topology_->link(lid);
    if (!link.usable()) continue;
    const topo::Device& n = topology_->device(link.other(d.id));

    const auto consider = [&](const RibEntry& entry) {
      // -- export policy of n toward d --
      PathId path_id;
      if (entry.connected) {
        const auto [it, inserted] = state.origin_memo.try_emplace(n.asn, 0);
        if (inserted) {
          it->second = table.intern(std::span<const Asn>(&n.asn, 1));
        }
        path_id = it->second;
      } else {
        path_id = entry.path;  // already begins with n.asn
      }
      std::span<const Asn> path = table.view(path_id);
      if (n.role == topo::DeviceRole::kRegionalSpine) {
        // Never hairpin a datacenter's own routes back into it.
        if (entry.origin_datacenter != topo::kNoDatacenter &&
            d.datacenter == entry.origin_datacenter) {
          return;
        }
        // Strip private ASNs from the relayed tail (§2.1) so that
        // private-ASN reuse across datacenters cannot cause loop-prevention
        // rejections. Most relayed paths at this tier need no rewrite;
        // scan first and keep the original id on the no-op path.
        if (std::any_of(path.begin() + 1, path.end(), is_private_asn)) {
          const auto [it, inserted] = state.strip_memo.try_emplace(path_id, 0);
          if (inserted) {
            state.path_scratch.clear();
            state.path_scratch.push_back(path.front());
            for (std::size_t i = 1; i < path.size(); ++i) {
              if (!is_private_asn(path[i])) {
                state.path_scratch.push_back(path[i]);
              }
            }
            it->second = table.intern(state.path_scratch);
          }
          path_id = it->second;
          path = table.view(path_id);
        }
      }

      // -- import policy of d --
      if (snap_reject_default_[d.id] && entry.prefix.is_default()) {
        return;  // route-map misconfiguration (§2.6.2 "Policy Errors")
      }
      if (d.role == topo::DeviceRole::kRegionalSpine) {
        // Tier-peer rule: never re-import a route that already traversed
        // the regional layer (keeps regionals on their own originated
        // default and forbids regional-spine valleys).
        if (!std::all_of(path.begin(), path.end(), is_private_asn)) return;
      } else if (d.role != topo::DeviceRole::kTor) {
        // ToR upstream sessions accept paths containing the (reused) ToR
        // ASN of a sibling rack (§2.1); everyone else rejects own-ASN
        // paths.
        if (std::find(path.begin(), path.end(), d.asn) != path.end()) {
          return;
        }
      }

      ++state.routes_propagated;
      state.candidates.push_back(
          Candidate{.prefix = entry.prefix,
                    .neighbor = n.id,
                    .path_id = path_id,
                    .path = path,
                    .origin_datacenter = entry.origin_datacenter});
    };

    if (dirty == nullptr) {
      for (const RibEntry& entry : ribs_[n.id]) consider(entry);
    } else {
      // Monotone merge of the sorted dirty set against the neighbor's
      // sorted entries: linear two-pointer when the dirty set is a big
      // fraction of the RIB (early cold rounds), binary-search skips when
      // it is narrow (warm reconvergence tails).
      const auto& neighbor_entries = ribs_[n.id].entries();
      if (dirty->size() * 8 >= neighbor_entries.size()) {
        auto dit = dirty->begin();
        for (const RibEntry& entry : neighbor_entries) {
          while (dit != dirty->end() && *dit < entry.prefix) ++dit;
          if (dit == dirty->end()) break;
          if (*dit == entry.prefix) consider(entry);
        }
      } else {
        auto eit = neighbor_entries.begin();
        for (const net::Prefix& p : *dirty) {
          eit = std::lower_bound(eit, neighbor_entries.end(), p,
                                 [](const RibEntry& e, const net::Prefix& pp) {
                                   return e.prefix < pp;
                                 });
          if (eit == neighbor_entries.end()) break;
          if (eit->prefix == p) consider(*eit++);
        }
      }
    }
  }

  std::sort(state.candidates.begin(), state.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.prefix < b.prefix;
            });

  // Best-path selection per prefix group: shortest AS-path wins, ECMP
  // across all equally-short neighbors, deterministic (lexicographically
  // least) representative path. Locally originated entries always win.
  for (std::size_t i = 0; i < state.candidates.size();) {
    std::size_t j = i;
    while (j < state.candidates.size() &&
           state.candidates[j].prefix == state.candidates[i].prefix) {
      ++j;
    }
    const net::Prefix prefix = state.candidates[i].prefix;
    bool owned = false;
    for (std::size_t c = 0; c < connected_count; ++c) {
      if (fresh.entries()[c].prefix == prefix) {
        owned = true;
        break;
      }
    }
    if (!owned) {
      std::size_t best_len = SIZE_MAX;
      for (std::size_t k = i; k < j; ++k) {
        best_len = std::min(best_len, state.candidates[k].path.size());
      }
      state.hops_scratch.clear();
      std::span<const Asn> chosen;
      PathId chosen_id = kEmptyPathId;
      bool have_chosen = false;
      topo::DatacenterId origin = 0;
      for (std::size_t k = i; k < j; ++k) {
        const Candidate& c = state.candidates[k];
        if (c.path.size() != best_len) continue;
        state.hops_scratch.push_back(c.neighbor);
        if (!have_chosen ||
            std::ranges::lexicographical_compare(c.path, chosen)) {
          chosen = c.path;
          chosen_id = c.path_id;
          origin = c.origin_datacenter;
          have_chosen = true;
        }
      }
      canonicalize(state.hops_scratch);
      // Prepend our own ASN; memoized on (asn, chosen path) since prefix
      // groups across devices overwhelmingly select the same paths.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(d.asn) << 32) | chosen_id;
      const auto [it, inserted] = state.prepend_memo.try_emplace(key, 0);
      if (inserted) {
        state.path_scratch.clear();
        state.path_scratch.reserve(chosen.size() + 1);
        state.path_scratch.push_back(d.asn);
        state.path_scratch.insert(state.path_scratch.end(), chosen.begin(),
                                  chosen.end());
        it->second = table.intern(state.path_scratch);
      }
      fresh.append(prefix, it->second, state.hops_scratch,
                   /*connected=*/false, origin);
    }
    i = j;
  }

  // Change detection happens here in the worker (parallel) rather than in
  // the single-threaded commit. Unchanged devices — the common case on a
  // settling wave — leave `out` untouched and keep their scratch storage.
  fresh.sort_by_prefix();
  const Rib& old = ribs_[d.id];
  if (dirty == nullptr) {
    if (fresh == old) return false;
  } else {
    // `fresh` holds exactly the surviving dirty-prefix routes; compare
    // against the old entries restricted to the dirty set.
    bool device_changed = false;
    auto dit = dirty->begin();
    auto fit = fresh.begin();
    for (const RibEntry& old_entry : old) {
      if (fit != fresh.end() && fit->prefix < old_entry.prefix) {
        device_changed = true;  // route appeared for a prefix the device lacked
        break;
      }
      while (dit != dirty->end() && *dit < old_entry.prefix) ++dit;
      if (dit == dirty->end() || *dit != old_entry.prefix) continue;
      if (fit == fresh.end() || fit->prefix != old_entry.prefix ||
          !Rib::entry_equal(old, old_entry, fresh, *fit)) {
        device_changed = true;  // route withdrawn or modified
        break;
      }
      ++fit;
    }
    if (!device_changed && fit != fresh.end()) {
      device_changed = true;  // trailing adds
    }
    if (!device_changed) return false;
  }
  out = std::move(fresh);
  return true;
}

void BgpSimulator::publish_metrics(int rounds, bool warm) {
  if (metrics_ == nullptr) return;
  if (warm) {
    reconverge_hist_->observe(static_cast<std::uint64_t>(rounds));
  } else {
    rounds_hist_->observe(static_cast<std::uint64_t>(rounds));
  }
  std::uint64_t routes = 0;
  for (const auto& worker : workers_) {
    routes += worker->routes_propagated;
  }
  routes_counter_->inc(routes);
  paths_gauge_->set(static_cast<double>(global_path_table().size()));
}

}  // namespace dcv::routing
