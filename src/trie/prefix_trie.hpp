#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dcv::trie {

/// A binary trie keyed by CIDR prefixes, consuming address bits from the
/// most significant bit down. Each stored prefix lives at depth
/// prefix.length(); the default route 0.0.0.0/0 labels the root (§2.5.2).
///
/// The structure supports the two queries the specialized contract checker
/// needs:
///  * longest-prefix match of a single address (FIB semantics), and
///  * the *related set* of a range C: every stored prefix that contains C
///    or is contained in C — exactly the candidate rules
///    { r | C.range ⊆ r.prefix ∨ r.prefix ⊆ C.range } of §2.5.2. Because
///    keys are proper prefixes, the related set is one root-to-range path
///    plus one subtree, so collection touches only useful nodes.
///
/// Nodes are pooled in a contiguous arena of 12-byte traversal records;
/// payloads live out-of-line in a parallel value arena so walking the trie
/// never drags values through the cache. clear() retains both arenas: a
/// verifier that rebuilds one trie per device amortizes allocation to zero
/// in steady state.
template <typename T>
class PrefixTrie {
 public:
  /// One related-set result: the stored prefix and its value.
  using Entry = std::pair<net::Prefix, const T*>;

  PrefixTrie() { nodes_.emplace_back(); }

  /// Pre-sizes the node arena (and the value arena to the same bound).
  void reserve(std::size_t nodes) {
    nodes_.reserve(nodes);
    values_.reserve(nodes);
  }

  /// Removes every stored prefix but keeps both arenas' capacity, so the
  /// next build into this trie allocates nothing once the arena has grown
  /// to the working-set size.
  void clear() {
    nodes_.clear();
    values_.clear();
    nodes_.emplace_back();
  }

  /// Inserts (or replaces) the value stored at `prefix`.
  void insert(const net::Prefix& prefix, T value) {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = prefix.bit(depth) ? 1 : 0;
      std::int32_t next = nodes_[node].child[bit];
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_[node].child[bit] = next;
        nodes_.emplace_back();
      }
      node = next;
    }
    const std::int32_t slot = nodes_[node].value_index;
    if (slot < 0) {
      nodes_[node].value_index = static_cast<std::int32_t>(values_.size());
      values_.push_back(std::move(value));
    } else {
      values_[static_cast<std::size_t>(slot)] = std::move(value);
    }
  }

  /// The value stored exactly at `prefix`, or nullptr.
  [[nodiscard]] const T* find(const net::Prefix& prefix) const {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = nodes_[node].child[prefix.bit(depth) ? 1 : 0];
      if (node < 0) return nullptr;
    }
    return value_of(node);
  }

  /// Longest-prefix-match lookup: the value whose prefix is the longest one
  /// containing `address`, or nullptr when nothing matches.
  [[nodiscard]] const T* longest_match(net::Ipv4Address address) const {
    const T* best = nullptr;
    std::int32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (const T* value = value_of(node); value != nullptr) best = value;
      if (depth == 32) break;
      node = nodes_[node].child[address.bit(depth) ? 1 : 0];
      if (node < 0) break;
    }
    return best;
  }

  /// Collects every stored (prefix, value) related to `range`: containing
  /// it (ancestors on the path to `range`, including an entry at `range`
  /// itself) or contained in it (the subtree below `range`). Order is
  /// ancestors first, then subtree in depth-first order; callers needing
  /// the paper's descending-prefix-length order use related_ordered().
  [[nodiscard]] std::vector<Entry> related(const net::Prefix& range) const {
    std::vector<Entry> out;
    collect_related(range, out);
    return out;
  }

  /// The related set of `range` in the §2.5.2 walk order — descending
  /// prefix length, ties in ascending prefix order — produced by a 33-way
  /// counting sort over depths instead of a comparison sort. `out` receives
  /// the result; `scratch` is caller-retained workspace, so a caller that
  /// keeps both buffers across queries allocates nothing in steady state.
  void related_ordered(const net::Prefix& range, std::vector<Entry>& out,
                       std::vector<Entry>& scratch) const {
    scratch.clear();
    collect_related(range, scratch);
    out.clear();
    out.resize(scratch.size());
    std::size_t offsets[33] = {};
    for (const Entry& entry : scratch) {
      ++offsets[32 - entry.first.length()];
    }
    std::size_t at = 0;
    for (int bucket = 0; bucket <= 32; ++bucket) {
      const std::size_t count = offsets[bucket];
      offsets[bucket] = at;
      at += count;
    }
    // Stable placement: depth-first collection visits same-length prefixes
    // in ascending order, and the counting sort preserves that order within
    // each length bucket — exactly the old comparator's tie-break.
    for (Entry& entry : scratch) {
      out[offsets[32 - entry.first.length()]++] = std::move(entry);
    }
  }

  /// Visits every stored (prefix, value) in depth-first order.
  template <typename F>
  void visit_all(F&& visit) const {
    std::vector<Entry> all;
    collect_subtree(0, 0, 0, all);
    for (const auto& [prefix, value] : all) visit(prefix, *value);
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Arena introspection for the dcv_trie_* reuse metrics.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t node_capacity() const {
    return nodes_.capacity();
  }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    /// Index into the value arena; -1 when no prefix ends at this node.
    std::int32_t value_index = -1;
  };

  [[nodiscard]] const T* value_of(std::int32_t node) const {
    const std::int32_t slot = nodes_[node].value_index;
    return slot < 0 ? nullptr : &values_[static_cast<std::size_t>(slot)];
  }

  void collect_related(const net::Prefix& range,
                       std::vector<Entry>& out) const {
    std::int32_t node = 0;
    std::uint32_t bits = 0;
    for (int depth = 0; depth < range.length(); ++depth) {
      if (const T* value = value_of(node); value != nullptr) {
        out.emplace_back(net::Prefix(net::Ipv4Address(bits), depth), value);
      }
      const int bit = range.bit(depth) ? 1 : 0;
      if (bit != 0) bits |= (std::uint32_t{1} << (31 - depth));
      node = nodes_[node].child[bit];
      if (node < 0) return;
    }
    collect_subtree(node, bits, range.length(), out);
  }

  void collect_subtree(std::int32_t node, std::uint32_t bits, int depth,
                       std::vector<Entry>& out) const {
    if (const T* value = value_of(node); value != nullptr) {
      out.emplace_back(net::Prefix(net::Ipv4Address(bits), depth), value);
    }
    if (depth == 32) return;
    if (const auto left = nodes_[node].child[0]; left >= 0) {
      collect_subtree(left, bits, depth + 1, out);
    }
    if (const auto right = nodes_[node].child[1]; right >= 0) {
      collect_subtree(right, bits | (std::uint32_t{1} << (31 - depth)),
                      depth + 1, out);
    }
  }

  std::vector<Node> nodes_;
  std::vector<T> values_;
};

}  // namespace dcv::trie
