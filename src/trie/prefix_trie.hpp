#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dcv::trie {

/// A binary trie keyed by CIDR prefixes, consuming address bits from the
/// most significant bit down. Each stored prefix lives at depth
/// prefix.length(); the default route 0.0.0.0/0 labels the root (§2.5.2).
///
/// The structure supports the two queries the specialized contract checker
/// needs:
///  * longest-prefix match of a single address (FIB semantics), and
///  * the *related set* of a range C: every stored prefix that contains C
///    or is contained in C — exactly the candidate rules
///    { r | C.range ⊆ r.prefix ∨ r.prefix ⊆ C.range } of §2.5.2. Because
///    keys are proper prefixes, the related set is one root-to-range path
///    plus one subtree, so collection touches only useful nodes.
///
/// Nodes are pooled in a contiguous arena; the trie grows but never shrinks.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts (or replaces) the value stored at `prefix`.
  void insert(const net::Prefix& prefix, T value) {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = prefix.bit(depth) ? 1 : 0;
      std::int32_t next = nodes_[node].child[bit];
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_[node].child[bit] = next;
        nodes_.emplace_back();
      }
      node = next;
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// The value stored exactly at `prefix`, or nullptr.
  [[nodiscard]] const T* find(const net::Prefix& prefix) const {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = nodes_[node].child[prefix.bit(depth) ? 1 : 0];
      if (node < 0) return nullptr;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  /// Longest-prefix-match lookup: the value whose prefix is the longest one
  /// containing `address`, or nullptr when nothing matches.
  [[nodiscard]] const T* longest_match(net::Ipv4Address address) const {
    const T* best = nullptr;
    std::int32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value) best = &*nodes_[node].value;
      if (depth == 32) break;
      node = nodes_[node].child[address.bit(depth) ? 1 : 0];
      if (node < 0) break;
    }
    return best;
  }

  /// Collects every stored (prefix, value) related to `range`: containing
  /// it (ancestors on the path to `range`, including an entry at `range`
  /// itself) or contained in it (the subtree below `range`). Order is
  /// ancestors first, then subtree in depth-first order; callers needing
  /// the paper's descending-prefix-length order sort the result.
  [[nodiscard]] std::vector<std::pair<net::Prefix, const T*>> related(
      const net::Prefix& range) const {
    std::vector<std::pair<net::Prefix, const T*>> out;
    std::int32_t node = 0;
    std::uint32_t bits = 0;
    for (int depth = 0; depth < range.length(); ++depth) {
      if (nodes_[node].value) {
        out.emplace_back(
            net::Prefix(net::Ipv4Address(bits), depth), &*nodes_[node].value);
      }
      const int bit = range.bit(depth) ? 1 : 0;
      if (bit != 0) bits |= (std::uint32_t{1} << (31 - depth));
      node = nodes_[node].child[bit];
      if (node < 0) return out;
    }
    collect_subtree(node, bits, range.length(), out);
    return out;
  }

  /// Visits every stored (prefix, value) in depth-first order.
  template <typename F>
  void visit_all(F&& visit) const {
    std::vector<std::pair<net::Prefix, const T*>> all;
    collect_subtree(0, 0, 0, all);
    for (const auto& [prefix, value] : all) visit(prefix, *value);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::optional<T> value;
  };

  void collect_subtree(
      std::int32_t node, std::uint32_t bits, int depth,
      std::vector<std::pair<net::Prefix, const T*>>& out) const {
    if (nodes_[node].value) {
      out.emplace_back(net::Prefix(net::Ipv4Address(bits), depth),
                       &*nodes_[node].value);
    }
    if (depth == 32) return;
    if (const auto left = nodes_[node].child[0]; left >= 0) {
      collect_subtree(left, bits, depth + 1, out);
    }
    if (const auto right = nodes_[node].child[1]; right >= 0) {
      collect_subtree(right, bits | (std::uint32_t{1} << (31 - depth)),
                      depth + 1, out);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace dcv::trie
