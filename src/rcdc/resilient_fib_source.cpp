#include "rcdc/resilient_fib_source.hpp"

#include <algorithm>
#include <thread>

namespace dcv::rcdc {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::chrono::steady_clock::time_point SystemFetchClock::now() {
  return std::chrono::steady_clock::now();
}

void SystemFetchClock::sleep_for(std::chrono::nanoseconds duration) {
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

std::chrono::steady_clock::time_point ManualFetchClock::now() {
  const std::lock_guard lock(mutex_);
  return now_;
}

void ManualFetchClock::sleep_for(std::chrono::nanoseconds duration) {
  advance(duration);
}

void ManualFetchClock::advance(std::chrono::nanoseconds duration) {
  const std::lock_guard lock(mutex_);
  if (duration.count() > 0) now_ += duration;
}

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

ResilientFibSource::ResilientFibSource(const FibSource& inner,
                                       ResilienceConfig config,
                                       FetchClock* clock)
    : inner_(&inner), config_(config), clock_(clock) {
  if (clock_ == nullptr) clock_ = &system_clock_;
  config_.retry.max_attempts = std::max(1u, config_.retry.max_attempts);
  config_.breaker.failure_threshold =
      std::max(1u, config_.breaker.failure_threshold);
  if (obs::MetricsRegistry* registry = config_.metrics;
      registry != nullptr) {
    attempts_hist_ = &registry->histogram(
        "dcv_fetch_attempts", "Pull attempts needed per fetch");
    attempts_total_ = &registry->counter("dcv_fetch_attempts_total",
                                         "Total pull attempts issued");
    retries_total_ = &registry->counter(
        "dcv_fetch_retries_total", "Pull attempts beyond the first");
    backoff_sleep_ns_total_ = &registry->counter(
        "dcv_fetch_backoff_sleep_ns_total",
        "Total time slept in retry backoff");
    deadline_hits_total_ = &registry->counter(
        "dcv_fetch_deadline_hits_total",
        "Retry loops cut short by the per-fetch deadline");
    stale_served_total_ = &registry->counter(
        "dcv_fetch_stale_served_total",
        "Fetches answered from the stale-table cache");
    short_circuits_total_ = &registry->counter(
        "dcv_fetch_short_circuits_total",
        "Fetches short-circuited by an open breaker");
    breaker_to_open_ = &registry->counter(
        "dcv_fetch_breaker_transitions_total",
        "Circuit-breaker transitions, by target state",
        {{"to", "open"}});
    breaker_to_half_open_ = &registry->counter(
        "dcv_fetch_breaker_transitions_total",
        "Circuit-breaker transitions, by target state",
        {{"to", "half_open"}});
    breaker_to_closed_ = &registry->counter(
        "dcv_fetch_breaker_transitions_total",
        "Circuit-breaker transitions, by target state",
        {{"to", "closed"}});
  }
}

std::chrono::nanoseconds ResilientFibSource::backoff_before(
    topo::DeviceId device, std::uint32_t attempt) const {
  const RetryPolicy& retry = config_.retry;
  double backoff_ns = static_cast<double>(retry.initial_backoff.count());
  for (std::uint32_t i = 1; i < attempt; ++i) {
    backoff_ns *= retry.backoff_multiplier;
  }
  backoff_ns = std::min(backoff_ns,
                        static_cast<double>(retry.max_backoff.count()));
  const double u = to_unit(
      mix(mix(config_.seed ^ (device + 1)) ^ (attempt + 0x51ull)));
  const double jitter = std::clamp(retry.jitter, 0.0, 1.0);
  backoff_ns *= 1.0 - jitter + 2.0 * jitter * u;
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(std::max(0.0, backoff_ns)));
}

FetchOutcome ResilientFibSource::try_fetch(topo::DeviceId device) const {
  const auto now = clock_->now();
  bool probing = false;

  // Builds the outcome for a fetch refused by an open (or probe-busy)
  // breaker: the device is never contacted; the stale cache may still
  // answer. Caller must hold mutex_.
  const auto short_circuit = [&](DeviceState& st) {
    ++stats_.short_circuits;
    if (short_circuits_total_ != nullptr) short_circuits_total_->inc();
    FetchOutcome out = FetchOutcome::failure(FetchErrorKind::kUnreachable);
    out.attempts = 0;
    out.breaker_open = true;
    if (config_.serve_stale && st.has_cache) {
      out.table = st.cached_table;
      out.stale = true;
      out.staleness = now - st.cached_at;
      ++stats_.stale_served;
      if (stale_served_total_ != nullptr) stale_served_total_->inc();
    }
    return out;
  };

  {
    const std::lock_guard lock(mutex_);
    ++stats_.fetches;
    DeviceState& st = state_[device];
    if (st.breaker == BreakerState::kOpen) {
      if (now - st.opened_at < config_.breaker.cool_down) {
        return short_circuit(st);
      }
      st.breaker = BreakerState::kHalfOpen;
      if (breaker_to_half_open_ != nullptr) breaker_to_half_open_->inc();
    }
    if (st.breaker == BreakerState::kHalfOpen) {
      if (st.probe_inflight) return short_circuit(st);
      st.probe_inflight = true;
      probing = true;
      ++stats_.half_open_probes;
    }
  }

  // Attempt loop with exponential backoff + jitter under the per-fetch
  // deadline. A half-open probe gets a single attempt: its job is to test
  // the device, not to burn the retry budget.
  const auto start = clock_->now();
  const std::uint32_t budget = probing ? 1u : config_.retry.max_attempts;
  std::uint32_t attempts = 0;
  bool deadline_hit = false;
  std::uint64_t backoff_slept_ns = 0;
  FetchOutcome last;
  while (true) {
    ++attempts;
    last = inner_->try_fetch(device);
    if (last.ok()) break;
    if (attempts >= budget) break;
    const auto backoff = backoff_before(device, attempts);
    if (clock_->now() + backoff - start > config_.retry.fetch_deadline) {
      deadline_hit = true;
      break;
    }
    clock_->sleep_for(backoff);
    backoff_slept_ns += static_cast<std::uint64_t>(backoff.count());
  }
  if (attempts_hist_ != nullptr) {
    attempts_hist_->observe(attempts);
    attempts_total_->inc(attempts);
    if (attempts > 1) retries_total_->inc(attempts - 1);
    if (backoff_slept_ns > 0) backoff_sleep_ns_total_->inc(backoff_slept_ns);
    if (deadline_hit) deadline_hits_total_->inc();
  }

  if (last.ok()) {
    const std::lock_guard lock(mutex_);
    stats_.retries += attempts - 1;
    DeviceState& st = state_[device];
    if (st.breaker != BreakerState::kClosed &&
        breaker_to_closed_ != nullptr) {
      breaker_to_closed_->inc();
    }
    st.breaker = BreakerState::kClosed;
    st.consecutive_failures = 0;
    st.probe_inflight = false;
    st.has_cache = true;
    st.cached_table = *last.table;
    st.cached_at = clock_->now();
    last.attempts = attempts;
    return last;
  }

  // Exhausted: advance the breaker and fall back to the stale cache. The
  // last good table beats fresh garbage, so a cached table also replaces a
  // truncated/corrupted one (the error kind is kept for accounting).
  bool tripped = false;
  {
    const std::lock_guard lock(mutex_);
    stats_.retries += attempts - 1;
    ++stats_.exhausted;
    if (deadline_hit) ++stats_.deadline_hits;
    DeviceState& st = state_[device];
    if (probing) {
      st.breaker = BreakerState::kOpen;
      st.opened_at = clock_->now();
      st.probe_inflight = false;
      ++stats_.breaker_opens;
      tripped = true;
    } else {
      ++st.consecutive_failures;
      if (st.breaker == BreakerState::kClosed &&
          st.consecutive_failures >= config_.breaker.failure_threshold) {
        st.breaker = BreakerState::kOpen;
        st.opened_at = clock_->now();
        ++stats_.breaker_opens;
        tripped = true;
      }
    }
    if (tripped && breaker_to_open_ != nullptr) breaker_to_open_->inc();
    if (config_.serve_stale && st.has_cache) {
      last.table = st.cached_table;
      last.stale = true;
      last.staleness = clock_->now() - st.cached_at;
      ++stats_.stale_served;
      if (stale_served_total_ != nullptr) stale_served_total_->inc();
    }
  }
  last.attempts = attempts;
  last.breaker_tripped = tripped;
  return last;
}

routing::ForwardingTable ResilientFibSource::fetch(
    topo::DeviceId device) const {
  FetchOutcome outcome = try_fetch(device);
  if (outcome.has_table()) return std::move(*outcome.table);
  throw FetchError(*outcome.error,
                   "fetch failed for device " + std::to_string(device) +
                       " after " + std::to_string(outcome.attempts) +
                       " attempts: " + std::string(to_string(*outcome.error)));
}

ResilienceStats ResilientFibSource::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

BreakerState ResilientFibSource::breaker_state(topo::DeviceId device) const {
  const std::lock_guard lock(mutex_);
  const auto it = state_.find(device);
  return it == state_.end() ? BreakerState::kClosed : it->second.breaker;
}

}  // namespace dcv::rcdc
