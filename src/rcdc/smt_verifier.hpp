#pragma once

#include <optional>

#include "rcdc/verifier.hpp"

namespace dcv::rcdc {

/// The default engine of §2.5.1: policies and contracts are encoded in
/// bit-vector logic and violations extracted via satisfiability checking
/// with Z3. It is the flexible engine — slower than the trie engine but
/// able to answer arbitrary queries about a policy.
///
/// check() reports the complete list of violating rules by issuing one
/// reachability query per candidate rule whose next hops disagree with the
/// contract: rule r_i violates contract C iff
///
///   C.range(x) ∧ r_i.prefix(x) ∧ ⋀_{j: |r_j| > |r_i|} ¬r_j.prefix(x)
///
/// is satisfiable (r_i is the longest-prefix match of some address in the
/// range), matching the trie engine's semantics exactly.
///
/// check_contract_monolithic() is the paper-literal single-formula variant:
/// the whole policy is folded into one if-then-else chain per
/// Definition 2.1 with one Boolean per next hop, and the contract is
/// checked with a single (un)satisfiability query. It answers *whether* a
/// contract holds (with one witness) rather than listing every violating
/// rule; the ablation benchmark compares the two against the trie engine.
class SmtVerifier final : public Verifier {
 public:
  SmtVerifier() = default;

  [[nodiscard]] std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) override;

  /// Single-query Definition 2.1 encoding; returns the first violation
  /// found, if any.
  [[nodiscard]] std::optional<Violation> check_contract_monolithic(
      const routing::ForwardingTable& fib, const Contract& contract,
      topo::DeviceId device);
};

}  // namespace dcv::rcdc
