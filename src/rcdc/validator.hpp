#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/verifier.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// Creates one verifier per worker thread (verifiers are stateful during a
/// check and not shared across threads).
using VerifierFactory = std::function<std::unique_ptr<Verifier>()>;

/// Result of validating a whole datacenter.
struct ValidationSummary {
  std::size_t devices_checked = 0;
  std::size_t contracts_checked = 0;
  /// Devices whose fetch produced no table (retries exhausted without a
  /// stale fallback, or skipped by an open circuit breaker): excluded from
  /// the violation report, counted against coverage.
  std::size_t devices_failed = 0;
  /// Devices validated against a stale cached table.
  std::size_t devices_stale = 0;
  /// Extra pull attempts beyond the first, summed over all devices.
  std::size_t retries = 0;
  /// Circuit-breaker open transitions observed during the run.
  std::size_t breaker_opens = 0;
  /// Violations found on degraded tables (stale or truncated/corrupted);
  /// they also appear in `violations` but warrant fresh-pull confirmation.
  std::size_t violations_degraded = 0;
  std::vector<Violation> violations;
  std::chrono::nanoseconds elapsed{0};

  /// Fraction of devices that produced a table (fresh or stale).
  [[nodiscard]] double coverage() const {
    return devices_checked == 0
               ? 1.0
               : static_cast<double>(devices_checked - devices_failed) /
                     static_cast<double>(devices_checked);
  }
};

/// Validates every device of a datacenter against its generated contracts.
///
/// This is the embodiment of the paper's local-validation claim: each
/// device is fetched, contract-generated, and verified *independently* — no
/// global snapshot is ever materialized — so work parallelizes trivially
/// across `threads` workers and memory stays O(1 device) per worker
/// regardless of datacenter size (§2.4: "we can parallelize validation and
/// thus scale").
class DatacenterValidator {
 public:
  /// `metrics`, when non-null (must outlive the validator), receives the
  /// dcv_validator_* series from every run(): fetch/validate latency
  /// histograms, per-result device counters, coverage, and retry/breaker
  /// counters.
  DatacenterValidator(const topo::MetadataService& metadata,
                      const FibSource& fibs, VerifierFactory verifier_factory,
                      ContractGenOptions options = {},
                      obs::MetricsRegistry* metrics = nullptr);

  /// Runs validation over all devices (or a subset) with the given level of
  /// parallelism. Violations are reported in device-id order.
  ///
  /// Fetches go through FibSource::try_fetch: a device whose pull fails is
  /// counted in devices_failed and skipped — the run completes with partial
  /// coverage instead of propagating the failure.
  [[nodiscard]] ValidationSummary run(unsigned threads = 1) const;
  [[nodiscard]] ValidationSummary run(std::span<const topo::DeviceId> devices,
                                      unsigned threads) const;

 private:
  const topo::MetadataService* metadata_;
  const FibSource* fibs_;
  VerifierFactory verifier_factory_;
  ContractGenerator generator_;

  // Registry handles; all null when the validator is not instrumented.
  obs::Histogram* fetch_latency_ns_ = nullptr;
  obs::Histogram* validate_latency_ns_ = nullptr;
  obs::Counter* devices_fresh_ = nullptr;
  obs::Counter* devices_stale_ = nullptr;
  obs::Counter* devices_failed_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* breaker_opens_total_ = nullptr;
  obs::Counter* violations_total_ = nullptr;
  obs::Gauge* coverage_ = nullptr;
};

/// Convenience factories for the three engines. When `metrics` is non-null
/// (it must outlive every verifier the factory creates), each produced
/// verifier records dcv_verifier_check_ns and
/// dcv_verifier_contracts_checked_total labeled {engine="trie"|"smt"|
/// "linear"}; the trie engine additionally samples
/// dcv_verifier_rules_walked{engine="trie"} per specific contract.
[[nodiscard]] VerifierFactory make_trie_verifier_factory(
    obs::MetricsRegistry* metrics = nullptr);

/// Convenience factory for the Z3 engine.
[[nodiscard]] VerifierFactory make_smt_verifier_factory(
    obs::MetricsRegistry* metrics = nullptr);

/// Convenience factory for the linear-scan ablation baseline.
[[nodiscard]] VerifierFactory make_linear_verifier_factory(
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace dcv::rcdc
