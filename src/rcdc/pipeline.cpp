#include "rcdc/pipeline.hpp"

#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "rcdc/incremental.hpp"
#include "rcdc/notification_queue.hpp"

namespace dcv::rcdc {

namespace {

/// Cycle correlation ids are process-unique (not per-pipeline), so several
/// pipelines sharing one trace ring never alias each other's cycles.
std::atomic<std::uint64_t> g_next_cycle_id{1};

struct Notification {
  topo::DeviceId device = topo::kInvalidDevice;
  routing::ForwardingTable fib;
  std::chrono::nanoseconds simulated_fetch{0};
  /// The table is degraded (stale fallback or truncated/corrupted pull):
  /// violations found on it are reported at degraded confidence.
  bool degraded = false;
  /// When the puller enqueued this notification (for queue-wait metrics).
  std::chrono::steady_clock::time_point enqueued_at{};
};

/// Per-cycle handles into the registry; all null when metrics are off, so
/// the hot paths pay one branch per record and nothing else.
struct CycleMetrics {
  obs::Histogram* fetch_latency_ns = nullptr;
  obs::Histogram* fetch_sim_ns = nullptr;
  obs::Histogram* validate_latency_ns = nullptr;
  obs::Histogram* queue_wait_ns = nullptr;
  obs::Histogram* queue_push_block_ns = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* coverage = nullptr;
  obs::Counter* cycles_total = nullptr;
  obs::Counter* devices_fresh = nullptr;
  obs::Counter* devices_stale = nullptr;
  obs::Counter* devices_failed = nullptr;
  obs::Counter* retries_total = nullptr;
  obs::Counter* breaker_opens_total = nullptr;
  obs::Counter* violations_total = nullptr;
  obs::Histogram* fingerprint_ns = nullptr;
  obs::Counter* devices_revalidated = nullptr;
  obs::Counter* devices_skipped = nullptr;
  obs::Gauge* revalidation_ratio = nullptr;

  explicit CycleMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    fetch_latency_ns = &registry->histogram(
        "dcv_pipeline_fetch_latency_ns",
        "Per-device table acquisition wall time (scaled sleep + pull)");
    fetch_sim_ns = &registry->histogram(
        "dcv_pipeline_fetch_sim_ns",
        "Per-device simulated (production-magnitude) fetch latency");
    validate_latency_ns = &registry->histogram(
        "dcv_pipeline_validate_latency_ns",
        "Per-device contract validation time");
    queue_wait_ns = &registry->histogram(
        "dcv_pipeline_queue_wait_ns",
        "Time a notification spent in the puller->validator queue");
    queue_push_block_ns = &registry->histogram(
        "dcv_pipeline_queue_push_block_ns",
        "Time a puller spent blocked on a full notification queue");
    queue_depth = &registry->gauge("dcv_pipeline_queue_depth",
                                   "Notification queue depth (sampled)");
    coverage = &registry->gauge(
        "dcv_pipeline_coverage",
        "Fraction of devices that produced a table in the latest cycle");
    cycles_total = &registry->counter("dcv_pipeline_cycles_total",
                                      "Monitoring cycles completed");
    devices_fresh =
        &registry->counter("dcv_pipeline_devices_total",
                           "Devices processed, by pull result",
                           {{"result", "fresh"}});
    devices_stale =
        &registry->counter("dcv_pipeline_devices_total",
                           "Devices processed, by pull result",
                           {{"result", "stale"}});
    devices_failed =
        &registry->counter("dcv_pipeline_devices_total",
                           "Devices processed, by pull result",
                           {{"result", "failed"}});
    retries_total = &registry->counter(
        "dcv_pipeline_retries_total",
        "Extra pull attempts beyond the first, summed over devices");
    breaker_opens_total = &registry->counter(
        "dcv_pipeline_breaker_opens_total",
        "Circuit-breaker open transitions observed by pullers");
    violations_total = &registry->counter("dcv_pipeline_violations_total",
                                          "Contract violations found");
    fingerprint_ns = &registry->histogram(
        "dcv_incremental_fingerprint_ns",
        "Time to fingerprint one device's forwarding table");
    devices_revalidated = &registry->counter(
        "dcv_incremental_devices_revalidated_total",
        "Devices re-verified because their FIB fingerprint changed");
    devices_skipped = &registry->counter(
        "dcv_incremental_devices_skipped_total",
        "Devices whose cached verdicts were reused (fingerprint unchanged)");
    revalidation_ratio = &registry->gauge(
        "dcv_incremental_revalidation_ratio",
        "Fraction of devices re-verified in the latest cycle");
  }
};

}  // namespace

MonitoringPipeline::MonitoringPipeline(const topo::MetadataService& metadata,
                                       const FibSource& fibs,
                                       VerifierFactory verifier_factory,
                                       PipelineConfig config)
    : metadata_(&metadata),
      fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      config_(config),
      generator_(metadata) {}

PipelineStats MonitoringPipeline::run_cycle() {
  const auto start = std::chrono::steady_clock::now();
  PipelineStats stats;
  CycleMetrics metrics(config_.metrics);
  const std::uint64_t cycle_id =
      g_next_cycle_id.fetch_add(1, std::memory_order_relaxed);
  cycle_in_progress_.store(true, std::memory_order_relaxed);
  const obs::CycleScope cycle_scope(cycle_id);
  obs::Span cycle_span("cycle", nullptr, config_.trace);

  // Stage 1 — device contract generator: capture this cycle's immutable
  // contract plan. In steady state the plan is cached for the current
  // topology epoch, so this is a lock + pointer copy rather than a full
  // regeneration; a concurrent epoch bump can only affect the *next*
  // cycle's plan, never the one captured here.
  obs::Span contracts_span("contracts", nullptr, config_.trace);
  const ContractPlanPtr plan = generator_.plan();
  if (config_.incremental && plan->epoch() != plan_epoch_) {
    // Contracts may have changed for any device: every cached verdict is
    // stale, and the per-device state tracks the new device count.
    plan_epoch_ = plan->epoch();
    fingerprints_.assign(metadata_->topology().device_count(), 0);
    cached_violations_.assign(metadata_->topology().device_count(), {});
  }
  std::vector<topo::DeviceId> devices;
  for (const DeviceContracts& entry : plan->devices()) {
    if (!entry.contracts.empty()) devices.push_back(entry.device);
  }
  contracts_span.stop();
  stats.devices = devices.size();

  NotificationQueue<Notification> queue(config_.queue_capacity);
  std::atomic<std::size_t> next_device{0};
  std::atomic<std::uint64_t> fetch_sim_total_ns{0};
  std::atomic<std::uint64_t> fetch_scaled_total_ns{0};
  std::atomic<std::uint64_t> validate_total_ns{0};
  std::atomic<std::size_t> contracts_checked{0};
  std::atomic<std::size_t> violation_count{0};
  std::atomic<std::size_t> alerts_high{0};
  std::atomic<std::size_t> alerts_low{0};
  std::atomic<std::size_t> violations_degraded{0};
  std::atomic<std::size_t> devices_failed{0};
  std::atomic<std::size_t> devices_stale{0};
  std::atomic<std::size_t> devices_revalidated{0};
  std::atomic<std::size_t> devices_skipped{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> breaker_opens{0};
  std::mutex sink_mutex;
  const RiskPolicy risk(metadata_->topology());

  // Stage 2 — routing-table puller: fetch each device's table (with the
  // production fetch latency, scaled) and post a notification. A failed
  // fetch costs the cycle coverage, never the cycle.
  const auto puller = [&](unsigned worker) {
    const obs::CycleScope cycle_tag(cycle_id);
    std::mt19937_64 rng(config_.seed * 1315423911u + worker);
    std::uniform_int_distribution<std::int64_t> latency_us(
        config_.fetch_latency_min.count(), config_.fetch_latency_max.count());
    while (true) {
      const std::size_t i =
          next_device.fetch_add(1, std::memory_order_relaxed);
      if (i >= devices.size()) break;
      const auto simulated = std::chrono::microseconds(latency_us(rng));
      const auto scaled = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::micro>(
              static_cast<double>(simulated.count())) *
          config_.time_scale);
      obs::Span fetch_span("fetch", metrics.fetch_latency_ns, config_.trace);
      if (scaled.count() > 0) std::this_thread::sleep_for(scaled);
      FetchOutcome outcome = fibs_->try_fetch(devices[i]);
      fetch_span.stop();
      if (outcome.attempts > 1) {
        retries.fetch_add(outcome.attempts - 1, std::memory_order_relaxed);
        if (metrics.retries_total != nullptr) {
          metrics.retries_total->inc(outcome.attempts - 1);
        }
      }
      if (outcome.breaker_tripped) {
        breaker_opens.fetch_add(1, std::memory_order_relaxed);
        if (metrics.breaker_opens_total != nullptr) {
          metrics.breaker_opens_total->inc();
        }
      }
      if (!outcome.has_table()) {
        devices_failed.fetch_add(1, std::memory_order_relaxed);
        if (metrics.devices_failed != nullptr) metrics.devices_failed->inc();
        continue;
      }
      if (outcome.stale) {
        devices_stale.fetch_add(1, std::memory_order_relaxed);
        if (metrics.devices_stale != nullptr) metrics.devices_stale->inc();
      } else if (metrics.devices_fresh != nullptr) {
        metrics.devices_fresh->inc();
      }
      Notification n{.device = devices[i],
                     .fib = std::move(*outcome.table),
                     .simulated_fetch = simulated,
                     .degraded = outcome.degraded()};
      fetch_sim_total_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(simulated)
                  .count()),
          std::memory_order_relaxed);
      fetch_scaled_total_ns.fetch_add(
          static_cast<std::uint64_t>(scaled.count()),
          std::memory_order_relaxed);
      if (metrics.fetch_sim_ns != nullptr) {
        metrics.fetch_sim_ns->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(simulated)
                .count()));
      }
      obs::ScopedTimer push_timer(metrics.queue_push_block_ns);
      n.enqueued_at = std::chrono::steady_clock::now();
      queue.push(std::move(n));
      push_timer.stop();
      const std::size_t depth = queue.size();
      live_queue_depth_.store(depth, std::memory_order_relaxed);
      if (metrics.queue_depth != nullptr) {
        metrics.queue_depth->set(static_cast<double>(depth));
      }
    }
  };

  // Stage 3 — routing-table validator: join table + contracts, verify,
  // classify, alert.
  const auto validator = [&] {
    const obs::CycleScope cycle_tag(cycle_id);
    const auto verifier = verifier_factory_();
    while (true) {
      auto notification = queue.pop();
      if (!notification) break;
      live_queue_depth_.store(queue.size(), std::memory_order_relaxed);
      if (metrics.queue_wait_ns != nullptr) {
        metrics.queue_wait_ns->observe(static_cast<std::uint64_t>(
            (std::chrono::steady_clock::now() - notification->enqueued_at)
                .count()));
      }
      obs::Span validate_span("validate", nullptr, config_.trace);
      const std::size_t device_index = notification->device;
      const std::span<const Contract> contracts =
          plan->contracts_for(notification->device);

      // Incremental skip: an unchanged fingerprint means the cached verdict
      // for this table content is still exact — replay it through the same
      // risk/alert path instead of re-verifying. The "cached" vs "verify"
      // child span distinguishes the two outcomes in traces.
      std::uint64_t print = 0;
      bool skipped = false;
      if (config_.incremental) {
        obs::ScopedTimer fingerprint_timer(metrics.fingerprint_ns);
        print = fingerprint(notification->fib);
        fingerprint_timer.stop();
        skipped = print == fingerprints_[device_index];
      }

      std::vector<Violation> fresh;
      const std::vector<Violation>* violations = &fresh;
      if (skipped) {
        obs::Span cached_span("cached", nullptr, config_.trace);
        violations = &cached_violations_[device_index];
        devices_skipped.fetch_add(1, std::memory_order_relaxed);
        if (metrics.devices_skipped != nullptr) metrics.devices_skipped->inc();
        cached_span.stop();
      } else {
        obs::Span verify_span("verify", metrics.validate_latency_ns,
                              config_.trace);
        fresh = verifier->check(notification->fib, contracts,
                                notification->device);
        const auto verify_elapsed = verify_span.stop();
        validate_total_ns.fetch_add(
            static_cast<std::uint64_t>(verify_elapsed.count()),
            std::memory_order_relaxed);
        contracts_checked.fetch_add(contracts.size(),
                                    std::memory_order_relaxed);
        devices_revalidated.fetch_add(1, std::memory_order_relaxed);
        if (metrics.devices_revalidated != nullptr) {
          metrics.devices_revalidated->inc();
        }
        if (config_.incremental) {
          cached_violations_[device_index] = std::move(fresh);
          fingerprints_[device_index] = print;
          violations = &cached_violations_[device_index];
        }
      }
      violation_count.fetch_add(violations->size(),
                                std::memory_order_relaxed);
      if (metrics.violations_total != nullptr && !violations->empty()) {
        metrics.violations_total->inc(violations->size());
      }
      if (notification->degraded) {
        violations_degraded.fetch_add(violations->size(),
                                      std::memory_order_relaxed);
      }
      obs::Span report_span("report", nullptr, config_.trace);
      for (const Violation& v : *violations) {
        const RiskAssessment assessment =
            risk.assess(v, notification->degraded);
        if (assessment.level == RiskLevel::kHigh) {
          alerts_high.fetch_add(1, std::memory_order_relaxed);
        } else {
          alerts_low.fetch_add(1, std::memory_order_relaxed);
        }
        if (alert_sink_) {
          const std::lock_guard lock(sink_mutex);
          alert_sink_(v, assessment);
        }
      }
      report_span.stop();
      validate_span.stop();
    }
  };

  {
    std::vector<std::jthread> validators;
    validators.reserve(config_.validator_workers);
    for (unsigned w = 0; w < std::max(1u, config_.validator_workers); ++w) {
      validators.emplace_back(validator);
    }
    {
      std::vector<std::jthread> pullers;
      pullers.reserve(config_.puller_workers);
      for (unsigned w = 0; w < std::max(1u, config_.puller_workers); ++w) {
        pullers.emplace_back(puller, w);
      }
    }  // pullers joined: every notification has been posted
    queue.close();
  }  // validators joined: queue drained

  stats.contracts_checked = contracts_checked.load();
  stats.violations = violation_count.load();
  stats.alerts_high = alerts_high.load();
  stats.alerts_low = alerts_low.load();
  stats.violations_degraded = violations_degraded.load();
  stats.devices_failed = devices_failed.load();
  stats.devices_stale = devices_stale.load();
  stats.devices_revalidated = devices_revalidated.load();
  stats.devices_skipped = devices_skipped.load();
  stats.retries = retries.load();
  stats.breaker_opens = breaker_opens.load();
  stats.fetch_sim_total = std::chrono::nanoseconds(fetch_sim_total_ns.load());
  stats.fetch_scaled_total =
      std::chrono::nanoseconds(fetch_scaled_total_ns.load());
  stats.validate_total = std::chrono::nanoseconds(validate_total_ns.load());
  stats.wall = std::chrono::steady_clock::now() - start;
  if (metrics.cycles_total != nullptr) {
    metrics.cycles_total->inc();
    metrics.coverage->set(stats.coverage());
    const std::size_t validated =
        stats.devices_revalidated + stats.devices_skipped;
    metrics.revalidation_ratio->set(
        validated == 0 ? 0.0
                       : static_cast<double>(stats.devices_revalidated) /
                             static_cast<double>(validated));
  }
  cycle_span.stop();

  // Publish the completed cycle to the telemetry plane.
  last_coverage_.store(stats.coverage(), std::memory_order_relaxed);
  last_breaker_opens_.store(stats.breaker_opens, std::memory_order_relaxed);
  last_devices_failed_.store(stats.devices_failed,
                             std::memory_order_relaxed);
  live_queue_depth_.store(0, std::memory_order_relaxed);
  last_cycle_end_ns_.store(std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count(),
                           std::memory_order_relaxed);
  cycles_completed_.fetch_add(1, std::memory_order_relaxed);
  cycle_in_progress_.store(false, std::memory_order_relaxed);
  return stats;
}

PipelineHealth MonitoringPipeline::health() const {
  PipelineHealth health;
  health.cycles_completed = cycles_completed_.load(std::memory_order_relaxed);
  health.cycle_in_progress =
      cycle_in_progress_.load(std::memory_order_relaxed);
  health.coverage = last_coverage_.load(std::memory_order_relaxed);
  health.queue_depth = live_queue_depth_.load(std::memory_order_relaxed);
  health.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  health.breaker_opens_last_cycle =
      last_breaker_opens_.load(std::memory_order_relaxed);
  health.devices_failed_last_cycle =
      last_devices_failed_.load(std::memory_order_relaxed);
  const std::int64_t end_ns =
      last_cycle_end_ns_.load(std::memory_order_relaxed);
  health.since_last_cycle =
      end_ns < 0 ? std::chrono::nanoseconds{-1}
                 : std::chrono::steady_clock::now().time_since_epoch() -
                       std::chrono::nanoseconds(end_ns);
  return health;
}

obs::HealthProbe make_pipeline_probe(const MonitoringPipeline& pipeline,
                                     ReadinessRules rules) {
  return [&pipeline, rules]() -> obs::HealthSnapshot {
    const PipelineHealth health = pipeline.health();
    obs::HealthSnapshot snapshot;
    char line[160];

    std::snprintf(line, sizeof(line),
                  "cycles_completed: %llu\ncycle_in_progress: %s\n"
                  "coverage: %.4f\nqueue: %zu/%zu\n"
                  "breaker_opens_last_cycle: %zu\n",
                  static_cast<unsigned long long>(health.cycles_completed),
                  health.cycle_in_progress ? "true" : "false",
                  health.coverage, health.queue_depth, health.queue_capacity,
                  health.breaker_opens_last_cycle);
    snapshot.detail = line;
    if (health.since_last_cycle.count() >= 0) {
      std::snprintf(
          line, sizeof(line), "cycle_age_s: %.3f\n",
          std::chrono::duration<double>(health.since_last_cycle).count());
      snapshot.detail += line;
    }

    const auto fail = [&](const char* reason) {
      snapshot.ready = false;
      snapshot.detail += std::string("not-ready: ") + reason + "\n";
    };
    if (health.cycles_completed == 0) {
      fail("no monitoring cycle has completed yet");
    } else {
      if (health.coverage < rules.min_coverage) {
        std::snprintf(line, sizeof(line),
                      "coverage %.4f below threshold %.4f", health.coverage,
                      rules.min_coverage);
        fail(line);
      }
      if (health.breaker_opens_last_cycle > rules.max_breaker_opens) {
        std::snprintf(line, sizeof(line),
                      "circuit breakers opened last cycle: %zu (max %zu)",
                      health.breaker_opens_last_cycle,
                      rules.max_breaker_opens);
        fail(line);
      }
      const double saturation =
          static_cast<double>(health.queue_depth) /
          static_cast<double>(health.queue_capacity);
      if (saturation > rules.max_queue_saturation) {
        std::snprintf(line, sizeof(line),
                      "notification queue saturated: %zu/%zu",
                      health.queue_depth, health.queue_capacity);
        fail(line);
      }
      if (rules.max_cycle_age.count() > 0 &&
          health.since_last_cycle > rules.max_cycle_age) {
        std::snprintf(
            line, sizeof(line), "last cycle is stale: %.3f s old (max %.3f)",
            std::chrono::duration<double>(health.since_last_cycle).count(),
            std::chrono::duration<double>(rules.max_cycle_age).count());
        fail(line);
      }
    }
    return snapshot;
  };
}

}  // namespace dcv::rcdc
