#include "rcdc/pipeline.hpp"

#include <atomic>
#include <random>
#include <thread>
#include <vector>

namespace dcv::rcdc {

namespace {

/// The cloud-queue stand-in: a bounded MPMC queue of notifications. The
/// puller posts "routing table ready for device X"; validators consume.
/// push() blocks while the queue is at capacity, so a burst of fast pulls
/// backpressures the pullers instead of buffering unbounded tables.
template <typename T>
class NotificationQueue {
 public:
  explicit NotificationQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  /// Blocks until there is room (or the queue is closed, which drops the
  /// item — closing with producers still active is a caller bug).
  void push(T item) {
    {
      std::unique_lock lock(mutex_);
      space_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

struct Notification {
  topo::DeviceId device = topo::kInvalidDevice;
  routing::ForwardingTable fib;
  std::chrono::nanoseconds simulated_fetch{0};
  /// The table is degraded (stale fallback or truncated/corrupted pull):
  /// violations found on it are reported at degraded confidence.
  bool degraded = false;
};

}  // namespace

MonitoringPipeline::MonitoringPipeline(const topo::MetadataService& metadata,
                                       const FibSource& fibs,
                                       VerifierFactory verifier_factory,
                                       PipelineConfig config)
    : metadata_(&metadata),
      fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      config_(config) {}

PipelineStats MonitoringPipeline::run_cycle() {
  const auto start = std::chrono::steady_clock::now();
  PipelineStats stats;

  // Stage 1 — device contract generator: contracts for every device into
  // the (read-only after this point) contract store.
  const ContractGenerator generator(*metadata_);
  const auto contract_store = generator.generate_all();
  std::vector<topo::DeviceId> devices;
  for (const DeviceContracts& entry : contract_store) {
    if (!entry.contracts.empty()) devices.push_back(entry.device);
  }
  stats.devices = devices.size();

  NotificationQueue<Notification> queue(config_.queue_capacity);
  std::atomic<std::size_t> next_device{0};
  std::atomic<std::uint64_t> fetch_total_ns{0};
  std::atomic<std::uint64_t> validate_total_ns{0};
  std::atomic<std::size_t> contracts_checked{0};
  std::atomic<std::size_t> violation_count{0};
  std::atomic<std::size_t> alerts_high{0};
  std::atomic<std::size_t> alerts_low{0};
  std::atomic<std::size_t> violations_degraded{0};
  std::atomic<std::size_t> devices_failed{0};
  std::atomic<std::size_t> devices_stale{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> breaker_opens{0};
  std::mutex sink_mutex;
  const RiskPolicy risk(metadata_->topology());

  // Stage 2 — routing-table puller: fetch each device's table (with the
  // production fetch latency, scaled) and post a notification. A failed
  // fetch costs the cycle coverage, never the cycle.
  const auto puller = [&](unsigned worker) {
    std::mt19937_64 rng(config_.seed * 1315423911u + worker);
    std::uniform_int_distribution<std::int64_t> latency_us(
        config_.fetch_latency_min.count(), config_.fetch_latency_max.count());
    while (true) {
      const std::size_t i =
          next_device.fetch_add(1, std::memory_order_relaxed);
      if (i >= devices.size()) break;
      const auto simulated = std::chrono::microseconds(latency_us(rng));
      const auto scaled = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::micro>(
              static_cast<double>(simulated.count())) *
          config_.time_scale);
      if (scaled.count() > 0) std::this_thread::sleep_for(scaled);
      FetchOutcome outcome = fibs_->try_fetch(devices[i]);
      if (outcome.attempts > 1) {
        retries.fetch_add(outcome.attempts - 1, std::memory_order_relaxed);
      }
      if (outcome.breaker_tripped) {
        breaker_opens.fetch_add(1, std::memory_order_relaxed);
      }
      if (!outcome.has_table()) {
        devices_failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (outcome.stale) {
        devices_stale.fetch_add(1, std::memory_order_relaxed);
      }
      Notification n{.device = devices[i],
                     .fib = std::move(*outcome.table),
                     .simulated_fetch = simulated,
                     .degraded = outcome.degraded()};
      fetch_total_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(simulated)
                  .count()),
          std::memory_order_relaxed);
      queue.push(std::move(n));
    }
  };

  // Stage 3 — routing-table validator: join table + contracts, verify,
  // classify, alert.
  const auto validator = [&] {
    const auto verifier = verifier_factory_();
    while (true) {
      auto notification = queue.pop();
      if (!notification) break;
      const auto& contracts = contract_store[notification->device].contracts;
      const auto t0 = std::chrono::steady_clock::now();
      const auto violations =
          verifier->check(notification->fib, contracts, notification->device);
      const auto t1 = std::chrono::steady_clock::now();
      validate_total_ns.fetch_add(
          static_cast<std::uint64_t>((t1 - t0).count()),
          std::memory_order_relaxed);
      contracts_checked.fetch_add(contracts.size(),
                                  std::memory_order_relaxed);
      violation_count.fetch_add(violations.size(),
                                std::memory_order_relaxed);
      if (notification->degraded) {
        violations_degraded.fetch_add(violations.size(),
                                      std::memory_order_relaxed);
      }
      for (const Violation& v : violations) {
        const RiskAssessment assessment =
            risk.assess(v, notification->degraded);
        if (assessment.level == RiskLevel::kHigh) {
          alerts_high.fetch_add(1, std::memory_order_relaxed);
        } else {
          alerts_low.fetch_add(1, std::memory_order_relaxed);
        }
        if (alert_sink_) {
          const std::lock_guard lock(sink_mutex);
          alert_sink_(v, assessment);
        }
      }
    }
  };

  {
    std::vector<std::jthread> validators;
    validators.reserve(config_.validator_workers);
    for (unsigned w = 0; w < std::max(1u, config_.validator_workers); ++w) {
      validators.emplace_back(validator);
    }
    {
      std::vector<std::jthread> pullers;
      pullers.reserve(config_.puller_workers);
      for (unsigned w = 0; w < std::max(1u, config_.puller_workers); ++w) {
        pullers.emplace_back(puller, w);
      }
    }  // pullers joined: every notification has been posted
    queue.close();
  }  // validators joined: queue drained

  stats.contracts_checked = contracts_checked.load();
  stats.violations = violation_count.load();
  stats.alerts_high = alerts_high.load();
  stats.alerts_low = alerts_low.load();
  stats.violations_degraded = violations_degraded.load();
  stats.devices_failed = devices_failed.load();
  stats.devices_stale = devices_stale.load();
  stats.retries = retries.load();
  stats.breaker_opens = breaker_opens.load();
  stats.fetch_total = std::chrono::nanoseconds(fetch_total_ns.load());
  stats.validate_total = std::chrono::nanoseconds(validate_total_ns.load());
  stats.wall = std::chrono::steady_clock::now() - start;
  return stats;
}

}  // namespace dcv::rcdc
