#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rcdc/contract.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/metadata.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// A proposed network change: a description plus a mutation applied to an
/// emulated copy of the network. Changes model what a rollout would do —
/// ASN reassignments, link/session operations, device replacements.
struct NetworkChange {
  std::string description;
  std::function<void(topo::Topology&)> apply;
};

/// Common change constructors.
[[nodiscard]] NetworkChange reassign_asn(std::string description,
                                         topo::DeviceId device,
                                         topo::Asn asn);
[[nodiscard]] NetworkChange shut_links(std::string description,
                                       std::vector<topo::LinkId> links);

/// Outcome of pre-checking one change.
struct PrecheckResult {
  std::string description;
  bool approved = false;
  /// Non-empty when the change could not be evaluated at all (its apply
  /// threw — e.g. a plan referencing an unknown device); approved is then
  /// false and the violation counts reflect the untouched baseline.
  std::string error;
  /// Violations present on the emulated network *before* the change
  /// (pre-existing drift is not held against the change).
  std::size_t baseline_violations = 0;
  /// Violations on the emulated network *after* the change.
  std::size_t post_change_violations = 0;
  /// The violations the change itself would introduce.
  std::vector<Violation> introduced;
};

/// Validation threads used when `configured` is 0: hardware-aware,
/// clamped like the other worker pools.
[[nodiscard]] unsigned resolve_precheck_threads(unsigned configured);

/// The §2.7 pre-check workflow (Figure 7): "To prevent a large class of
/// faulty updates from entering in the first place Azure uses a
/// high-fidelity network emulator. It runs a full stack of virtualized
/// device software, connected with virtual links using the same topology
/// as the production network. ... RCDC is then used on FIBs extracted from
/// these networks, reporting the same class of errors as on the live
/// network."
///
/// Here the emulator is the EBGP route-propagation simulator running on a
/// cloned topology: the change is applied to the clone, routing re-runs,
/// and the standard RCDC contract validation (same contracts, same
/// verifiers as live monitoring) decides whether the change may roll out.
/// A change is approved iff it introduces no violation beyond the
/// emulated baseline.
class PrecheckPipeline {
 public:
  /// `production` is cloned per check; contracts always derive from the
  /// *expected* architecture, i.e. the unmodified metadata. `threads`
  /// bounds validation parallelism; 0 picks a hardware-aware default.
  explicit PrecheckPipeline(const topo::Topology& production,
                            ContractGenOptions options = {},
                            unsigned threads = 0)
      : production_(&production), options_(options), threads_(threads) {}

  [[nodiscard]] PrecheckResult check(const NetworkChange& change) const;

  /// Checks a sequence of changes as one rollout, stopping at the first
  /// rejection (later steps usually depend on earlier ones).
  [[nodiscard]] std::vector<PrecheckResult> check_rollout(
      const std::vector<NetworkChange>& changes) const;

 private:
  const topo::Topology* production_;
  ContractGenOptions options_;
  unsigned threads_ = 0;
};

/// The serving-layer counterpart of PrecheckPipeline: one persistent warm
/// emulator instead of a clone-and-cold-converge per request.
///
/// Construction pays the full cost once — clone the production topology,
/// cold-converge the simulator, validate the baseline, fingerprint every
/// device's FIB. Each check() then applies the change, *warm*-reconverges
/// (worklist seeded from exactly the touched devices), and revalidates only
/// the devices whose FIB fingerprint diverged from the baseline — the
/// serving analogue of keeping per-request work proportional to the
/// change, not the fabric. The emulated clone is rolled back after every
/// check, so checks are independent (no rollout semantics).
///
/// check_batch() amortizes further: checking K coalesced changes costs K+1
/// reconvergences (apply, K-1 composite revert+apply steps, final revert)
/// instead of 2K, because reverting change i and applying change i+1 is a
/// single warm delta. Results are per-change and identical to K
/// independent check() calls.
///
/// Not thread-safe: one session serves one gate thread (or is externally
/// serialized — the change-gate batcher does exactly that).
class PrecheckSession {
 public:
  explicit PrecheckSession(const topo::Topology& production,
                           ContractGenOptions options = {},
                           unsigned threads = 0);

  PrecheckSession(const PrecheckSession&) = delete;
  PrecheckSession& operator=(const PrecheckSession&) = delete;

  [[nodiscard]] PrecheckResult check(const NetworkChange& change);
  [[nodiscard]] std::vector<PrecheckResult> check_batch(
      const std::vector<NetworkChange>& changes);

  /// Epoch of the production topology this session was built from; the
  /// gate compares it against the live epoch to detect stale sessions.
  [[nodiscard]] std::uint64_t base_epoch() const { return base_epoch_; }
  /// Violations present on the untouched emulated baseline.
  [[nodiscard]] std::size_t baseline_violations() const {
    return baseline_total_;
  }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  /// Devices actually revalidated / skipped as fingerprint-identical,
  /// summed over all checks (the proportionality evidence).
  [[nodiscard]] std::uint64_t devices_revalidated() const {
    return devices_revalidated_;
  }
  [[nodiscard]] std::uint64_t devices_skipped() const {
    return devices_skipped_;
  }

 private:
  /// Re-derives the divergence set after a reconvergence and validates it.
  /// `divergent` carries the device set differing from baseline before the
  /// step and is updated in place.
  PrecheckResult evaluate(const std::string& description,
                          std::vector<topo::DeviceId>& divergent);

  ContractGenOptions options_;
  unsigned threads_;
  std::uint64_t base_epoch_ = 0;

  topo::Topology base_;      // pristine clone, rollback source
  topo::Topology emulated_;  // live working copy under the simulator
  topo::MetadataService intent_;
  routing::BgpSimulator simulator_;
  SimulatorFibSource fibs_;
  DatacenterValidator validator_;

  std::size_t baseline_total_ = 0;
  std::vector<std::uint64_t> baseline_fp_;  // per-device FIB fingerprints
  std::vector<std::vector<Violation>> baseline_by_device_;

  std::uint64_t checks_run_ = 0;
  std::uint64_t devices_revalidated_ = 0;
  std::uint64_t devices_skipped_ = 0;
};

}  // namespace dcv::rcdc
