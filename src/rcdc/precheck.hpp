#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rcdc/contract.hpp"
#include "rcdc/validator.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// A proposed network change: a description plus a mutation applied to an
/// emulated copy of the network. Changes model what a rollout would do —
/// ASN reassignments, link/session operations, device replacements.
struct NetworkChange {
  std::string description;
  std::function<void(topo::Topology&)> apply;
};

/// Common change constructors.
[[nodiscard]] NetworkChange reassign_asn(std::string description,
                                         topo::DeviceId device,
                                         topo::Asn asn);
[[nodiscard]] NetworkChange shut_links(std::string description,
                                       std::vector<topo::LinkId> links);

/// Outcome of pre-checking one change.
struct PrecheckResult {
  std::string description;
  bool approved = false;
  /// Violations present on the emulated network *before* the change
  /// (pre-existing drift is not held against the change).
  std::size_t baseline_violations = 0;
  /// Violations on the emulated network *after* the change.
  std::size_t post_change_violations = 0;
  /// The violations the change itself would introduce.
  std::vector<Violation> introduced;
};

/// The §2.7 pre-check workflow (Figure 7): "To prevent a large class of
/// faulty updates from entering in the first place Azure uses a
/// high-fidelity network emulator. It runs a full stack of virtualized
/// device software, connected with virtual links using the same topology
/// as the production network. ... RCDC is then used on FIBs extracted from
/// these networks, reporting the same class of errors as on the live
/// network."
///
/// Here the emulator is the EBGP route-propagation simulator running on a
/// cloned topology: the change is applied to the clone, routing re-runs,
/// and the standard RCDC contract validation (same contracts, same
/// verifiers as live monitoring) decides whether the change may roll out.
/// A change is approved iff it introduces no violation beyond the
/// emulated baseline.
class PrecheckPipeline {
 public:
  /// `production` is cloned per check; contracts always derive from the
  /// *expected* architecture, i.e. the unmodified metadata.
  explicit PrecheckPipeline(const topo::Topology& production,
                            ContractGenOptions options = {})
      : production_(&production), options_(options) {}

  [[nodiscard]] PrecheckResult check(const NetworkChange& change) const;

  /// Checks a sequence of changes as one rollout, stopping at the first
  /// rejection (later steps usually depend on earlier ones).
  [[nodiscard]] std::vector<PrecheckResult> check_rollout(
      const std::vector<NetworkChange>& changes) const;

 private:
  const topo::Topology* production_;
  ContractGenOptions options_;
};

}  // namespace dcv::rcdc
