#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "rcdc/contract.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// Options controlling contract generation.
struct ContractGenOptions {
  /// Also generate (cardinality-style) contracts for regional spines. The
  /// paper's Figure 3 walkthrough checks R devices too.
  bool include_regional_spines = true;
};

/// A precompiled, immutable verification plan for one topology epoch:
/// every device's contract set, pre-ordered in trie-walk order (default
/// contracts first, then specific contracts in ascending prefix order — the
/// address order in which the policy trie is traversed). One plan is built
/// per expected-topology epoch and shared across worker threads and
/// monitoring cycles via shared_ptr; the §2.5.2 hot path consumes plans
/// instead of re-deriving contracts from metadata per device per cycle.
///
/// Immutability is the mid-cycle safety story: a cycle captures one
/// ContractPlanPtr at its start and uses only that pointer, so a concurrent
/// epoch bump can never swap contracts under a running worker.
class ContractPlan {
 public:
  ContractPlan(std::uint64_t epoch, std::vector<DeviceContracts> devices);

  /// The expected-topology epoch this plan was compiled from.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Per-device plans, indexed by dense device id; devices with no
  /// contracts carry an empty vector.
  [[nodiscard]] const std::vector<DeviceContracts>& devices() const {
    return devices_;
  }

  /// One device's contracts in trie-walk order (empty span for
  /// contract-free devices or out-of-range ids).
  [[nodiscard]] std::span<const Contract> contracts_for(
      topo::DeviceId device) const {
    if (device >= devices_.size()) return {};
    return devices_[device].contracts;
  }

  /// Total contracts across all devices.
  [[nodiscard]] std::size_t total_contracts() const {
    return total_contracts_;
  }

 private:
  std::uint64_t epoch_;
  std::vector<DeviceContracts> devices_;
  std::size_t total_contracts_ = 0;
};

using ContractPlanPtr = std::shared_ptr<const ContractPlan>;

/// The device contract generator of §2.4 and Figure 5: consumes facts from
/// the metadata service and derives, for every device, the full contract
/// set implied by its architectural role:
///
///  * ToR (§2.4.1): default contract -> its leaf neighbors; one specific
///    contract per datacenter prefix it does not itself host -> its leaf
///    neighbors.
///  * Leaf (§2.4.2): default contract -> its spine neighbors; own-cluster
///    prefixes -> the hosting ToR; other-cluster prefixes -> the spine
///    neighbors that serve the destination cluster.
///  * Spine (§2.4.3): default contract -> its regional-spine neighbors; one
///    specific contract per datacenter prefix -> its leaf neighbors in the
///    cluster hosting the prefix.
///  * Regional spine: one subset/cardinality contract per prefix -> its
///    spine neighbors serving the hosting cluster (at least one of which
///    must be present).
///
/// Contracts derive from the *expected* topology only; current link or
/// session state never influences them (§2.4: "We create contracts based on
/// expected topology, and therefore will ignore current state of the links
/// when generating contracts").
class ContractGenerator {
 public:
  explicit ContractGenerator(const topo::MetadataService& metadata,
                             ContractGenOptions options = {})
      : metadata_(&metadata), options_(options) {}

  /// Contracts of one device. Deterministic; safe to call concurrently.
  [[nodiscard]] std::vector<Contract> for_device(topo::DeviceId device) const;

  /// Contracts for the whole datacenter, device by device.
  [[nodiscard]] std::vector<DeviceContracts> generate_all() const;

  /// The precompiled plan for the metadata's current topology epoch.
  /// Thread-safe: the plan for an epoch is built once and shared by every
  /// caller until the expected topology changes, so steady-state calls are
  /// a lock + pointer copy. Callers must not mutate the topology
  /// concurrently with this call (the same rule as every metadata read);
  /// a plan already handed out stays valid and immutable regardless of
  /// later epoch bumps.
  [[nodiscard]] ContractPlanPtr plan() const;

 private:
  const topo::MetadataService* metadata_;
  ContractGenOptions options_;

  mutable std::mutex plan_mutex_;
  mutable ContractPlanPtr cached_plan_;
};

}  // namespace dcv::rcdc
