#pragma once

#include <vector>

#include "rcdc/contract.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// Options controlling contract generation.
struct ContractGenOptions {
  /// Also generate (cardinality-style) contracts for regional spines. The
  /// paper's Figure 3 walkthrough checks R devices too.
  bool include_regional_spines = true;
};

/// The device contract generator of §2.4 and Figure 5: consumes facts from
/// the metadata service and derives, for every device, the full contract
/// set implied by its architectural role:
///
///  * ToR (§2.4.1): default contract -> its leaf neighbors; one specific
///    contract per datacenter prefix it does not itself host -> its leaf
///    neighbors.
///  * Leaf (§2.4.2): default contract -> its spine neighbors; own-cluster
///    prefixes -> the hosting ToR; other-cluster prefixes -> the spine
///    neighbors that serve the destination cluster.
///  * Spine (§2.4.3): default contract -> its regional-spine neighbors; one
///    specific contract per datacenter prefix -> its leaf neighbors in the
///    cluster hosting the prefix.
///  * Regional spine: one subset/cardinality contract per prefix -> its
///    spine neighbors serving the hosting cluster (at least one of which
///    must be present).
///
/// Contracts derive from the *expected* topology only; current link or
/// session state never influences them (§2.4: "We create contracts based on
/// expected topology, and therefore will ignore current state of the links
/// when generating contracts").
class ContractGenerator {
 public:
  explicit ContractGenerator(const topo::MetadataService& metadata,
                             ContractGenOptions options = {})
      : metadata_(&metadata), options_(options) {}

  /// Contracts of one device. Deterministic; safe to call concurrently.
  [[nodiscard]] std::vector<Contract> for_device(topo::DeviceId device) const;

  /// Contracts for the whole datacenter, device by device.
  [[nodiscard]] std::vector<DeviceContracts> generate_all() const;

 private:
  const topo::MetadataService* metadata_;
  ContractGenOptions options_;
};

}  // namespace dcv::rcdc
