#include "rcdc/linear_verifier.hpp"

#include "net/interval.hpp"

namespace dcv::rcdc {

std::vector<Violation> LinearVerifier::check(
    const routing::ForwardingTable& fib, std::span<const Contract> contracts,
    topo::DeviceId device) {
  std::vector<Violation> violations;

  for (const Contract& contract : contracts) {
    if (contract.kind == ContractKind::kDefault) {
      check_default_contract(fib, contract, device, violations);
      continue;
    }

    const auto range = net::AddressInterval::from_prefix(contract.prefix);
    net::IntervalSet covered;
    bool complete = false;
    // fib.rules() is already in descending prefix-length order; the linear
    // scan filters the related set on the fly.
    for (const routing::Rule& rule : fib.rules()) {
      if (!rule.prefix.overlaps(contract.prefix)) continue;
      const auto slice = contract.prefix.contains(rule.prefix)
                             ? net::AddressInterval::from_prefix(rule.prefix)
                             : range;
      if (!covered.covers(slice)) {
        const bool default_disallowed =
            rule.prefix.is_default() && !contract.allow_default_route;
        if (!rule.connected &&
            (default_disallowed ||
             !hops_satisfy(rule.next_hops, contract))) {
          violations.push_back(Violation{
              .device = device,
              .contract = contract,
              .kind = default_disallowed
                          ? ViolationKind::kSpecificViaDefaultRoute
                          : ViolationKind::kWrongNextHops,
              .rule_prefix = rule.prefix,
              .actual_next_hops = rule.next_hops});
        }
      }
      covered.add(slice);
      if (covered.covers(range)) {
        complete = true;
        break;
      }
    }
    if (!complete && !covered.covers(range)) {
      violations.push_back(Violation{.device = device,
                                     .contract = contract,
                                     .kind = ViolationKind::kUnreachableRange,
                                     .rule_prefix = contract.prefix,
                                     .actual_next_hops = {}});
    }
  }
  return violations;
}

}  // namespace dcv::rcdc
