#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rcdc/contract.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// Risk classification of §2.6.4 / Figure 6: errors are high or low risk.
enum class RiskLevel : std::uint8_t {
  kHigh,
  kLow,
};

[[nodiscard]] std::string_view to_string(RiskLevel level);
std::ostream& operator<<(std::ostream& os, RiskLevel level);

/// "Errors are classified by risk factor based on the number of servers it
/// impacts, and the number of additional faults required to cause an
/// impact" (§2.6.4).
struct RiskAssessment {
  RiskLevel level = RiskLevel::kLow;
  /// Estimated servers whose traffic the violating device carries for the
  /// affected destination (ToR: one rack; leaf/spine: the devices below).
  std::uint64_t servers_impacted = 0;
  /// Additional failures needed before traffic is lost outright: the number
  /// of next hops the device still has for the affected destination.
  std::size_t additional_faults_to_impact = 0;
  /// The violation was found on a degraded table (stale cache fallback or a
  /// truncated/corrupted pull): the risk level stands, but the alert should
  /// be treated as lower-confidence until a fresh pull confirms it.
  bool degraded_confidence = false;
};

/// Deterministic risk policy mirroring the paper's examples:
///
///  * a device with at most one remaining next hop for a contract is
///    high-risk — "a top-of-the-rack switch that has only a single next hop
///    for default route represents a high-risk error, since any additional
///    failure can isolate the top-of-rack switch";
///  * unreachable ranges and missing default routes are high-risk (impact
///    has already occurred);
///  * spine and regional-spine errors are high-risk — "if a significant
///    number of spine devices have errors relating to specific prefixes,
///    then those errors represent a high-risk because they are required for
///    assuring the longer paths" — spine-layer redundancy protects far more
///    servers than a rack;
///  * everything else (e.g. a ToR or leaf that lost part of its ECMP
///    fan-out but retains several hops) is low-risk.
class RiskPolicy {
 public:
  explicit RiskPolicy(const topo::Topology& topology,
                      std::uint64_t servers_per_rack = 40)
      : topology_(&topology), servers_per_rack_(servers_per_rack) {}

  [[nodiscard]] RiskAssessment assess(const Violation& violation) const;

  /// Overload for violations found on a degraded (stale or garbage) table:
  /// same classification, with `degraded_confidence` set accordingly.
  [[nodiscard]] RiskAssessment assess(const Violation& violation,
                                      bool degraded_table) const;

 private:
  const topo::Topology* topology_;
  std::uint64_t servers_per_rack_;
};

}  // namespace dcv::rcdc
