#include "rcdc/contract_gen.hpp"

#include <algorithm>
#include <ostream>

#include "net/error.hpp"

namespace dcv::rcdc {

std::string_view to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDefaultRouteMismatch:
      return "default-route-mismatch";
    case ViolationKind::kMissingDefaultRoute:
      return "missing-default-route";
    case ViolationKind::kWrongNextHops:
      return "wrong-next-hops";
    case ViolationKind::kUnreachableRange:
      return "unreachable-range";
    case ViolationKind::kSpecificViaDefaultRoute:
      return "specific-via-default-route";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, ViolationKind kind) {
  return os << to_string(kind);
}

namespace {

using topo::Device;
using topo::DeviceId;
using topo::DeviceRole;
using topo::MetadataService;
using topo::PrefixFact;

Contract default_contract(std::vector<DeviceId> next_hops) {
  const std::size_t count = next_hops.size();
  return Contract{.kind = ContractKind::kDefault,
                  .prefix = net::Prefix::default_route(),
                  .expected_next_hops = std::move(next_hops),
                  .mode = MatchMode::kExactSet,
                  .min_next_hops = count};
}

Contract specific_contract(const net::Prefix& prefix,
                           std::vector<DeviceId> next_hops,
                           MatchMode mode = MatchMode::kExactSet,
                           std::size_t min_hops = 1) {
  return Contract{.kind = ContractKind::kSpecific,
                  .prefix = prefix,
                  .expected_next_hops = std::move(next_hops),
                  .mode = mode,
                  .min_next_hops = min_hops,
                  // Intent demands a specific route, not default fallback.
                  .allow_default_route = false};
}

/// True when the prefix is hosted in the same datacenter as the device.
/// Contracts only cover intra-datacenter forwarding intent (§2.3 postulates
/// intent "for a datacenter").
bool same_datacenter(const MetadataService& metadata, const Device& device,
                     const PrefixFact& fact) {
  return metadata.topology().device(fact.tor).datacenter == device.datacenter;
}

void tor_contracts(const MetadataService& metadata, const Device& tor,
                   std::vector<Contract>& out) {
  const auto leaves_adj =
      metadata.topology().neighbors_with_role(tor.id, DeviceRole::kLeaf);
  const std::vector<DeviceId> leaves(leaves_adj.begin(), leaves_adj.end());
  out.push_back(default_contract(leaves));
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    if (fact.tor == tor.id) continue;  // "besides the prefix it announces"
    if (!same_datacenter(metadata, tor, fact)) continue;
    out.push_back(specific_contract(fact.prefix, leaves));
  }
}

void leaf_contracts(const MetadataService& metadata, const Device& leaf,
                    std::vector<Contract>& out) {
  const auto spines_adj =
      metadata.topology().neighbors_with_role(leaf.id, DeviceRole::kSpine);
  const std::vector<DeviceId> spines(spines_adj.begin(), spines_adj.end());
  out.push_back(default_contract(spines));
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    if (!same_datacenter(metadata, leaf, fact)) continue;
    if (fact.cluster == leaf.cluster) {
      // Traffic for own-cluster prefixes goes straight to the hosting ToR.
      out.push_back(specific_contract(fact.prefix, {fact.tor}));
    } else {
      out.push_back(specific_contract(
          fact.prefix, metadata.leaf_uplinks_toward(leaf.id, fact.cluster)));
    }
  }
}

void spine_contracts(const MetadataService& metadata, const Device& spine,
                     std::vector<Contract>& out) {
  const auto regionals = metadata.topology().neighbors_with_role(
      spine.id, DeviceRole::kRegionalSpine);
  out.push_back(default_contract(
      std::vector<DeviceId>(regionals.begin(), regionals.end())));
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    if (!same_datacenter(metadata, spine, fact)) continue;
    auto leaves = metadata.spine_downlinks_into(spine.id, fact.cluster);
    if (leaves.empty()) continue;  // this plane does not serve the cluster
    out.push_back(specific_contract(fact.prefix, std::move(leaves)));
  }
}

void regional_contracts(const MetadataService& metadata,
                        const Device& regional, std::vector<Contract>& out) {
  for (const PrefixFact& fact : metadata.all_prefixes()) {
    auto spines =
        metadata.regional_downlinks_toward(regional.id, fact.cluster);
    if (spines.empty()) continue;  // regional does not serve that cluster
    out.push_back(specific_contract(fact.prefix, std::move(spines),
                                    MatchMode::kSubsetAtLeast,
                                    /*min_hops=*/1));
  }
}

}  // namespace

std::vector<Contract> ContractGenerator::for_device(
    topo::DeviceId device) const {
  const Device& d = metadata_->topology().device(device);
  std::vector<Contract> out;
  switch (d.role) {
    case DeviceRole::kTor:
      tor_contracts(*metadata_, d, out);
      break;
    case DeviceRole::kLeaf:
      leaf_contracts(*metadata_, d, out);
      break;
    case DeviceRole::kSpine:
      spine_contracts(*metadata_, d, out);
      break;
    case DeviceRole::kRegionalSpine:
      if (options_.include_regional_spines) {
        regional_contracts(*metadata_, d, out);
      }
      break;
  }
  return out;
}

std::vector<DeviceContracts> ContractGenerator::generate_all() const {
  std::vector<DeviceContracts> out;
  out.reserve(metadata_->topology().device_count());
  for (const Device& d : metadata_->topology().devices()) {
    out.push_back(DeviceContracts{.device = d.id,
                                  .contracts = for_device(d.id)});
  }
  return out;
}

ContractPlan::ContractPlan(std::uint64_t epoch,
                           std::vector<DeviceContracts> devices)
    : epoch_(epoch), devices_(std::move(devices)) {
  for (DeviceContracts& entry : devices_) {
    // Trie-walk order: default contracts first (checked against the default
    // rule, no trie walk), then specific contracts in ascending prefix
    // order so successive walks revisit warm trie paths.
    std::stable_sort(entry.contracts.begin(), entry.contracts.end(),
                     [](const Contract& a, const Contract& b) {
                       const bool a_default = a.kind == ContractKind::kDefault;
                       const bool b_default = b.kind == ContractKind::kDefault;
                       if (a_default != b_default) return a_default;
                       return a.prefix < b.prefix;
                     });
    total_contracts_ += entry.contracts.size();
  }
}

ContractPlanPtr ContractGenerator::plan() const {
  const std::uint64_t epoch = metadata_->epoch();
  const std::lock_guard lock(plan_mutex_);
  if (cached_plan_ == nullptr || cached_plan_->epoch() != epoch) {
    cached_plan_ = std::make_shared<const ContractPlan>(epoch,
                                                        generate_all());
  }
  return cached_plan_;
}

}  // namespace dcv::rcdc
