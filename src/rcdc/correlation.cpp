#include "rcdc/correlation.hpp"

#include <algorithm>
#include <map>

namespace dcv::rcdc {

std::vector<RootCauseGroup> correlate(
    const std::vector<Violation>& violations,
    const topo::Topology& topology) {
  const TriageEngine triage(topology);
  const RiskPolicy risk(topology);

  // Cause key: link id for link-level causes, ~device for the rest (kept
  // disjoint by offsetting device keys past the link id space).
  std::map<std::uint64_t, RootCauseGroup> groups;
  for (const Violation& violation : violations) {
    const TriageDecision decision = triage.triage(violation);
    std::uint64_t key;
    if (decision.link) {
      key = *decision.link;
    } else {
      key = (std::uint64_t{1} << 32) + violation.device;
    }
    RootCauseGroup& group = groups[key];
    if (group.violations.empty()) {
      if (decision.link) {
        const topo::Link& link = topology.link(*decision.link);
        const char* what =
            link.link_state == topo::LinkState::kDown
                ? "operationally down"
                : (link.bgp_state == topo::BgpSessionState::kAdminShutdown
                       ? "BGP administratively shut"
                       : "degraded");
        group.cause = "link " + topology.device(link.a).name + "<->" +
                      topology.device(link.b).name + " " + what;
        group.link = decision.link;
      } else {
        group.cause = "device " + topology.device(violation.device).name +
                      " (no link-level cause; suspected software/policy "
                      "bug)";
      }
      group.action = decision.action;
    }
    if (risk.assess(violation).level == RiskLevel::kHigh) {
      group.risk = RiskLevel::kHigh;
    }
    group.violations.push_back(violation);
  }

  std::vector<RootCauseGroup> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) out.push_back(std::move(group));
  std::sort(out.begin(), out.end(),
            [](const RootCauseGroup& a, const RootCauseGroup& b) {
              if (a.risk != b.risk) {
                return a.risk == RiskLevel::kHigh;
              }
              if (a.violations.size() != b.violations.size()) {
                return a.violations.size() > b.violations.size();
              }
              return a.cause < b.cause;
            });
  return out;
}

}  // namespace dcv::rcdc
