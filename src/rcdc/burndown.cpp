#include "rcdc/burndown.hpp"

#include <algorithm>
#include <optional>
#include <random>

#include "rcdc/fib_source.hpp"
#include "rcdc/severity.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/faults.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

namespace {

using topo::DeviceFaultKind;
using topo::DeviceRole;
using topo::FaultInjector;
using topo::FaultRecord;
using topo::Topology;

/// Injects one random fault drawn from the production mix of §2.6.2:
/// mostly link-level hardware failures and operational BGP shutdowns, with
/// a tail of device software/policy faults.
void inject_random_fault(FaultInjector& injector, const Topology& topology,
                         std::mt19937_64& rng) {
  std::uniform_real_distribution<double> pick(0.0, 1.0);
  const double p = pick(rng);
  if (p < 0.5) {
    injector.random_link_failures(1);
  } else if (p < 0.8) {
    injector.random_bgp_shutdowns(1);
  } else {
    static constexpr DeviceFaultKind kKinds[] = {
        DeviceFaultKind::kRibFibInconsistency,
        DeviceFaultKind::kLayer2InterfaceBug,
        DeviceFaultKind::kEcmpSingleNextHop,
        DeviceFaultKind::kRejectDefaultRoute,
    };
    static constexpr DeviceRole kRoles[] = {
        DeviceRole::kTor, DeviceRole::kLeaf, DeviceRole::kSpine};
    std::uniform_int_distribution<std::size_t> kind_pick(0, 3);
    std::uniform_int_distribution<std::size_t> role_pick(0, 2);
    injector.random_device_faults(1, kRoles[role_pick(rng)],
                                  kKinds[kind_pick(rng)]);
  }
  (void)topology;
}

/// Tier rank used to find the endpoint for which a link is an *uplink*.
int tier(DeviceRole role) {
  switch (role) {
    case DeviceRole::kTor:
      return 0;
    case DeviceRole::kLeaf:
      return 1;
    case DeviceRole::kSpine:
      return 2;
    case DeviceRole::kRegionalSpine:
      return 3;
  }
  return 0;
}

/// The §2.6.4 risk rubric applied to a fault itself: how many servers does
/// the faulted element carry, and how close is it to causing impact? A
/// link fault removes one uplink from its lower-tier endpoint; it is
/// high-risk when that device is one more failure away from losing its
/// last uplink ("any additional failure can isolate the top-of-rack
/// switch").
RiskLevel fault_risk(const FaultRecord& record, const Topology& topology) {
  if (record.kind == FaultRecord::Kind::kDeviceFault) {
    // All four device-fault modes threaten the default route or the whole
    // ECMP fan-out at once.
    return RiskLevel::kHigh;
  }
  const topo::Link& link = topology.link(record.link);
  const topo::Device& a = topology.device(link.a);
  const topo::Device& b = topology.device(link.b);
  const topo::Device& lower = tier(a.role) <= tier(b.role) ? a : b;
  const DeviceRole uplink_role =
      lower.role == DeviceRole::kTor    ? DeviceRole::kLeaf
      : lower.role == DeviceRole::kLeaf ? DeviceRole::kSpine
                                        : DeviceRole::kRegionalSpine;
  std::size_t usable_uplinks = 0;
  for (const topo::LinkId lid : topology.links_of(lower.id)) {
    const topo::Link& l = topology.link(lid);
    if (l.usable() &&
        topology.device(l.other(lower.id)).role == uplink_role) {
      ++usable_uplinks;
    }
  }
  return usable_uplinks <= 1 ? RiskLevel::kHigh : RiskLevel::kLow;
}

}  // namespace

std::vector<BurndownDay> simulate_burndown(const BurndownConfig& config) {
  Topology topology = topo::build_clos(config.datacenter);
  const topo::MetadataService metadata(topology);
  FaultInjector injector(topology, config.seed);
  std::mt19937_64 rng(config.seed ^ 0x9E3779B97F4A7C15ull);
  std::poisson_distribution<int> arrivals(config.fault_arrival_rate);

  for (std::size_t i = 0; i < config.initial_faults; ++i) {
    inject_random_fault(injector, topology, rng);
  }

  std::vector<BurndownDay> series;
  series.reserve(static_cast<std::size_t>(config.days));
  std::size_t peak_total = 1;
  // One simulator for the whole study: each RCDC day warm-starts from the
  // previous day's converged state and propagates only the deltas from the
  // overnight fault arrivals and yesterday's remediations, instead of
  // rebuilding a full simulator per scenario.
  std::optional<routing::BgpSimulator> simulator;

  for (int day = 0; day < config.days; ++day) {
    for (int i = arrivals(rng); i > 0; --i) {
      inject_random_fault(injector, topology, rng);
    }

    BurndownDay today{.day = day};

    if (day >= config.rcdc_deploy_day) {
      // RCDC runs: simulate routing over the faulty network, validate every
      // device locally, and count what the contracts catch.
      if (!simulator) {
        simulator.emplace(topology, &injector, config.metrics);
      } else {
        simulator->reconverge();
      }
      const SimulatorFibSource fibs(*simulator);
      const DatacenterValidator validator(
          metadata, fibs, make_trie_verifier_factory(config.metrics), {},
          config.metrics);
      today.violations_detected = validator.run(/*threads=*/2)
                                      .violations.size();

      // Remediation in risk order, bounded by daily capacity.
      const auto remediate = [&](RiskLevel level, std::size_t capacity) {
        std::size_t fixed = 0;
        while (fixed < capacity) {
          const auto& records = injector.records();
          const auto it = std::find_if(
              records.begin(), records.end(), [&](const FaultRecord& r) {
                return fault_risk(r, topology) == level;
              });
          if (it == records.end()) break;
          injector.repair(
              static_cast<std::size_t>(it - records.begin()));
          ++fixed;
        }
        return fixed;
      };
      today.remediated_today =
          remediate(RiskLevel::kHigh, config.high_risk_capacity_per_day) +
          remediate(RiskLevel::kLow, config.low_risk_capacity_per_day);
    }

    for (const FaultRecord& record : injector.records()) {
      if (fault_risk(record, topology) == RiskLevel::kHigh) {
        ++today.outstanding_high;
      } else {
        ++today.outstanding_low;
      }
    }
    peak_total = std::max(peak_total,
                          today.outstanding_high + today.outstanding_low);
    today.high_fraction = static_cast<double>(today.outstanding_high) /
                          static_cast<double>(peak_total);
    today.low_fraction = static_cast<double>(today.outstanding_low) /
                         static_cast<double>(peak_total);
    series.push_back(today);
  }
  return series;
}

}  // namespace dcv::rcdc
