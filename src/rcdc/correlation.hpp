#pragma once

#include <string>
#include <vector>

#include "rcdc/triage.hpp"

namespace dcv::rcdc {

/// A group of violations sharing one suspected root cause. A single link
/// failure produces violations on many devices (both endpoints plus every
/// upstream device that loses the specific route — cf. §2.4.4, where four
/// link failures yield a dozen contract failures); operators act on causes,
/// not on raw violations.
struct RootCauseGroup {
  /// Human-readable cause, e.g. "link ToR1<->A3 operationally down" or
  /// "device ToR1 (no link-level cause; suspected software/policy bug)".
  std::string cause;
  RemediationAction action = RemediationAction::kEscalateToOperator;
  /// Highest risk among the grouped violations.
  RiskLevel risk = RiskLevel::kLow;
  /// The implicated link, if the cause is link-level.
  std::optional<topo::LinkId> link;
  std::vector<Violation> violations;
};

/// The correlation step of the alert path (§2.6.1: "alerts and remediations
/// are triggered by a set of queries that correlate the validation errors
/// with additional metadata, classify errors, and direct them appropriately
/// for remediation"): violations whose triage implicates the same link are
/// grouped; violations with no link-level cause are grouped per device.
/// Groups are ordered highest risk first, larger groups first within a
/// risk class (§2.6.4: remediate in order of severity).
[[nodiscard]] std::vector<RootCauseGroup> correlate(
    const std::vector<Violation>& violations,
    const topo::Topology& topology);

}  // namespace dcv::rcdc
