#include "rcdc/precheck_io.hpp"

#include <sstream>
#include <utility>

#include "net/error.hpp"

namespace dcv::rcdc {

namespace {

/// One primitive operation, fully resolved against the parse topology.
struct Operation {
  enum class Kind { kSetAsn, kShutLink, kDownLink } kind;
  topo::DeviceId device = topo::kInvalidDevice;  // kSetAsn target
  topo::Asn asn = 0;
  topo::LinkId link = 0;  // kShutLink / kDownLink target
};

}  // namespace

std::vector<NetworkChange> parse_change_plan(const std::string& text,
                                             const topo::Topology& topology) {
  const auto resolve_device = [&](const std::string& name, int line_number) {
    const auto id = topology.find_device(name);
    if (!id) {
      throw ParseError("plan line " + std::to_string(line_number) +
                       ": unknown device '" + name + "'");
    }
    return *id;
  };

  std::vector<std::pair<std::string, std::vector<Operation>>> raw;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword) || keyword[0] == '#') continue;
    if (keyword == "change") {
      std::string description;
      std::getline(tokens, description);
      if (!description.empty() && description.front() == ' ') {
        description.erase(0, 1);
      }
      raw.emplace_back(description, std::vector<Operation>{});
      continue;
    }
    if (raw.empty()) {
      throw ParseError("plan line " + std::to_string(line_number) +
                       ": operation before any 'change'");
    }
    std::string a;
    std::string b;
    if (!(tokens >> a >> b)) {
      throw ParseError("plan line " + std::to_string(line_number) +
                       ": expected two arguments");
    }
    Operation op;
    if (keyword == "set-asn") {
      op.kind = Operation::Kind::kSetAsn;
      op.device = resolve_device(a, line_number);
      try {
        const unsigned long asn = std::stoul(b);
        if (asn == 0 || asn > 0xffffffffUL) throw std::out_of_range("asn");
        op.asn = static_cast<topo::Asn>(asn);
      } catch (const std::exception&) {
        throw ParseError("plan line " + std::to_string(line_number) +
                         ": invalid ASN '" + b + "'");
      }
    } else if (keyword == "shut-link" || keyword == "down-link") {
      op.kind = keyword == "shut-link" ? Operation::Kind::kShutLink
                                       : Operation::Kind::kDownLink;
      const auto link = topology.find_link(resolve_device(a, line_number),
                                           resolve_device(b, line_number));
      if (!link) {
        throw ParseError("plan line " + std::to_string(line_number) +
                         ": no link " + a + " <-> " + b);
      }
      op.link = *link;
    } else {
      throw ParseError("plan line " + std::to_string(line_number) +
                       ": unknown operation '" + keyword + "'");
    }
    raw.back().second.push_back(op);
  }

  std::vector<NetworkChange> plan;
  plan.reserve(raw.size());
  for (auto& [description, operations] : raw) {
    plan.push_back(NetworkChange{
        .description = description,
        .apply = [operations =
                      std::move(operations)](topo::Topology& emulated) {
          for (const Operation& op : operations) {
            switch (op.kind) {
              case Operation::Kind::kSetAsn:
                emulated.set_asn(op.device, op.asn);
                break;
              case Operation::Kind::kShutLink:
                emulated.set_bgp_state(op.link,
                                       topo::BgpSessionState::kAdminShutdown);
                break;
              case Operation::Kind::kDownLink:
                emulated.set_link_state(op.link, topo::LinkState::kDown);
                break;
            }
          }
        }});
  }
  return plan;
}

}  // namespace dcv::rcdc
