#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "rcdc/fib_source.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// Outcome for one (source ToR, destination prefix) pair.
struct PairOutcome {
  topo::DeviceId source = topo::kInvalidDevice;
  net::Prefix destination;
  bool reachable = false;
  /// Every forwarding path has the intended shortest length (2 intra-
  /// cluster, 4 inter-cluster; Intent 2).
  bool shortest = false;
  /// The number of distinct forwarding paths equals the maximal redundant
  /// set implied by the architecture (Intent 3).
  bool fully_redundant = false;
  std::uint64_t path_count = 0;
  std::uint64_t expected_path_count = 0;
  int min_length = 0;
  int max_length = 0;
  bool loop = false;
};

/// Aggregate result of the global check.
struct GlobalCheckResult {
  std::size_t pairs_checked = 0;
  std::size_t pairs_reachable = 0;
  std::size_t pairs_shortest = 0;
  std::size_t pairs_fully_redundant = 0;
  /// Pairs whose forwarding graph contains a loop (§2.1's black-holing
  /// hazard; see routing::aggregate_cluster_routes).
  std::size_t pairs_with_loops = 0;
  std::uint64_t total_paths = 0;
  std::uint64_t max_paths_per_pair = 0;
  /// Human-readable descriptions of failing pairs (capped).
  std::vector<std::string> failures;
  /// Time spent materializing the global FIB snapshot.
  std::chrono::nanoseconds snapshot_time{0};
  /// Time spent on the all-pairs analysis itself.
  std::chrono::nanoseconds analysis_time{0};

  [[nodiscard]] bool all_ok() const {
    return pairs_checked == pairs_fully_redundant &&
           pairs_checked == pairs_shortest &&
           pairs_checked == pairs_reachable;
  }
};

/// The *global* verification baseline RCDC bypasses (§2.4): materialize a
/// snapshot of every FIB in the datacenter, then verify all-pairs ToR
/// reachability, shortest paths, and full ECMP redundancy by traversing the
/// composite forwarding graph per destination prefix.
///
/// Even with dynamic programming (counting paths instead of enumerating the
/// exponentially many of them), this requires O(all FIBs) memory and
/// O(prefixes × (V + E)) time — in contrast to local validation, which
/// holds one device at a time and parallelizes freely. The crossover is the
/// subject of the bench_global_vs_local experiment (C4).
class GlobalChecker {
 public:
  GlobalChecker(const topo::MetadataService& metadata, const FibSource& fibs)
      : metadata_(&metadata), fibs_(&fibs) {}

  /// Verifies every (source ToR, destination prefix) pair within each
  /// datacenter. `max_failures` caps the textual failure report.
  [[nodiscard]] GlobalCheckResult check_all_pairs(
      std::size_t max_failures = 100) const;

 private:
  const topo::MetadataService* metadata_;
  const FibSource* fibs_;
};

}  // namespace dcv::rcdc
