#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace dcv::rcdc {

/// The cloud-queue stand-in of the Figure 5 pipeline: a bounded MPMC queue
/// of notifications. The puller posts "routing table ready for device X";
/// validators consume. push() blocks while the queue is at capacity, so a
/// burst of fast pulls backpressures the pullers instead of buffering
/// unbounded tables.
template <typename T>
class NotificationQueue {
 public:
  explicit NotificationQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  /// Blocks until there is room. Closing the queue releases any blocked
  /// producers: their items are dropped (push returns false) rather than
  /// deadlocking them against consumers that will never pop again.
  /// Returns true if the item was enqueued.
  bool push(T item) {
    {
      std::unique_lock lock(mutex_);
      space_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Instantaneous depth (for queue-depth gauges; racy by nature).
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dcv::rcdc
