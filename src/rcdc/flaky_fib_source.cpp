#include "rcdc/flaky_fib_source.hpp"

#include <algorithm>

namespace dcv::rcdc {

namespace {

/// splitmix64 — cheap, well-distributed stateless mixer; the outcome of
/// (seed, device, attempt) must not depend on call interleaving, which
/// rules out a shared stateful RNG.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t device,
                    std::uint64_t attempt) {
  return mix(mix(mix(seed) ^ (device + 1)) ^ (attempt + 1) * 0x9E3779B9ull);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Drops the tail of the canonical rule order (descending prefix length),
/// so short prefixes — typically the default route — vanish first, exactly
/// what a pull cut off mid-stream looks like.
routing::ForwardingTable truncate_table(const routing::ForwardingTable& full,
                                        std::uint64_t h) {
  routing::ForwardingTable out;
  if (full.empty()) return out;
  // Keep 30-79% of the rules, at least one.
  const std::size_t keep = std::max<std::size_t>(
      1, full.size() * (30 + h % 50) / 100);
  for (std::size_t i = 0; i < keep; ++i) out.add(full.rules()[i]);
  return out;
}

/// Damages one rule's next-hop set (drops a hop), or drops the rule
/// entirely when it has a single hop — a flipped entry in the pulled text.
routing::ForwardingTable corrupt_table(const routing::ForwardingTable& full,
                                       std::uint64_t h) {
  routing::ForwardingTable out;
  if (full.empty()) return out;
  const std::size_t victim = h % full.size();
  for (std::size_t i = 0; i < full.size(); ++i) {
    routing::Rule rule = full.rules()[i];
    if (i == victim) {
      if (rule.next_hops.size() <= 1) continue;  // rule lost entirely
      rule.next_hops.erase(rule.next_hops.begin() +
                           static_cast<std::ptrdiff_t>(
                               (h >> 8) % rule.next_hops.size()));
    }
    out.add(std::move(rule));
  }
  return out;
}

}  // namespace

std::string FlakyFibSource::Record::to_string(
    const topo::Topology& topology) const {
  return std::string("fetch-") + std::string(rcdc::to_string(kind)) + " at " +
         topology.device(device).name + " (attempt " +
         std::to_string(attempt) + ")";
}

FetchOutcome FlakyFibSource::roll(topo::DeviceId device,
                                  std::uint64_t attempt) const {
  const std::uint64_t h = hash3(config_.seed, device, attempt);
  const double u = to_unit(h);

  double threshold = config_.unreachable_rate;
  if (u < threshold) return FetchOutcome::failure(FetchErrorKind::kUnreachable);
  threshold += config_.timeout_rate;
  if (u < threshold) return FetchOutcome::failure(FetchErrorKind::kTimeout);
  threshold += config_.transient_rate;
  if (u < threshold) return FetchOutcome::failure(FetchErrorKind::kTransient);
  threshold += config_.truncate_rate;
  if (u < threshold) {
    return FetchOutcome::garbage(FetchErrorKind::kTruncatedTable,
                                 truncate_table(inner_->fetch(device), h));
  }
  threshold += config_.corrupt_rate;
  if (u < threshold) {
    return FetchOutcome::garbage(FetchErrorKind::kCorruptedEntry,
                                 corrupt_table(inner_->fetch(device), h));
  }
  return FetchOutcome::success(inner_->fetch(device));
}

FetchOutcome FlakyFibSource::try_fetch(topo::DeviceId device) const {
  std::uint64_t attempt = 0;
  bool dead = false;
  {
    const std::lock_guard lock(mutex_);
    attempt = ++attempts_[device];
    dead = dead_.contains(device);
  }

  FetchOutcome outcome = dead
                             ? FetchOutcome::failure(FetchErrorKind::kUnreachable)
                             : roll(device, attempt);
  if (!outcome.ok()) {
    const std::lock_guard lock(mutex_);
    records_.push_back(
        Record{.device = device, .attempt = attempt, .kind = *outcome.error});
  }
  return outcome;
}

routing::ForwardingTable FlakyFibSource::fetch(topo::DeviceId device) const {
  FetchOutcome outcome = try_fetch(device);
  if (outcome.ok()) return std::move(*outcome.table);
  throw FetchError(*outcome.error,
                   "fetch failed for device " + std::to_string(device) + ": " +
                       std::string(to_string(*outcome.error)));
}

void FlakyFibSource::mark_dead(topo::DeviceId device) {
  const std::lock_guard lock(mutex_);
  dead_.insert(device);
}

void FlakyFibSource::revive(topo::DeviceId device) {
  const std::lock_guard lock(mutex_);
  dead_.erase(device);
}

bool FlakyFibSource::is_dead(topo::DeviceId device) const {
  const std::lock_guard lock(mutex_);
  return dead_.contains(device);
}

std::vector<FlakyFibSource::Record> FlakyFibSource::records() const {
  const std::lock_guard lock(mutex_);
  return records_;
}

void FlakyFibSource::clear_records() {
  const std::lock_guard lock(mutex_);
  records_.clear();
}

}  // namespace dcv::rcdc
