#include "rcdc/smt_verifier.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include <z3++.h>

#include "smt/encoding.hpp"

namespace dcv::rcdc {

namespace {

/// Candidate rules for a contract range: rules whose prefix nests in the
/// range or contains it (no other overlap is possible for prefixes),
/// in descending prefix-length order.
std::vector<const routing::Rule*> candidates_for(
    const routing::ForwardingTable& fib, const net::Prefix& range) {
  std::vector<const routing::Rule*> out;
  for (const routing::Rule& rule : fib.rules()) {
    if (rule.prefix.overlaps(range)) out.push_back(&rule);
  }
  // fib.rules() is already in canonical descending-length order.
  return out;
}

}  // namespace

std::vector<Violation> SmtVerifier::check(const routing::ForwardingTable& fib,
                                          std::span<const Contract> contracts,
                                          topo::DeviceId device) {
  std::vector<Violation> violations;
  z3::context ctx;
  const z3::expr x = ctx.bv_const("dstIp", 32);

  for (const Contract& contract : contracts) {
    if (contract.kind == ContractKind::kDefault) {
      check_default_contract(fib, contract, device, violations);
      continue;
    }

    const auto candidates = candidates_for(fib, contract.prefix);
    const z3::expr in_range = smt::ip_in_prefix(x, contract.prefix);

    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const routing::Rule& rule = *candidates[i];
      if (rule.connected) continue;
      const bool default_disallowed =
          rule.prefix.is_default() && !contract.allow_default_route;
      if (!default_disallowed && hops_satisfy(rule.next_hops, contract)) {
        continue;
      }

      // Is this rule the longest-prefix match of some address in range?
      z3::solver solver(ctx);
      solver.add(in_range);
      solver.add(smt::ip_in_prefix(x, rule.prefix));
      for (std::size_t j = 0; j < i; ++j) {
        // Earlier candidates have longer (or equal-length, hence disjoint)
        // prefixes; excluding them leaves exactly the addresses for which
        // this rule wins longest-prefix match.
        solver.add(!smt::ip_in_prefix(x, candidates[j]->prefix));
      }
      if (solver.check() == z3::sat) {
        violations.push_back(Violation{
            .device = device,
            .contract = contract,
            .kind = default_disallowed
                        ? ViolationKind::kSpecificViaDefaultRoute
                        : ViolationKind::kWrongNextHops,
            .rule_prefix = rule.prefix,
            .actual_next_hops = rule.next_hops});
      }
    }

    // Drop check: does any address in the range match no rule at all?
    z3::solver solver(ctx);
    solver.add(in_range);
    for (const routing::Rule* rule : candidates) {
      solver.add(!smt::ip_in_prefix(x, rule->prefix));
    }
    if (solver.check() == z3::sat) {
      violations.push_back(Violation{.device = device,
                                     .contract = contract,
                                     .kind = ViolationKind::kUnreachableRange,
                                     .rule_prefix = contract.prefix,
                                     .actual_next_hops = {}});
    }
  }
  return violations;
}

std::optional<Violation> SmtVerifier::check_contract_monolithic(
    const routing::ForwardingTable& fib, const Contract& contract,
    topo::DeviceId device) {
  std::vector<Violation> sink;
  if (contract.kind == ContractKind::kDefault) {
    if (check_default_contract(fib, contract, device, sink)) return sink[0];
    return std::nullopt;
  }

  z3::context ctx;
  const z3::expr x = ctx.bv_const("dstIp", 32);
  const z3::expr dropped = ctx.bool_const("dropped");
  const z3::expr via_default = ctx.bool_const("viaDefault");

  // The universe of next hops: every hop referenced by the policy or the
  // contract becomes one Boolean variable (§2.5.1 equation 2).
  std::unordered_map<topo::DeviceId, z3::expr> hop_vars;
  const auto hop_var = [&](topo::DeviceId hop) -> z3::expr {
    const auto it = hop_vars.find(hop);
    if (it != hop_vars.end()) return it->second;
    const z3::expr var =
        ctx.bool_const(("hop" + std::to_string(hop)).c_str());
    hop_vars.emplace(hop, var);
    return var;
  };
  for (const routing::Rule& rule : fib.rules()) {
    for (const topo::DeviceId hop : rule.next_hops) hop_var(hop);
  }
  for (const topo::DeviceId hop : contract.expected_next_hops) hop_var(hop);

  // The constraint "the selected hop set is exactly `hops`".
  const auto hops_exactly =
      [&](const std::vector<topo::DeviceId>& hops) -> z3::expr {
    z3::expr out = !dropped;
    for (const auto& [device_id, var] : hop_vars) {
      const bool member = std::binary_search(hops.begin(), hops.end(),
                                             device_id);
      out = out && (member ? var : !var);
    }
    return out;
  };

  // Fold the policy into the if-then-else chain of Definition 2.1, from the
  // drop case backwards. fib.rules() is sorted by descending prefix length,
  // which is exactly the chain's rule order. Each branch also tracks
  // whether the deciding rule was the default route.
  z3::expr policy = dropped && !via_default;
  for (const auto& [device_id, var] : hop_vars) policy = policy && !var;
  for (auto it = fib.rules().rbegin(); it != fib.rules().rend(); ++it) {
    const z3::expr deciding_default =
        it->prefix.is_default() ? via_default : !via_default;
    policy = z3::ite(smt::ip_in_prefix(x, it->prefix),
                     hops_exactly(it->next_hops) && deciding_default, policy);
  }

  // Contract satisfaction as a hop-set predicate.
  z3::expr contract_ok = ctx.bool_val(true);
  switch (contract.mode) {
    case MatchMode::kExactSet:
      contract_ok = hops_exactly(contract.expected_next_hops);
      break;
    case MatchMode::kSubsetAtLeast: {
      contract_ok = !dropped;
      z3::expr_vector members(ctx);
      for (const auto& [device_id, var] : hop_vars) {
        if (std::binary_search(contract.expected_next_hops.begin(),
                               contract.expected_next_hops.end(),
                               device_id)) {
          members.push_back(var);
        } else {
          contract_ok = contract_ok && !var;
        }
      }
      if (members.size() > 0) {
        contract_ok =
            contract_ok &&
            z3::atleast(members,
                        static_cast<unsigned>(contract.min_next_hops));
      } else if (contract.min_next_hops > 0) {
        contract_ok = ctx.bool_val(false);
      }
      break;
    }
  }

  if (!contract.allow_default_route) {
    contract_ok = contract_ok && !via_default;
  }

  // §2.5.1: C.range(x) ∧ P ∧ ¬C.nexthops — unsatisfiable iff the contract
  // is preserved by the policy.
  z3::solver solver(ctx);
  solver.add(smt::ip_in_prefix(x, contract.prefix));
  solver.add(policy);
  solver.add(!contract_ok);
  if (solver.check() != z3::sat) return std::nullopt;

  // Recover the violating rule from the witness address.
  const z3::model model = solver.get_model();
  const net::Ipv4Address witness = smt::eval_ip(model, x);
  const routing::Rule* rule = fib.lookup(witness);
  if (rule == nullptr) {
    return Violation{.device = device,
                     .contract = contract,
                     .kind = ViolationKind::kUnreachableRange,
                     .rule_prefix = contract.prefix,
                     .actual_next_hops = {}};
  }
  return Violation{.device = device,
                   .contract = contract,
                   .kind = rule->prefix.is_default() &&
                                   !contract.allow_default_route
                               ? ViolationKind::kSpecificViaDefaultRoute
                               : ViolationKind::kWrongNextHops,
                   .rule_prefix = rule->prefix,
                   .actual_next_hops = rule->next_hops};
}

}  // namespace dcv::rcdc
