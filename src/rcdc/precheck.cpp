#include "rcdc/precheck.hpp"

#include <algorithm>

#include "rcdc/fib_source.hpp"
#include "rcdc/trie_verifier.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

NetworkChange reassign_asn(std::string description, topo::DeviceId device,
                           topo::Asn asn) {
  return NetworkChange{.description = std::move(description),
                       .apply = [device, asn](topo::Topology& topology) {
                         topology.set_asn(device, asn);
                       }};
}

NetworkChange shut_links(std::string description,
                         std::vector<topo::LinkId> links) {
  return NetworkChange{
      .description = std::move(description),
      .apply = [links = std::move(links)](topo::Topology& topology) {
        for (const topo::LinkId link : links) {
          topology.set_bgp_state(link, topo::BgpSessionState::kAdminShutdown);
        }
      }};
}

namespace {

std::vector<Violation> validate_emulated(
    const routing::BgpSimulator& simulator,
    const topo::MetadataService& intent, ContractGenOptions options) {
  const SimulatorFibSource fibs(simulator);
  const DatacenterValidator validator(intent, fibs,
                                      make_trie_verifier_factory(), options);
  return validator.run(/*threads=*/2).violations;
}

}  // namespace

PrecheckResult PrecheckPipeline::check(const NetworkChange& change) const {
  PrecheckResult result;
  result.description = change.description;

  // Intent derives from the production architecture; the emulator clone
  // carries the production state including any current drift.
  const topo::MetadataService intent(*production_);

  topo::Topology emulated = *production_;  // "same topology as production"
  // One simulator across the before/after comparison: applying the change
  // and warm-starting reconvergence from the touched devices is the
  // emulation analogue of pushing a change into a converged network.
  routing::BgpSimulator simulator(emulated);
  const auto baseline = validate_emulated(simulator, intent, options_);
  result.baseline_violations = baseline.size();

  change.apply(emulated);
  simulator.reconverge();
  auto post = validate_emulated(simulator, intent, options_);
  result.post_change_violations = post.size();

  // The change is charged only with violations absent from the baseline.
  for (Violation& violation : post) {
    if (std::find(baseline.begin(), baseline.end(), violation) ==
        baseline.end()) {
      result.introduced.push_back(std::move(violation));
    }
  }
  result.approved = result.introduced.empty();
  return result;
}

std::vector<PrecheckResult> PrecheckPipeline::check_rollout(
    const std::vector<NetworkChange>& changes) const {
  std::vector<PrecheckResult> results;
  for (const NetworkChange& change : changes) {
    results.push_back(check(change));
    if (!results.back().approved) break;
  }
  return results;
}

}  // namespace dcv::rcdc
