#include "rcdc/precheck.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "rcdc/incremental.hpp"
#include "rcdc/trie_verifier.hpp"

namespace dcv::rcdc {

NetworkChange reassign_asn(std::string description, topo::DeviceId device,
                           topo::Asn asn) {
  return NetworkChange{.description = std::move(description),
                       .apply = [device, asn](topo::Topology& topology) {
                         topology.set_asn(device, asn);
                       }};
}

NetworkChange shut_links(std::string description,
                         std::vector<topo::LinkId> links) {
  return NetworkChange{
      .description = std::move(description),
      .apply = [links = std::move(links)](topo::Topology& topology) {
        for (const topo::LinkId link : links) {
          topology.set_bgp_state(link, topo::BgpSessionState::kAdminShutdown);
        }
      }};
}

unsigned resolve_precheck_threads(unsigned configured) {
  if (configured != 0) return configured;
  // Same hardware-aware clamp as the simulator's worker pool; the
  // validator additionally clamps to the device count per run.
  return std::clamp(std::thread::hardware_concurrency(), 1u, 16u);
}

namespace {

std::vector<Violation> validate_emulated(const routing::BgpSimulator& simulator,
                                         const topo::MetadataService& intent,
                                         ContractGenOptions options,
                                         unsigned threads) {
  const SimulatorFibSource fibs(simulator);
  const DatacenterValidator validator(intent, fibs,
                                      make_trie_verifier_factory(), options);
  return validator.run(threads).violations;
}

}  // namespace

PrecheckResult PrecheckPipeline::check(const NetworkChange& change) const {
  PrecheckResult result;
  result.description = change.description;
  const unsigned threads = resolve_precheck_threads(threads_);

  // Intent derives from the production architecture; the emulator clone
  // carries the production state including any current drift.
  const topo::MetadataService intent(*production_);

  topo::Topology emulated = *production_;  // "same topology as production"
  // One simulator across the before/after comparison: applying the change
  // and warm-starting reconvergence from the touched devices is the
  // emulation analogue of pushing a change into a converged network.
  routing::BgpSimulator simulator(emulated);
  const auto baseline = validate_emulated(simulator, intent, options_, threads);
  result.baseline_violations = baseline.size();

  change.apply(emulated);
  simulator.reconverge();
  auto post = validate_emulated(simulator, intent, options_, threads);
  result.post_change_violations = post.size();

  // The change is charged only with violations absent from the baseline.
  for (Violation& violation : post) {
    if (std::find(baseline.begin(), baseline.end(), violation) ==
        baseline.end()) {
      result.introduced.push_back(std::move(violation));
    }
  }
  result.approved = result.introduced.empty();
  return result;
}

std::vector<PrecheckResult> PrecheckPipeline::check_rollout(
    const std::vector<NetworkChange>& changes) const {
  std::vector<PrecheckResult> results;
  for (const NetworkChange& change : changes) {
    results.push_back(check(change));
    if (!results.back().approved) break;
  }
  return results;
}

PrecheckSession::PrecheckSession(const topo::Topology& production,
                                 ContractGenOptions options, unsigned threads)
    : options_(options),
      threads_(resolve_precheck_threads(threads)),
      base_epoch_(production.epoch()),
      base_(production),
      emulated_(production),
      intent_(base_),
      simulator_(emulated_),
      fibs_(simulator_),
      validator_(intent_, fibs_, make_trie_verifier_factory(), options_) {
  // The one cold pass: converge (done by the simulator constructor),
  // validate everything, and record the per-device baseline every later
  // check diffs against.
  ValidationSummary summary = validator_.run(threads_);
  baseline_total_ = summary.violations.size();
  baseline_by_device_.resize(base_.device_count());
  for (Violation& violation : summary.violations) {
    baseline_by_device_[violation.device].push_back(std::move(violation));
  }
  baseline_fp_.resize(base_.device_count());
  for (std::size_t d = 0; d < base_.device_count(); ++d) {
    baseline_fp_[d] = fingerprint(simulator_.fib(static_cast<topo::DeviceId>(d)));
  }
  (void)simulator_.take_changed_devices();  // the cold run marked everything
}

PrecheckResult PrecheckSession::check(const NetworkChange& change) {
  return check_batch({NetworkChange{change.description, change.apply}})
      .front();
}

PrecheckResult PrecheckSession::evaluate(
    const std::string& description, std::vector<topo::DeviceId>& divergent) {
  PrecheckResult result;
  result.description = description;
  result.baseline_violations = baseline_total_;

  // Candidate set: devices already divergent before this step plus devices
  // the reconvergence just touched. Everything else is fingerprint-equal
  // to the baseline by induction and need not be re-examined.
  std::vector<topo::DeviceId> candidates = simulator_.take_changed_devices();
  candidates.insert(candidates.end(), divergent.begin(), divergent.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  divergent.clear();
  for (const topo::DeviceId device : candidates) {
    if (fingerprint(simulator_.fib(device)) != baseline_fp_[device]) {
      divergent.push_back(device);
    }
  }
  devices_revalidated_ += divergent.size();
  devices_skipped_ += baseline_fp_.size() - divergent.size();
  ++checks_run_;

  if (divergent.empty()) {
    result.post_change_violations = baseline_total_;
    result.approved = true;
    return result;
  }

  ValidationSummary summary = validator_.run(divergent, threads_);
  std::size_t baseline_on_divergent = 0;
  for (const topo::DeviceId device : divergent) {
    baseline_on_divergent += baseline_by_device_[device].size();
  }
  result.post_change_violations =
      baseline_total_ - baseline_on_divergent + summary.violations.size();
  for (Violation& violation : summary.violations) {
    const auto& base = baseline_by_device_[violation.device];
    if (std::find(base.begin(), base.end(), violation) == base.end()) {
      result.introduced.push_back(std::move(violation));
    }
  }
  result.approved = result.introduced.empty();
  return result;
}

std::vector<PrecheckResult> PrecheckSession::check_batch(
    const std::vector<NetworkChange>& changes) {
  std::vector<PrecheckResult> results;
  results.reserve(changes.size());
  if (changes.empty()) return results;

  // Devices whose FIB currently differs from the baseline fixpoint
  // (relative to the state the simulator is converged on). Starts empty:
  // the session is always at the baseline between batches.
  std::vector<topo::DeviceId> divergent;

  for (std::size_t i = 0; i < changes.size(); ++i) {
    // Revert the previous change and apply this one as ONE topology delta,
    // then warm-reconverge once — the batch amortization (K+1 instead of
    // 2K reconvergences for K changes).
    if (i > 0) emulated_ = base_;
    std::string error;
    try {
      changes[i].apply(emulated_);
    } catch (const std::exception& exception) {
      error = exception.what();
      emulated_ = base_;  // drop any partial mutation
    }
    if (error.empty() && (emulated_.device_count() != base_.device_count() ||
                          emulated_.link_count() != base_.link_count())) {
      // Fabric-shape changes invalidate the per-device baseline mapping;
      // they belong in the cold PrecheckPipeline, not the warm session.
      error = "shape-changing change not supported by the warm session";
      emulated_ = base_;
    }
    simulator_.reconverge();

    if (!error.empty()) {
      // The emulated network is back at (a state fingerprint-equal to) the
      // baseline; refresh the divergence bookkeeping and report the error.
      PrecheckResult failed = evaluate(changes[i].description, divergent);
      failed.error = std::move(error);
      failed.approved = false;
      results.push_back(std::move(failed));
      continue;
    }
    results.push_back(evaluate(changes[i].description, divergent));
  }

  // Roll back the last change so the session is at the baseline again.
  emulated_ = base_;
  simulator_.reconverge();
  std::vector<topo::DeviceId> candidates = simulator_.take_changed_devices();
  candidates.insert(candidates.end(), divergent.begin(), divergent.end());
  (void)candidates;  // all fingerprint-equal again; nothing to retain
  return results;
}

}  // namespace dcv::rcdc
