#pragma once

#include <string>

#include "rcdc/severity.hpp"
#include "rcdc/triage.hpp"
#include "rcdc/validator.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// Options for report rendering.
struct ReportOptions {
  /// Annotate each violation with its §2.6.4 risk assessment.
  bool include_risk = true;
  /// Annotate each violation with its §2.6.1 triage decision.
  bool include_triage = true;
  /// Pretty-print with indentation (otherwise compact single line).
  bool pretty = true;
};

/// Renders a validation summary as JSON — the event feed the production
/// service pushes "to a stream analytics system" whose "query interface
/// facilitates interactive querying of the results" (§2.6.1). Device ids
/// are resolved to names via the topology.
[[nodiscard]] std::string write_report_json(const ValidationSummary& summary,
                                            const topo::Topology& topology,
                                            const ReportOptions& options = {});

/// Escapes a string for inclusion in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace dcv::rcdc
