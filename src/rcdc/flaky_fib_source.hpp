#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rcdc/fib_source.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// Per-attempt injection rates of the fetch-layer failure modes. Rates are
/// probabilities in [0, 1] and are evaluated cumulatively on one uniform
/// draw per attempt, in the order unreachable, timeout, transient,
/// truncate, corrupt (so their sum should stay ≤ 1).
struct FlakyConfig {
  double unreachable_rate = 0.0;
  double timeout_rate = 0.0;
  double transient_rate = 0.0;
  double truncate_rate = 0.0;
  double corrupt_rate = 0.0;
  std::uint64_t seed = 0;
};

/// Decorator that deterministically injects fetch-layer failures in front
/// of any FibSource, so the monitoring stack can be exercised against the
/// failure regime of §2.6.1 without live devices.
///
/// Determinism: the outcome of attempt n for device d is a pure function of
/// (seed, d, n) — independent of thread interleaving — so runs with the
/// same seed reproduce the same failure schedule. Per-device attempt
/// counters advance on every try_fetch()/fetch() call.
///
/// Truncation and corruption return *realistic garbage*: a syntactically
/// valid ForwardingTable that is missing its tail (often including the
/// default route) or has a damaged next-hop set, tagged with the matching
/// FetchErrorKind so resilient callers can retry while naive callers
/// validate what they got.
///
/// Injected failures are recorded as ground truth (like
/// topo::FaultInjector::records() for network faults): the union of the
/// two record streams is the full explanation of everything a validator
/// observes — network-layer faults surface as contract violations, fetch
/// -layer faults as failed/degraded pulls.
class FlakyFibSource final : public FibSource {
 public:
  /// One injected fetch fault, kept for ground truth.
  struct Record {
    topo::DeviceId device = topo::kInvalidDevice;
    /// 1-based attempt index at which the fault fired (per device).
    std::uint64_t attempt = 0;
    FetchErrorKind kind = FetchErrorKind::kTransient;

    [[nodiscard]] std::string to_string(const topo::Topology& topology) const;
  };

  FlakyFibSource(const FibSource& inner, FlakyConfig config)
      : inner_(&inner), config_(config) {}

  /// The fallible path: rolls the per-device failure schedule forward one
  /// attempt and either delegates to the inner source, fails, or returns a
  /// degraded table.
  [[nodiscard]] FetchOutcome try_fetch(topo::DeviceId device) const override;

  /// Legacy infallible path: same schedule, but injected failures raise
  /// FetchError — this is the pre-resilience behavior ("the whole run
  /// stalls on the first flaky device") kept for contrast and for callers
  /// that must not see garbage.
  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override;

  /// Marks a device persistently unreachable regardless of rates (a dead
  /// device: management-plane outage). Every attempt fails kUnreachable
  /// until revive() — the workload the circuit breaker exists for.
  void mark_dead(topo::DeviceId device);
  void revive(topo::DeviceId device);
  [[nodiscard]] bool is_dead(topo::DeviceId device) const;

  /// Ground truth of every injected fault so far (copy; thread-safe).
  [[nodiscard]] std::vector<Record> records() const;
  void clear_records();

  [[nodiscard]] const FlakyConfig& config() const { return config_; }

 private:
  [[nodiscard]] FetchOutcome roll(topo::DeviceId device,
                                  std::uint64_t attempt) const;

  const FibSource* inner_;
  FlakyConfig config_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<topo::DeviceId, std::uint64_t> attempts_;
  mutable std::vector<Record> records_;
  std::unordered_set<topo::DeviceId> dead_;
};

}  // namespace dcv::rcdc
