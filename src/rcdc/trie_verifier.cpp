#include "rcdc/trie_verifier.hpp"

#include <algorithm>

#include "net/interval.hpp"
#include "trie/prefix_trie.hpp"

namespace dcv::rcdc {

bool check_default_contract(const routing::ForwardingTable& fib,
                            const Contract& contract, topo::DeviceId device,
                            std::vector<Violation>& out) {
  const routing::Rule* def = fib.default_route();
  if (def == nullptr) {
    out.push_back(Violation{.device = device,
                            .contract = contract,
                            .kind = ViolationKind::kMissingDefaultRoute,
                            .rule_prefix = net::Prefix::default_route(),
                            .actual_next_hops = {}});
    return true;
  }
  if (!hops_satisfy(def->next_hops, contract)) {
    out.push_back(Violation{.device = device,
                            .contract = contract,
                            .kind = ViolationKind::kDefaultRouteMismatch,
                            .rule_prefix = net::Prefix::default_route(),
                            .actual_next_hops = def->next_hops});
    return true;
  }
  return false;
}

std::vector<Violation> TrieVerifier::check(
    const routing::ForwardingTable& fib, std::span<const Contract> contracts,
    topo::DeviceId device) {
  std::vector<Violation> violations;

  // Build the policy trie once per device (§2.5.2: "We represent
  // prefix-based routing policies into a hash-trie").
  trie::PrefixTrie<const routing::Rule*> policy;
  for (const routing::Rule& rule : fib.rules()) {
    policy.insert(rule.prefix, &rule);
  }

  for (const Contract& contract : contracts) {
    if (contract.kind == ContractKind::kDefault) {
      check_default_contract(fib, contract, device, violations);
      continue;
    }

    // Candidate rules related to the contract range, in descending order of
    // prefix length (the walk order of §2.5.2).
    auto candidates = policy.related(contract.prefix);
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.first.length() != b.first.length()) {
                  return a.first.length() > b.first.length();
                }
                return a.first < b.first;
              });

    const auto range = net::AddressInterval::from_prefix(contract.prefix);
    net::IntervalSet covered;  // the list L of §2.5.2, as an interval union
    bool complete = false;
    std::uint64_t walked = 0;
    for (const auto& [rule_prefix, rule] : candidates) {
      ++walked;
      // The slice of the contract range this rule can match: the rule's
      // prefix if it nests inside the range, the whole range otherwise
      // (prefixes never partially overlap).
      const auto slice = contract.prefix.contains(rule_prefix)
                             ? net::AddressInterval::from_prefix(rule_prefix)
                             : range;
      // Longer rules walked earlier may already shadow this rule within the
      // contract range; a shadowed rule cannot violate the contract.
      if (!covered.covers(slice)) {
        const routing::Rule& r = **rule;
        const bool default_disallowed =
            r.prefix.is_default() && !contract.allow_default_route;
        if (!r.connected &&
            (default_disallowed || !hops_satisfy(r.next_hops, contract))) {
          violations.push_back(Violation{
              .device = device,
              .contract = contract,
              .kind = default_disallowed
                          ? ViolationKind::kSpecificViaDefaultRoute
                          : ViolationKind::kWrongNextHops,
              .rule_prefix = r.prefix,
              .actual_next_hops = r.next_hops});
        }
      }
      covered.add(slice);
      if (covered.covers(range)) {  // the stop condition of §2.5.2
        complete = true;
        break;
      }
    }
    if (!complete && !covered.covers(range)) {
      violations.push_back(Violation{.device = device,
                                     .contract = contract,
                                     .kind = ViolationKind::kUnreachableRange,
                                     .rule_prefix = contract.prefix,
                                     .actual_next_hops = {}});
    }
    if (rules_walked_ != nullptr) rules_walked_->observe(walked);
  }
  return violations;
}

}  // namespace dcv::rcdc
