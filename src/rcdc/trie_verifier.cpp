#include "rcdc/trie_verifier.hpp"

#include "net/interval.hpp"

namespace dcv::rcdc {

bool check_default_contract(const routing::ForwardingTable& fib,
                            const Contract& contract, topo::DeviceId device,
                            std::vector<Violation>& out) {
  const routing::Rule* def = fib.default_route();
  if (def == nullptr) {
    out.push_back(Violation{.device = device,
                            .contract = contract,
                            .kind = ViolationKind::kMissingDefaultRoute,
                            .rule_prefix = net::Prefix::default_route(),
                            .actual_next_hops = {}});
    return true;
  }
  if (!hops_satisfy(def->next_hops, contract)) {
    out.push_back(Violation{.device = device,
                            .contract = contract,
                            .kind = ViolationKind::kDefaultRouteMismatch,
                            .rule_prefix = net::Prefix::default_route(),
                            .actual_next_hops = def->next_hops});
    return true;
  }
  return false;
}

std::vector<Violation> TrieVerifier::check(
    const routing::ForwardingTable& fib, std::span<const Contract> contracts,
    topo::DeviceId device) {
  std::vector<Violation> violations;

  // Rebuild the policy trie into the retained arena (§2.5.2: "We represent
  // prefix-based routing policies into a hash-trie"). After the first few
  // devices the arena has grown to the working-set size and rebuilds stop
  // allocating.
  const std::size_t capacity_before = policy_.node_capacity();
  policy_.clear();
  policy_.reserve(fib.rules().size() * 2);
  for (const routing::Rule& rule : fib.rules()) {
    policy_.insert(rule.prefix, &rule);
  }
  if (metrics_.rebuilds != nullptr) metrics_.rebuilds->inc();
  if (metrics_.arena_growth != nullptr &&
      policy_.node_capacity() > capacity_before) {
    metrics_.arena_growth->inc();
  }
  if (metrics_.arena_nodes != nullptr) {
    metrics_.arena_nodes->set(static_cast<double>(policy_.node_capacity()));
  }

  for (const Contract& contract : contracts) {
    if (contract.kind == ContractKind::kDefault) {
      check_default_contract(fib, contract, device, violations);
      continue;
    }

    // Candidate rules related to the contract range, in descending order of
    // prefix length (the walk order of §2.5.2) via the trie's counting
    // sort; both buffers are retained across contracts and devices.
    policy_.related_ordered(contract.prefix, candidates_, scratch_);

    const auto range = net::AddressInterval::from_prefix(contract.prefix);
    net::IntervalSet covered;  // the list L of §2.5.2, as an interval union
    bool complete = false;
    std::uint64_t walked = 0;
    for (const auto& [rule_prefix, rule] : candidates_) {
      ++walked;
      // The slice of the contract range this rule can match: the rule's
      // prefix if it nests inside the range, the whole range otherwise
      // (prefixes never partially overlap).
      const auto slice = contract.prefix.contains(rule_prefix)
                             ? net::AddressInterval::from_prefix(rule_prefix)
                             : range;
      // Longer rules walked earlier may already shadow this rule within the
      // contract range; a shadowed rule cannot violate the contract.
      if (!covered.covers(slice)) {
        const routing::Rule& r = **rule;
        const bool default_disallowed =
            r.prefix.is_default() && !contract.allow_default_route;
        if (!r.connected &&
            (default_disallowed || !hops_satisfy(r.next_hops, contract))) {
          violations.push_back(Violation{
              .device = device,
              .contract = contract,
              .kind = default_disallowed
                          ? ViolationKind::kSpecificViaDefaultRoute
                          : ViolationKind::kWrongNextHops,
              .rule_prefix = r.prefix,
              .actual_next_hops = r.next_hops});
        }
      }
      covered.add(slice);
      if (covered.covers(range)) {  // the stop condition of §2.5.2
        complete = true;
        break;
      }
    }
    if (!complete && !covered.covers(range)) {
      violations.push_back(Violation{.device = device,
                                     .contract = contract,
                                     .kind = ViolationKind::kUnreachableRange,
                                     .rule_prefix = contract.prefix,
                                     .actual_next_hops = {}});
    }
    if (metrics_.rules_walked != nullptr) {
      metrics_.rules_walked->observe(walked);
    }
  }
  return violations;
}

}  // namespace dcv::rcdc
