#include "rcdc/severity.hpp"

#include <ostream>

namespace dcv::rcdc {

std::string_view to_string(RiskLevel level) {
  switch (level) {
    case RiskLevel::kHigh:
      return "high";
    case RiskLevel::kLow:
      return "low";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, RiskLevel level) {
  return os << to_string(level);
}

RiskAssessment RiskPolicy::assess(const Violation& violation,
                                  bool degraded_table) const {
  RiskAssessment out = assess(violation);
  out.degraded_confidence = degraded_table;
  return out;
}

RiskAssessment RiskPolicy::assess(const Violation& violation) const {
  const topo::Device& device = topology_->device(violation.device);

  RiskAssessment out;
  out.additional_faults_to_impact = violation.actual_next_hops.size();

  // Servers whose traffic this device carries for the affected destination.
  switch (device.role) {
    case topo::DeviceRole::kTor:
      out.servers_impacted = servers_per_rack_;
      break;
    case topo::DeviceRole::kLeaf:
      out.servers_impacted =
          servers_per_rack_ *
          topology_->tors_in_cluster(device.cluster).size();
      break;
    case topo::DeviceRole::kSpine:
    case topo::DeviceRole::kRegionalSpine:
      out.servers_impacted =
          servers_per_rack_ *
          topology_->devices_with_role(topo::DeviceRole::kTor).size();
      break;
  }

  const bool already_impacting =
      violation.kind == ViolationKind::kUnreachableRange ||
      violation.kind == ViolationKind::kMissingDefaultRoute;
  const bool one_fault_from_impact = out.additional_faults_to_impact <= 1;
  const bool wide_blast_radius =
      device.role == topo::DeviceRole::kSpine ||
      device.role == topo::DeviceRole::kRegionalSpine;

  out.level = (already_impacting || one_fault_from_impact ||
               wide_blast_radius)
                  ? RiskLevel::kHigh
                  : RiskLevel::kLow;
  return out;
}

}  // namespace dcv::rcdc
