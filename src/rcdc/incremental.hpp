#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/validator.hpp"

namespace dcv::rcdc {

/// Incremental re-validation between monitoring cycles.
///
/// The systems the paper compares against ([21], [50]) work hard to make
/// *global* verification incremental. Locality makes incrementality
/// trivial: a device's verdict depends only on its own FIB and its (fixed)
/// contracts, so between cycles it suffices to re-verify devices whose FIB
/// content changed. Tables are still pulled every cycle (that is how
/// change is observed — and pulling dominates production cost, §2.6.1),
/// but verification work drops to the changed set, and cached violation
/// lists are reused verbatim for untouched devices.
class IncrementalValidator {
 public:
  /// `metrics`, when set, receives dcv_incremental_* series (fingerprint
  /// time, revalidation ratio, devices revalidated/skipped) and must
  /// outlive the validator.
  IncrementalValidator(const topo::MetadataService& metadata,
                       VerifierFactory verifier_factory,
                       ContractGenOptions options = {},
                       obs::MetricsRegistry* metrics = nullptr);

  struct CycleResult {
    std::size_t devices_total = 0;
    /// Devices actually re-verified this cycle (changed or first seen).
    std::size_t devices_revalidated = 0;
    std::size_t contracts_checked = 0;
    /// The complete current violation set (fresh + cached), device order.
    std::vector<Violation> violations;
  };

  /// Pulls every device's FIB from `fibs`, re-verifies the changed ones,
  /// and returns the merged picture.
  [[nodiscard]] CycleResult run_cycle(const FibSource& fibs,
                                      unsigned threads = 1);

  /// Drops all cached state; the next cycle revalidates everything.
  void reset();

 private:
  const topo::MetadataService* metadata_;
  VerifierFactory verifier_factory_;
  ContractGenerator generator_;
  /// Epoch of the plan the caches were built against; a mismatch at cycle
  /// start drops every cached verdict (contracts may have changed) and
  /// resizes the per-device state to the current device count. Starts at
  /// the all-ones sentinel so the first cycle adopts the live epoch.
  std::uint64_t plan_epoch_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> fingerprints_;  // 0 = never validated
  std::vector<std::vector<Violation>> cached_violations_;
  obs::Histogram* fingerprint_ns_ = nullptr;
  obs::Counter* revalidated_total_ = nullptr;
  obs::Counter* skipped_total_ = nullptr;
  obs::Gauge* revalidation_ratio_ = nullptr;
};

/// Semantic content fingerprint of a forwarding table: invariant under
/// permutation of rule storage order and of each rule's ECMP next-hop set
/// (equivalent tables fingerprint identically; never returns the 0
/// "never validated" sentinel).
[[nodiscard]] std::uint64_t fingerprint(const routing::ForwardingTable& fib);

}  // namespace dcv::rcdc
