#pragma once

#include <span>
#include <vector>

#include "rcdc/contract.hpp"
#include "routing/fib.hpp"

namespace dcv::rcdc {

/// The verification engine interface of §2.5: "takes as input a
/// prefix-based forwarding policy P and a contract C, and produces a list
/// of rules in P that violate the contract. The list is empty if P
/// satisfies C."
///
/// Both engines implement identical semantics (property tests assert
/// agreement on random inputs):
///
///  * A default contract is checked as the special case of §2.5.1: the
///    FIB's default rule's next hops are compared against the contract.
///  * A specific contract for range C is violated by rule r iff r is the
///    longest-prefix match of some address in C and r's next hops do not
///    satisfy the contract; if some address in C matches no rule at all,
///    the contract fails with kUnreachableRange.
class Verifier {
 public:
  virtual ~Verifier() = default;

  Verifier() = default;
  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  /// Checks every contract against the device FIB; returns all violations.
  [[nodiscard]] virtual std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) = 0;
};

/// Shared special-case handling for default contracts (§2.5.1): compare the
/// FIB's default rule against the contract. Returns true if a violation was
/// appended.
bool check_default_contract(const routing::ForwardingTable& fib,
                            const Contract& contract, topo::DeviceId device,
                            std::vector<Violation>& out);

}  // namespace dcv::rcdc
