#pragma once

#include "rcdc/verifier.hpp"

namespace dcv::rcdc {

/// Ablation baseline for the trie engine: identical semantics, but the
/// candidate set of §2.5.2,
///
///   { r | C.range ⊆ r.prefix ∨ r.prefix ⊆ C.range },
///
/// is collected by a linear scan over the whole policy instead of a trie
/// traversal. Per-contract cost is O(|policy|) instead of O(depth +
/// |related|), so verifying all contracts of a device is quadratic in its
/// table size — this engine exists to quantify exactly what the
/// hash-trie buys (§2.5.2: "Collecting this set of rules is efficient ...
/// because traversal of the hash-trie can be limited to nodes that
/// correspond to rules that are returned").
class LinearVerifier final : public Verifier {
 public:
  [[nodiscard]] std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) override;
};

}  // namespace dcv::rcdc
