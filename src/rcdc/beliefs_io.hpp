#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rcdc/beliefs.hpp"

namespace dcv::rcdc {

/// Text format for belief files, one belief per line:
///
///   # comments allowed
///   reachable        <source-device> <prefix>
///   unreachable      <source-device> <prefix>
///   max-path-length  <source-device> <prefix> <bound>
///   min-ecmp-paths   <source-device> <prefix> <bound>
///   traverses        <source-device> <prefix> <device>
///   avoids           <source-device> <prefix> <device>
///
/// Device names resolve against the given topology. Throws dcv::ParseError
/// with a line number on malformed input.
[[nodiscard]] std::vector<Belief> parse_beliefs(
    std::string_view text, const topo::Topology& topology);

/// Renders beliefs back to the same format.
[[nodiscard]] std::string write_beliefs(const std::vector<Belief>& beliefs,
                                        const topo::Topology& topology);

}  // namespace dcv::rcdc
