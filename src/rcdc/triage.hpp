#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "rcdc/severity.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// Remediation routes of §2.6.1/§2.6.4: "if links are operationally down,
/// then these are most likely because of cabling faults and are remediated
/// by replacing the cables. ... if the BGP sessions are administratively
/// shut, then they are unshut and monitored for health." Errors without a
/// well-understood failure mode are escalated for human investigation.
enum class RemediationAction : std::uint8_t {
  kReplaceCable,          // link operationally down -> datacenter ops queue
  kUnshutAndMonitor,      // BGP admin-shut -> automatic unshut
  kEscalateToOperator,    // unknown failure mode -> alert with severity
};

[[nodiscard]] std::string_view to_string(RemediationAction action);
std::ostream& operator<<(std::ostream& os, RemediationAction action);

/// A triage decision for one violation.
struct TriageDecision {
  RemediationAction action = RemediationAction::kEscalateToOperator;
  RiskLevel risk = RiskLevel::kLow;
  /// The link implicated by metadata correlation, if any.
  std::optional<topo::LinkId> link;
  std::string rationale;
  /// The violation came from a degraded table (stale cache or a truncated/
  /// corrupted pull): remediation should wait for a fresh-pull confirmation
  /// before acting (degraded-mode semantics of the fetch layer).
  bool low_confidence = false;
};

/// The automated triaging process: correlates validation errors with
/// topology state ("additional metadata"), classifies them, and directs
/// them to the appropriate remediation queue.
class TriageEngine {
 public:
  explicit TriageEngine(const topo::Topology& topology)
      : topology_(&topology), risk_(topology) {}

  [[nodiscard]] TriageDecision triage(const Violation& violation) const;

  /// Overload for violations found on a degraded (stale or garbage) table:
  /// the decision is marked low-confidence and its rationale says so.
  [[nodiscard]] TriageDecision triage(const Violation& violation,
                                      bool degraded_table) const;

 private:
  const topo::Topology* topology_;
  RiskPolicy risk_;
};

}  // namespace dcv::rcdc
