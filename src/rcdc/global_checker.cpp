#include "rcdc/global_checker.hpp"

#include <functional>

#include "net/error.hpp"

namespace dcv::rcdc {

namespace {

using topo::Device;
using topo::DeviceId;
using topo::DeviceRole;
using topo::MetadataService;
using topo::PrefixFact;

/// Per-device result of the forwarding-graph traversal for one destination.
struct NodeInfo {
  bool reachable = false;
  std::uint64_t paths = 0;
  int min_length = 0;
  int max_length = 0;
  bool loop = false;
};

enum class VisitState : std::uint8_t { kUnvisited, kInProgress, kDone };

/// Traverses the *actual* forwarding graph: at each device, the
/// longest-prefix match of the destination address decides the next hops.
class ActualTraversal {
 public:
  ActualTraversal(const std::vector<routing::ForwardingTable>& fibs,
                  net::Ipv4Address address, DeviceId destination)
      : fibs_(&fibs),
        address_(address),
        destination_(destination),
        states_(fibs.size(), VisitState::kUnvisited),
        info_(fibs.size()) {}

  const NodeInfo& visit(DeviceId v) {
    if (states_[v] == VisitState::kDone) return info_[v];
    if (states_[v] == VisitState::kInProgress) {
      // Forwarding loop: cut the cycle and mark it.
      info_[v].loop = true;
      return info_[v];
    }
    states_[v] = VisitState::kInProgress;
    NodeInfo result;
    if (v == destination_) {
      result = NodeInfo{.reachable = true,
                        .paths = 1,
                        .min_length = 0,
                        .max_length = 0,
                        .loop = false};
    } else {
      const routing::Rule* rule = (*fibs_)[v].lookup(address_);
      if (rule != nullptr && !rule->connected) {
        for (const DeviceId next : rule->next_hops) {
          const NodeInfo& child = visit(next);
          result.loop = result.loop || child.loop;
          if (!child.reachable) continue;
          if (result.paths == 0) {
            result.min_length = child.min_length + 1;
            result.max_length = child.max_length + 1;
          } else {
            result.min_length =
                std::min(result.min_length, child.min_length + 1);
            result.max_length =
                std::max(result.max_length, child.max_length + 1);
          }
          result.reachable = true;
          result.paths += child.paths;
        }
      }
      // No rule, a connected rule on the wrong device (misdelivery), or no
      // reachable next hop: traffic is lost here.
    }
    info_[v] = result;
    states_[v] = VisitState::kDone;
    return info_[v];
  }

 private:
  const std::vector<routing::ForwardingTable>* fibs_;
  net::Ipv4Address address_;
  DeviceId destination_;
  std::vector<VisitState> states_;
  std::vector<NodeInfo> info_;
};

/// Traverses the *expected* shortest-path graph implied by the architecture
/// (the same role rules that drive contract generation, §2.4.1–2.4.3),
/// yielding the maximal redundant path counts of Claim 1.
class ExpectedTraversal {
 public:
  ExpectedTraversal(const MetadataService& metadata, const PrefixFact& fact)
      : metadata_(&metadata),
        fact_(&fact),
        info_(metadata.topology().device_count()),
        done_(metadata.topology().device_count(), false) {}

  const NodeInfo& visit(DeviceId v) {
    if (done_[v]) return info_[v];
    done_[v] = true;  // the expected graph is a DAG by construction
    NodeInfo result;
    if (v == fact_->tor) {
      result = NodeInfo{.reachable = true,
                        .paths = 1,
                        .min_length = 0,
                        .max_length = 0,
                        .loop = false};
    } else {
      for (const DeviceId next : expected_hops(v)) {
        const NodeInfo& child = visit(next);
        if (!child.reachable) continue;
        if (result.paths == 0) {
          result.min_length = child.min_length + 1;
          result.max_length = child.max_length + 1;
        } else {
          result.min_length =
              std::min(result.min_length, child.min_length + 1);
          result.max_length =
              std::max(result.max_length, child.max_length + 1);
        }
        result.reachable = true;
        result.paths += child.paths;
      }
    }
    info_[v] = result;
    return info_[v];
  }

 private:
  std::vector<DeviceId> expected_hops(DeviceId v) const {
    const topo::Topology& topology = metadata_->topology();
    const Device& device = topology.device(v);
    const Device& host = topology.device(fact_->tor);
    if (device.datacenter != host.datacenter) return {};
    switch (device.role) {
      case DeviceRole::kTor: {
        const auto leaves = topology.neighbors_with_role(v, DeviceRole::kLeaf);
        return {leaves.begin(), leaves.end()};
      }
      case DeviceRole::kLeaf:
        if (device.cluster == fact_->cluster) return {fact_->tor};
        return metadata_->leaf_uplinks_toward(v, fact_->cluster);
      case DeviceRole::kSpine:
        return metadata_->spine_downlinks_into(v, fact_->cluster);
      case DeviceRole::kRegionalSpine:
        return {};  // regionals are not on intra-datacenter shortest paths
    }
    return {};
  }

  const MetadataService* metadata_;
  const PrefixFact* fact_;
  std::vector<NodeInfo> info_;
  std::vector<bool> done_;
};

}  // namespace

GlobalCheckResult GlobalChecker::check_all_pairs(
    std::size_t max_failures) const {
  GlobalCheckResult result;
  const topo::Topology& topology = metadata_->topology();

  // Step 1 of the straightforward approach (§2.4): "obtain a stable
  // snapshot of the routing tables from all the devices and form the
  // composite routing table for the entire network."
  const auto snapshot_start = std::chrono::steady_clock::now();
  std::vector<routing::ForwardingTable> fibs;
  fibs.reserve(topology.device_count());
  for (const Device& d : topology.devices()) {
    fibs.push_back(fibs_->fetch(d.id));
  }
  result.snapshot_time = std::chrono::steady_clock::now() - snapshot_start;

  // Step 2: validate the intent against the composite table, per
  // destination prefix.
  const auto analysis_start = std::chrono::steady_clock::now();
  const auto tors = topology.devices_with_role(DeviceRole::kTor);
  for (const PrefixFact& fact : metadata_->all_prefixes()) {
    const Device& host = topology.device(fact.tor);
    ActualTraversal actual(fibs, fact.prefix.first(), fact.tor);
    ExpectedTraversal expected(*metadata_, fact);
    for (const DeviceId source : tors) {
      if (source == fact.tor) continue;
      const Device& src = topology.device(source);
      if (src.datacenter != host.datacenter) continue;

      const NodeInfo& a = actual.visit(source);
      const NodeInfo& e = expected.visit(source);
      const int intended_length = src.cluster == fact.cluster ? 2 : 4;

      PairOutcome outcome{.source = source,
                          .destination = fact.prefix,
                          .reachable = a.reachable,
                          .shortest = a.reachable &&
                                      a.min_length == intended_length &&
                                      a.max_length == intended_length,
                          .fully_redundant = false,
                          .path_count = a.paths,
                          .expected_path_count = e.paths,
                          .min_length = a.min_length,
                          .max_length = a.max_length,
                          .loop = a.loop};
      outcome.fully_redundant =
          outcome.shortest && outcome.path_count == outcome.expected_path_count;

      ++result.pairs_checked;
      if (outcome.reachable) ++result.pairs_reachable;
      if (outcome.shortest) ++result.pairs_shortest;
      if (outcome.fully_redundant) ++result.pairs_fully_redundant;
      if (outcome.loop) ++result.pairs_with_loops;
      result.total_paths += outcome.path_count;
      result.max_paths_per_pair =
          std::max(result.max_paths_per_pair, outcome.path_count);

      if (!outcome.fully_redundant &&
          result.failures.size() < max_failures) {
        std::string why;
        if (outcome.loop) {
          why = "forwarding loop";
        } else if (!outcome.reachable) {
          why = "unreachable";
        } else if (!outcome.shortest) {
          why = "path length " + std::to_string(outcome.min_length) + ".." +
                std::to_string(outcome.max_length) + " (intended " +
                std::to_string(intended_length) + ")";
        } else {
          why = "only " + std::to_string(outcome.path_count) + " of " +
                std::to_string(outcome.expected_path_count) +
                " redundant paths";
        }
        result.failures.push_back(topology.device(source).name + " -> " +
                                  fact.prefix.to_string() + ": " + why);
      }
    }
  }
  result.analysis_time = std::chrono::steady_clock::now() - analysis_start;
  return result;
}

}  // namespace dcv::rcdc
