#include "rcdc/validator.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "rcdc/linear_verifier.hpp"
#include "rcdc/smt_verifier.hpp"
#include "rcdc/trie_verifier.hpp"

namespace dcv::rcdc {

DatacenterValidator::DatacenterValidator(const topo::MetadataService& metadata,
                                         const FibSource& fibs,
                                         VerifierFactory verifier_factory,
                                         ContractGenOptions options)
    : metadata_(&metadata),
      fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      generator_(metadata, options) {}

ValidationSummary DatacenterValidator::run(unsigned threads) const {
  std::vector<topo::DeviceId> devices;
  devices.reserve(metadata_->topology().device_count());
  for (const topo::Device& d : metadata_->topology().devices()) {
    devices.push_back(d.id);
  }
  return run(devices, threads);
}

ValidationSummary DatacenterValidator::run(
    const std::vector<topo::DeviceId>& devices, unsigned threads) const {
  const auto start = std::chrono::steady_clock::now();
  threads = std::max(1u, threads);

  struct WorkerResult {
    std::size_t contracts_checked = 0;
    std::size_t devices_failed = 0;
    std::size_t devices_stale = 0;
    std::size_t retries = 0;
    std::size_t breaker_opens = 0;
    std::size_t violations_degraded = 0;
    std::vector<Violation> violations;
  };
  std::vector<WorkerResult> results(threads);
  std::atomic<std::size_t> next_index{0};

  // Each worker claims devices from a shared counter and validates them in
  // isolation: fetch FIB, generate contracts, check, discard. Nothing
  // global is ever built, and a failed fetch fails only its own device.
  const auto worker = [&](unsigned worker_index) {
    const auto verifier = verifier_factory_();
    WorkerResult& result = results[worker_index];
    while (true) {
      const std::size_t i =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= devices.size()) break;
      const topo::DeviceId device = devices[i];
      const auto contracts = generator_.for_device(device);
      if (contracts.empty()) continue;
      FetchOutcome outcome = fibs_->try_fetch(device);
      if (outcome.attempts > 1) result.retries += outcome.attempts - 1;
      if (outcome.breaker_tripped) ++result.breaker_opens;
      if (!outcome.has_table()) {
        ++result.devices_failed;
        continue;
      }
      if (outcome.stale) ++result.devices_stale;
      auto violations = verifier->check(*outcome.table, contracts, device);
      result.contracts_checked += contracts.size();
      if (outcome.degraded()) result.violations_degraded += violations.size();
      result.violations.insert(result.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
  }

  ValidationSummary summary;
  summary.devices_checked = devices.size();
  for (WorkerResult& result : results) {
    summary.contracts_checked += result.contracts_checked;
    summary.devices_failed += result.devices_failed;
    summary.devices_stale += result.devices_stale;
    summary.retries += result.retries;
    summary.breaker_opens += result.breaker_opens;
    summary.violations_degraded += result.violations_degraded;
    summary.violations.insert(
        summary.violations.end(),
        std::make_move_iterator(result.violations.begin()),
        std::make_move_iterator(result.violations.end()));
  }
  std::sort(summary.violations.begin(), summary.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.device != b.device) return a.device < b.device;
              if (a.contract.prefix != b.contract.prefix) {
                return a.contract.prefix < b.contract.prefix;
              }
              return a.rule_prefix < b.rule_prefix;
            });
  summary.elapsed = std::chrono::steady_clock::now() - start;
  return summary;
}

VerifierFactory make_trie_verifier_factory() {
  return [] { return std::make_unique<TrieVerifier>(); };
}

VerifierFactory make_smt_verifier_factory() {
  return [] { return std::make_unique<SmtVerifier>(); };
}

VerifierFactory make_linear_verifier_factory() {
  return [] { return std::make_unique<LinearVerifier>(); };
}

}  // namespace dcv::rcdc
