#include "rcdc/validator.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/span.hpp"
#include "rcdc/linear_verifier.hpp"
#include "rcdc/smt_verifier.hpp"
#include "rcdc/trie_verifier.hpp"

namespace dcv::rcdc {

namespace {

/// Decorator recording check latency and contract throughput for any
/// engine, labeled by engine name.
class InstrumentedVerifier final : public Verifier {
 public:
  InstrumentedVerifier(std::unique_ptr<Verifier> inner,
                       obs::Histogram* check_ns, obs::Counter* contracts)
      : inner_(std::move(inner)), check_ns_(check_ns), contracts_(contracts) {}

  [[nodiscard]] std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) override {
    obs::ScopedTimer timer(check_ns_);
    auto violations = inner_->check(fib, contracts, device);
    timer.stop();
    contracts_->inc(contracts.size());
    return violations;
  }

 private:
  std::unique_ptr<Verifier> inner_;
  obs::Histogram* check_ns_;
  obs::Counter* contracts_;
};

/// Wraps `make_inner` so every produced verifier reports under
/// {engine=<name>}. The registry outlives the factory by contract.
VerifierFactory instrumented_factory(
    obs::MetricsRegistry* metrics, const char* engine,
    std::function<std::unique_ptr<Verifier>(obs::MetricsRegistry*)>
        make_inner) {
  if (metrics == nullptr) {
    return [make_inner = std::move(make_inner)] {
      return make_inner(nullptr);
    };
  }
  obs::Histogram* check_ns = &metrics->histogram(
      "dcv_verifier_check_ns", "Per-device contract check time, by engine",
      {{"engine", engine}});
  obs::Counter* contracts = &metrics->counter(
      "dcv_verifier_contracts_checked_total",
      "Contracts checked, by engine", {{"engine", engine}});
  return [metrics, check_ns, contracts, make_inner = std::move(make_inner)] {
    return std::make_unique<InstrumentedVerifier>(make_inner(metrics),
                                                  check_ns, contracts);
  };
}

}  // namespace

DatacenterValidator::DatacenterValidator(const topo::MetadataService& metadata,
                                         const FibSource& fibs,
                                         VerifierFactory verifier_factory,
                                         ContractGenOptions options,
                                         obs::MetricsRegistry* metrics)
    : metadata_(&metadata),
      fibs_(&fibs),
      verifier_factory_(std::move(verifier_factory)),
      generator_(metadata, options) {
  if (metrics != nullptr) {
    fetch_latency_ns_ = &metrics->histogram(
        "dcv_validator_fetch_latency_ns",
        "Per-device table acquisition time in batch validation");
    validate_latency_ns_ = &metrics->histogram(
        "dcv_validator_validate_latency_ns",
        "Per-device contract check time in batch validation");
    devices_fresh_ = &metrics->counter("dcv_validator_devices_total",
                                       "Devices validated, by pull result",
                                       {{"result", "fresh"}});
    devices_stale_ = &metrics->counter("dcv_validator_devices_total",
                                       "Devices validated, by pull result",
                                       {{"result", "stale"}});
    devices_failed_ = &metrics->counter("dcv_validator_devices_total",
                                        "Devices validated, by pull result",
                                        {{"result", "failed"}});
    retries_total_ = &metrics->counter(
        "dcv_validator_retries_total",
        "Extra pull attempts beyond the first, summed over devices");
    breaker_opens_total_ = &metrics->counter(
        "dcv_validator_breaker_opens_total",
        "Circuit-breaker open transitions observed during runs");
    violations_total_ = &metrics->counter("dcv_validator_violations_total",
                                          "Contract violations found");
    coverage_ = &metrics->gauge(
        "dcv_validator_coverage",
        "Fraction of devices that produced a table in the latest run");
  }
}

ValidationSummary DatacenterValidator::run(unsigned threads) const {
  std::vector<topo::DeviceId> devices;
  devices.reserve(metadata_->topology().device_count());
  for (const topo::Device& d : metadata_->topology().devices()) {
    devices.push_back(d.id);
  }
  return run(devices, threads);
}

ValidationSummary DatacenterValidator::run(
    std::span<const topo::DeviceId> devices, unsigned threads) const {
  const auto start = std::chrono::steady_clock::now();
  // Clamp the pool to the work available: spawning more workers than
  // devices just burns thread startup for threads that immediately find the
  // shared counter exhausted.
  threads = std::clamp(threads, 1u,
                       static_cast<unsigned>(std::max<std::size_t>(
                           1, devices.size())));

  // One immutable plan pointer for the whole run: every worker reads the
  // same precompiled contract spans, and a concurrent topology change can
  // at worst affect the *next* run.
  const ContractPlanPtr plan = generator_.plan();

  struct WorkerResult {
    std::size_t contracts_checked = 0;
    std::size_t devices_failed = 0;
    std::size_t devices_stale = 0;
    std::size_t retries = 0;
    std::size_t breaker_opens = 0;
    std::size_t violations_degraded = 0;
    std::vector<Violation> violations;
  };
  std::vector<WorkerResult> results(threads);
  std::atomic<std::size_t> next_index{0};

  // Each worker claims devices from a shared counter and validates them in
  // isolation: fetch FIB, generate contracts, check, discard. Nothing
  // global is ever built, and a failed fetch fails only its own device.
  const auto worker = [&](unsigned worker_index) {
    const auto verifier = verifier_factory_();
    WorkerResult& result = results[worker_index];
    while (true) {
      const std::size_t i =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= devices.size()) break;
      const topo::DeviceId device = devices[i];
      const std::span<const Contract> contracts = plan->contracts_for(device);
      if (contracts.empty()) continue;
      obs::ScopedTimer fetch_timer(fetch_latency_ns_);
      FetchOutcome outcome = fibs_->try_fetch(device);
      fetch_timer.stop();
      if (outcome.attempts > 1) {
        result.retries += outcome.attempts - 1;
        if (retries_total_ != nullptr) {
          retries_total_->inc(outcome.attempts - 1);
        }
      }
      if (outcome.breaker_tripped) {
        ++result.breaker_opens;
        if (breaker_opens_total_ != nullptr) breaker_opens_total_->inc();
      }
      if (!outcome.has_table()) {
        ++result.devices_failed;
        if (devices_failed_ != nullptr) devices_failed_->inc();
        continue;
      }
      if (outcome.stale) {
        ++result.devices_stale;
        if (devices_stale_ != nullptr) devices_stale_->inc();
      } else if (devices_fresh_ != nullptr) {
        devices_fresh_->inc();
      }
      obs::ScopedTimer validate_timer(validate_latency_ns_);
      auto violations = verifier->check(*outcome.table, contracts, device);
      validate_timer.stop();
      if (violations_total_ != nullptr && !violations.empty()) {
        violations_total_->inc(violations.size());
      }
      result.contracts_checked += contracts.size();
      if (outcome.degraded()) result.violations_degraded += violations.size();
      result.violations.insert(result.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
  }

  ValidationSummary summary;
  summary.devices_checked = devices.size();
  for (WorkerResult& result : results) {
    summary.contracts_checked += result.contracts_checked;
    summary.devices_failed += result.devices_failed;
    summary.devices_stale += result.devices_stale;
    summary.retries += result.retries;
    summary.breaker_opens += result.breaker_opens;
    summary.violations_degraded += result.violations_degraded;
    summary.violations.insert(
        summary.violations.end(),
        std::make_move_iterator(result.violations.begin()),
        std::make_move_iterator(result.violations.end()));
  }
  std::sort(summary.violations.begin(), summary.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.device != b.device) return a.device < b.device;
              if (a.contract.prefix != b.contract.prefix) {
                return a.contract.prefix < b.contract.prefix;
              }
              return a.rule_prefix < b.rule_prefix;
            });
  summary.elapsed = std::chrono::steady_clock::now() - start;
  if (coverage_ != nullptr) coverage_->set(summary.coverage());
  return summary;
}

VerifierFactory make_trie_verifier_factory(obs::MetricsRegistry* metrics) {
  return instrumented_factory(
      metrics, "trie", [](obs::MetricsRegistry* registry) {
        TrieVerifierMetrics trie_metrics;
        if (registry != nullptr) {
          trie_metrics.rules_walked = &registry->histogram(
              "dcv_verifier_rules_walked",
              "Candidate rules walked per specific contract",
              {{"engine", "trie"}});
          trie_metrics.rebuilds = &registry->counter(
              "dcv_trie_rebuilds_total",
              "Policy-trie rebuilds into a retained node arena");
          trie_metrics.arena_growth = &registry->counter(
              "dcv_trie_arena_growth_total",
              "Trie rebuilds that had to grow the node arena");
          trie_metrics.arena_nodes = &registry->gauge(
              "dcv_trie_arena_nodes",
              "Node-arena capacity after the latest trie rebuild");
        }
        return std::make_unique<TrieVerifier>(trie_metrics);
      });
}

VerifierFactory make_smt_verifier_factory(obs::MetricsRegistry* metrics) {
  return instrumented_factory(metrics, "smt", [](obs::MetricsRegistry*) {
    return std::make_unique<SmtVerifier>();
  });
}

VerifierFactory make_linear_verifier_factory(obs::MetricsRegistry* metrics) {
  return instrumented_factory(metrics, "linear", [](obs::MetricsRegistry*) {
    return std::make_unique<LinearVerifier>();
  });
}

}  // namespace dcv::rcdc
