#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

#include "net/error.hpp"
#include "routing/aggregation.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/fib.hpp"
#include "routing/fib_synthesizer.hpp"
#include "topology/device.hpp"

namespace dcv::rcdc {

/// Why a routing-table pull failed. Production pulls "take 200-800ms" and
/// fail routinely (§2.6.1, Figure 5); this taxonomy covers the failure modes
/// the fetch layer must survive.
enum class FetchErrorKind : std::uint8_t {
  /// The device did not answer within the per-fetch deadline.
  kTimeout,
  /// A transient error (connection reset, SSH churn, collector restart);
  /// an immediate or backed-off retry is likely to succeed.
  kTransient,
  /// The pull ended early: a syntactically valid but incomplete table was
  /// returned (rules missing, often including the default route).
  kTruncatedTable,
  /// The pull returned a table with garbled entries (bit flips, interleaved
  /// output): rules present but with wrong next-hop sets.
  kCorruptedEntry,
  /// The device is not reachable at all (management-plane outage, device
  /// decommissioned, or a circuit breaker refusing to try).
  kUnreachable,
};

[[nodiscard]] std::string_view to_string(FetchErrorKind kind);
std::ostream& operator<<(std::ostream& os, FetchErrorKind kind);

/// Raised by the legacy infallible FibSource::fetch() path when the
/// underlying pull fails and no degraded result is available.
class FetchError : public Error {
 public:
  FetchError(FetchErrorKind kind, const std::string& what)
      : Error(what), kind_(kind) {}

  [[nodiscard]] FetchErrorKind kind() const { return kind_; }

 private:
  FetchErrorKind kind_;
};

/// Result of one fallible routing-table pull.
///
/// Three shapes occur:
///  * clean success — `table` engaged, no `error`;
///  * hard failure — no `table`, `error` says why;
///  * degraded result — both engaged: either garbage from the wire
///    (kTruncatedTable / kCorruptedEntry, table holds what arrived) or a
///    stale-cache fallback (`stale` set, `staleness` is the table's age).
///
/// Callers that validate a degraded table should treat the verdicts as
/// lower-confidence (see RiskPolicy::assess and TriageEngine::triage).
struct FetchOutcome {
  std::optional<routing::ForwardingTable> table;
  std::optional<FetchErrorKind> error;
  /// Table served from a cache of the last good pull, not from the device.
  bool stale = false;
  /// Age of a stale table (time since it was last pulled successfully).
  std::chrono::nanoseconds staleness{0};
  /// Pull attempts consumed (0 when a circuit breaker short-circuited the
  /// fetch without touching the device).
  std::uint32_t attempts = 1;
  /// The fetch was short-circuited by an already-open circuit breaker.
  bool breaker_open = false;
  /// This fetch's failure transitioned a circuit breaker to open.
  bool breaker_tripped = false;

  [[nodiscard]] bool ok() const { return !error.has_value(); }
  [[nodiscard]] bool has_table() const { return table.has_value(); }
  /// True when the table (if any) should not be trusted at full confidence.
  [[nodiscard]] bool degraded() const {
    return stale || (error.has_value() && table.has_value());
  }

  [[nodiscard]] static FetchOutcome success(routing::ForwardingTable t) {
    FetchOutcome out;
    out.table = std::move(t);
    return out;
  }
  [[nodiscard]] static FetchOutcome failure(FetchErrorKind kind) {
    FetchOutcome out;
    out.error = kind;
    return out;
  }
  /// A degraded table that did arrive from the device (truncated/corrupt).
  [[nodiscard]] static FetchOutcome garbage(FetchErrorKind kind,
                                            routing::ForwardingTable t) {
    FetchOutcome out;
    out.error = kind;
    out.table = std::move(t);
    return out;
  }
};

/// Where device FIBs come from. In production this is the routing-table
/// puller of Figure 5 talking to live devices; here implementations wrap
/// the EBGP simulator (faithful, including faults), the closed-form
/// synthesizer (fault-free, arbitrarily large), or parsed device output.
///
/// fetch()/try_fetch() must be safe to call concurrently: the datacenter
/// validator fans fetches out across worker threads.
///
/// try_fetch() is the fallible path the monitoring stack uses; sources
/// that cannot fail (simulator, synthesizer) inherit the default wrapper
/// around the infallible fetch(). Decorators with failure semantics
/// (FlakyFibSource, ResilientFibSource) override it.
class FibSource {
 public:
  virtual ~FibSource() = default;

  FibSource() = default;
  FibSource(const FibSource&) = delete;
  FibSource& operator=(const FibSource&) = delete;

  [[nodiscard]] virtual routing::ForwardingTable fetch(
      topo::DeviceId device) const = 0;

  [[nodiscard]] virtual FetchOutcome try_fetch(topo::DeviceId device) const {
    return FetchOutcome::success(fetch(device));
  }
};

/// FIBs produced by the EBGP route-propagation simulator over the current
/// (possibly faulty) network state. Fetches copy from the simulator's
/// materialized-FIB cache — the table is programmed from the RIB at most
/// once per (re)convergence, not once per pipeline cycle (see
/// dcv_bgp_fib_rebuilds_total / dcv_bgp_fib_cache_hits_total).
class SimulatorFibSource final : public FibSource {
 public:
  explicit SimulatorFibSource(const routing::BgpSimulator& simulator)
      : simulator_(&simulator) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return simulator_->fib(device);
  }

 private:
  const routing::BgpSimulator* simulator_;
};

/// Decorator applying configured cluster-route aggregation (leaf-originated
/// aggregates with discard routes; aggregates instead of specifics at the
/// spine and regional layers) — the design §2.1 rejects, kept for the
/// black-holing ablation (routing::aggregate_cluster_routes).
class AggregatingFibSource final : public FibSource {
 public:
  AggregatingFibSource(const FibSource& inner,
                       const topo::MetadataService& metadata)
      : inner_(&inner), metadata_(&metadata) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return routing::aggregate_cluster_routes(inner_->fetch(device),
                                             *metadata_, device);
  }

 private:
  const FibSource* inner_;
  const topo::MetadataService* metadata_;
};

/// Fault-free converged FIBs synthesized on demand from metadata; O(1)
/// memory regardless of datacenter size, used for scale benchmarks.
class SynthesizedFibSource final : public FibSource {
 public:
  explicit SynthesizedFibSource(const routing::FibSynthesizer& synthesizer)
      : synthesizer_(&synthesizer) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return synthesizer_->fib(device);
  }

 private:
  const routing::FibSynthesizer* synthesizer_;
};

}  // namespace dcv::rcdc
