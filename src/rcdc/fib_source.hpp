#pragma once

#include "routing/aggregation.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/fib.hpp"
#include "routing/fib_synthesizer.hpp"
#include "topology/device.hpp"

namespace dcv::rcdc {

/// Where device FIBs come from. In production this is the routing-table
/// puller of Figure 5 talking to live devices; here implementations wrap
/// the EBGP simulator (faithful, including faults), the closed-form
/// synthesizer (fault-free, arbitrarily large), or parsed device output.
///
/// fetch() must be safe to call concurrently: the datacenter validator
/// fans fetches out across worker threads.
class FibSource {
 public:
  virtual ~FibSource() = default;

  FibSource() = default;
  FibSource(const FibSource&) = delete;
  FibSource& operator=(const FibSource&) = delete;

  [[nodiscard]] virtual routing::ForwardingTable fetch(
      topo::DeviceId device) const = 0;
};

/// FIBs produced by the EBGP route-propagation simulator over the current
/// (possibly faulty) network state.
class SimulatorFibSource final : public FibSource {
 public:
  explicit SimulatorFibSource(const routing::BgpSimulator& simulator)
      : simulator_(&simulator) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return simulator_->fib(device);
  }

 private:
  const routing::BgpSimulator* simulator_;
};

/// Decorator applying configured cluster-route aggregation (leaf-originated
/// aggregates with discard routes; aggregates instead of specifics at the
/// spine and regional layers) — the design §2.1 rejects, kept for the
/// black-holing ablation (routing::aggregate_cluster_routes).
class AggregatingFibSource final : public FibSource {
 public:
  AggregatingFibSource(const FibSource& inner,
                       const topo::MetadataService& metadata)
      : inner_(&inner), metadata_(&metadata) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return routing::aggregate_cluster_routes(inner_->fetch(device),
                                             *metadata_, device);
  }

 private:
  const FibSource* inner_;
  const topo::MetadataService* metadata_;
};

/// Fault-free converged FIBs synthesized on demand from metadata; O(1)
/// memory regardless of datacenter size, used for scale benchmarks.
class SynthesizedFibSource final : public FibSource {
 public:
  explicit SynthesizedFibSource(const routing::FibSynthesizer& synthesizer)
      : synthesizer_(&synthesizer) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    return synthesizer_->fib(device);
  }

 private:
  const routing::FibSynthesizer* synthesizer_;
};

}  // namespace dcv::rcdc
