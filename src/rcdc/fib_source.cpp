#include "rcdc/fib_source.hpp"

#include <ostream>

namespace dcv::rcdc {

std::string_view to_string(FetchErrorKind kind) {
  switch (kind) {
    case FetchErrorKind::kTimeout:
      return "timeout";
    case FetchErrorKind::kTransient:
      return "transient";
    case FetchErrorKind::kTruncatedTable:
      return "truncated-table";
    case FetchErrorKind::kCorruptedEntry:
      return "corrupted-entry";
    case FetchErrorKind::kUnreachable:
      return "unreachable";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, FetchErrorKind kind) {
  return os << to_string(kind);
}

}  // namespace dcv::rcdc
