#include "rcdc/beliefs.hpp"

#include <functional>
#include <map>

namespace dcv::rcdc {

std::string_view to_string(BeliefKind kind) {
  switch (kind) {
    case BeliefKind::kReachable:
      return "reachable";
    case BeliefKind::kUnreachable:
      return "unreachable";
    case BeliefKind::kMaxPathLength:
      return "max-path-length";
    case BeliefKind::kMinEcmpPaths:
      return "min-ecmp-paths";
    case BeliefKind::kTraverses:
      return "traverses";
    case BeliefKind::kAvoids:
      return "avoids";
  }
  return "?";
}

std::string Belief::to_string(const topo::Topology& topology) const {
  std::string out = std::string(rcdc::to_string(kind)) + " " +
                    topology.device(source).name + " -> " +
                    destination.to_string();
  switch (kind) {
    case BeliefKind::kMaxPathLength:
    case BeliefKind::kMinEcmpPaths:
      out += " (" + std::to_string(bound) + ")";
      break;
    case BeliefKind::kTraverses:
    case BeliefKind::kAvoids:
      out += " via " + topology.device(via).name;
      break;
    default:
      break;
  }
  return out;
}

namespace {

/// Per-device facts about the forwarding graph toward one destination.
struct NodeFacts {
  bool visiting = false;
  bool done = false;
  bool reaches = false;       // delivers to the destination ToR
  std::uint64_t paths = 0;    // distinct delivering paths from here
  int min_len = 0;
  int max_len = 0;
  bool via_downstream = false;  // some delivering path from here passes via
};

}  // namespace

BeliefResult BeliefChecker::check(const Belief& belief) const {
  BeliefResult result;
  result.belief = belief;

  const auto fact = metadata_->locate(belief.destination);
  if (!fact) {
    result.holds = belief.kind == BeliefKind::kUnreachable ||
                   belief.kind == BeliefKind::kAvoids;
    result.observed = "destination prefix is not hosted";
    return result;
  }

  std::map<topo::DeviceId, NodeFacts> facts;
  const net::Ipv4Address address = belief.destination.first();

  const std::function<NodeFacts(topo::DeviceId)> visit =
      [&](topo::DeviceId device) -> NodeFacts {
    NodeFacts& entry = facts[device];
    if (entry.done || entry.visiting) return entry;  // loops deliver nothing
    entry.visiting = true;
    NodeFacts computed;
    if (device == fact->tor) {
      computed.reaches = true;
      computed.paths = 1;
      computed.via_downstream = device == belief.via;
    } else {
      const routing::ForwardingTable fib = fibs_->fetch(device);
      if (const routing::Rule* rule = fib.lookup(address);
          rule != nullptr && !rule->connected) {
        for (const topo::DeviceId next : rule->next_hops) {
          const NodeFacts child = visit(next);
          if (!child.reaches) continue;
          if (computed.paths == 0) {
            computed.min_len = child.min_len + 1;
            computed.max_len = child.max_len + 1;
          } else {
            computed.min_len = std::min(computed.min_len, child.min_len + 1);
            computed.max_len = std::max(computed.max_len, child.max_len + 1);
          }
          computed.reaches = true;
          computed.paths += child.paths;
          computed.via_downstream =
              computed.via_downstream || child.via_downstream;
        }
      }
      if (computed.reaches && device == belief.via) {
        computed.via_downstream = true;
      }
    }
    NodeFacts& stored = facts[device];
    computed.done = true;
    stored = computed;
    return stored;
  };

  const NodeFacts source = visit(belief.source);
  result.observed =
      source.reaches
          ? std::to_string(source.paths) + " paths, lengths " +
                std::to_string(source.min_len) + ".." +
                std::to_string(source.max_len)
          : "not delivered";

  switch (belief.kind) {
    case BeliefKind::kReachable:
      result.holds = source.reaches;
      break;
    case BeliefKind::kUnreachable:
      result.holds = !source.reaches;
      break;
    case BeliefKind::kMaxPathLength:
      result.holds = source.reaches &&
                     static_cast<std::uint64_t>(source.max_len) <=
                         belief.bound;
      break;
    case BeliefKind::kMinEcmpPaths:
      result.holds = source.paths >= belief.bound;
      break;
    case BeliefKind::kTraverses:
      result.holds = source.reaches && source.via_downstream;
      break;
    case BeliefKind::kAvoids:
      result.holds = !source.reaches || !source.via_downstream;
      break;
  }
  return result;
}

std::vector<BeliefResult> BeliefChecker::check_all(
    const std::vector<Belief>& beliefs) const {
  std::vector<BeliefResult> out;
  out.reserve(beliefs.size());
  for (const Belief& belief : beliefs) out.push_back(check(belief));
  return out;
}

}  // namespace dcv::rcdc
