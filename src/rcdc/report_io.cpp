#include "rcdc/report_io.hpp"

#include <cstdio>
#include <sstream>

namespace dcv::rcdc {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string write_report_json(const ValidationSummary& summary,
                              const topo::Topology& topology,
                              const ReportOptions& options) {
  std::ostringstream out;
  const char* nl = options.pretty ? "\n" : "";
  const char* in1 = options.pretty ? "  " : "";
  const char* in2 = options.pretty ? "    " : "";
  const char* in3 = options.pretty ? "      " : "";

  const RiskPolicy risk(topology);
  const TriageEngine triage(topology);

  out << "{" << nl;
  out << in1 << "\"devices_checked\": " << summary.devices_checked << ","
      << nl;
  out << in1 << "\"contracts_checked\": " << summary.contracts_checked
      << "," << nl;
  out << in1 << "\"devices_failed\": " << summary.devices_failed << ","
      << nl;
  out << in1 << "\"devices_stale\": " << summary.devices_stale << "," << nl;
  out << in1 << "\"retries\": " << summary.retries << "," << nl;
  out << in1 << "\"breaker_opens\": " << summary.breaker_opens << "," << nl;
  out << in1 << "\"coverage\": " << summary.coverage() << "," << nl;
  out << in1 << "\"elapsed_ms\": "
      << std::chrono::duration<double, std::milli>(summary.elapsed).count()
      << "," << nl;
  out << in1 << "\"violation_count\": " << summary.violations.size() << ","
      << nl;
  out << in1 << "\"violations\": [";

  bool first = true;
  for (const Violation& v : summary.violations) {
    if (!first) out << ",";
    first = false;
    out << nl << in2 << "{" << nl;
    out << in3 << "\"device\": \""
        << json_escape(topology.device(v.device).name) << "\"," << nl;
    out << in3 << "\"kind\": \"" << to_string(v.kind) << "\"," << nl;
    out << in3 << "\"contract_kind\": \""
        << (v.contract.kind == ContractKind::kDefault ? "default"
                                                      : "specific")
        << "\"," << nl;
    out << in3 << "\"prefix\": \"" << v.contract.prefix.to_string() << "\","
        << nl;
    out << in3 << "\"rule_prefix\": \"" << v.rule_prefix.to_string()
        << "\"," << nl;
    const auto hop_list = [&](const std::vector<topo::DeviceId>& hops) {
      std::string text = "[";
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (i > 0) text += ", ";
        text += "\"" + json_escape(topology.device(hops[i]).name) + "\"";
      }
      return text + "]";
    };
    out << in3 << "\"expected_next_hops\": "
        << hop_list(v.contract.expected_next_hops) << "," << nl;
    out << in3 << "\"actual_next_hops\": " << hop_list(v.actual_next_hops);
    if (options.include_risk) {
      const auto assessment = risk.assess(v);
      out << "," << nl;
      out << in3 << "\"risk\": \"" << to_string(assessment.level) << "\","
          << nl;
      out << in3 << "\"servers_impacted\": " << assessment.servers_impacted
          << "," << nl;
      out << in3 << "\"additional_faults_to_impact\": "
          << assessment.additional_faults_to_impact;
    }
    if (options.include_triage) {
      const auto decision = triage.triage(v);
      out << "," << nl;
      out << in3 << "\"action\": \"" << to_string(decision.action) << "\","
          << nl;
      out << in3 << "\"rationale\": \"" << json_escape(decision.rationale)
          << "\"";
    }
    out << nl << in2 << "}";
  }
  if (!summary.violations.empty()) out << nl << in1;
  out << "]" << nl << "}" << nl;
  return out.str();
}

}  // namespace dcv::rcdc
