#include "rcdc/triage.hpp"

#include <algorithm>
#include <ostream>

namespace dcv::rcdc {

std::string_view to_string(RemediationAction action) {
  switch (action) {
    case RemediationAction::kReplaceCable:
      return "replace-cable";
    case RemediationAction::kUnshutAndMonitor:
      return "unshut-and-monitor";
    case RemediationAction::kEscalateToOperator:
      return "escalate-to-operator";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, RemediationAction action) {
  return os << to_string(action);
}

TriageDecision TriageEngine::triage(const Violation& violation,
                                    bool degraded_table) const {
  TriageDecision decision = triage(violation);
  if (degraded_table) {
    decision.low_confidence = true;
    decision.rationale +=
        " [low confidence: found on a stale/degraded table; confirm with a "
        "fresh pull before remediating]";
  }
  return decision;
}

TriageDecision TriageEngine::triage(const Violation& violation) const {
  TriageDecision decision;
  decision.risk = risk_.assess(violation).level;

  // Correlate: which expected next hops are missing from the actual set,
  // and what does the topology say about the links toward them?
  for (const topo::DeviceId expected : violation.contract.expected_next_hops) {
    if (std::binary_search(violation.actual_next_hops.begin(),
                           violation.actual_next_hops.end(), expected)) {
      continue;
    }
    const auto link = topology_->find_link(violation.device, expected);
    if (!link) continue;
    const topo::Link& l = topology_->link(*link);
    if (l.link_state == topo::LinkState::kDown) {
      decision.action = RemediationAction::kReplaceCable;
      decision.link = *link;
      decision.rationale =
          "link to " + topology_->device(expected).name +
          " is operationally down: likely cabling fault";
      return decision;
    }
    if (l.bgp_state == topo::BgpSessionState::kAdminShutdown) {
      decision.action = RemediationAction::kUnshutAndMonitor;
      decision.link = *link;
      decision.rationale = "BGP session to " +
                           topology_->device(expected).name +
                           " is administratively shut: unshut and monitor";
      return decision;
    }
  }

  decision.action = RemediationAction::kEscalateToOperator;
  decision.rationale =
      "no link-level cause found: possible device software bug or policy "
      "error; escalating";
  return decision;
}

}  // namespace dcv::rcdc
