#include "rcdc/local_validation.hpp"

#include <algorithm>

namespace dcv::rcdc {

namespace {

using topo::Device;
using topo::DeviceRole;

}  // namespace

std::optional<int> LocalValidationFramework::delta(
    const net::Prefix& prefix, topo::DeviceId device) const {
  const auto fact = metadata_->locate(prefix);
  if (!fact) return std::nullopt;
  const topo::Topology& topology = metadata_->topology();
  const Device& d = topology.device(device);
  const Device& host = topology.device(fact->tor);
  if (d.role != DeviceRole::kRegionalSpine &&
      d.datacenter != host.datacenter) {
    return std::nullopt;  // ranks are defined within one datacenter fabric
  }
  switch (d.role) {
    case DeviceRole::kTor:
      if (d.id == fact->tor) return 0;
      return d.cluster == fact->cluster ? 2 : 4;
    case DeviceRole::kLeaf:
      return d.cluster == fact->cluster ? 1 : 3;
    case DeviceRole::kSpine:
      return 2;
    case DeviceRole::kRegionalSpine:
      return 3;
  }
  return std::nullopt;
}

std::size_t LocalValidationFramework::cardinality_bound(
    const net::Prefix& prefix, topo::DeviceId device) const {
  const auto fact = metadata_->locate(prefix);
  if (!fact) return 0;
  const auto rank = delta(prefix, device);
  if (!rank || *rank == 0) return 0;
  const topo::Topology& topology = metadata_->topology();
  const Device& d = topology.device(device);
  switch (d.role) {
    case DeviceRole::kTor:
      return topology.neighbors_with_role(device, DeviceRole::kLeaf).size();
    case DeviceRole::kLeaf:
      if (d.cluster == fact->cluster) return 1;  // the hosting ToR
      return metadata_->leaf_uplinks_toward(device, fact->cluster).size();
    case DeviceRole::kSpine:
      return metadata_->spine_downlinks_into(device, fact->cluster).size();
    case DeviceRole::kRegionalSpine:
      // Regional contracts are cardinality-style with a bound of one
      // (§2.4.5: "C(h, v) > 0 whenever δ(h, v) > 0").
      return metadata_->regional_downlinks_toward(device, fact->cluster)
                     .empty()
                 ? 0
                 : 1;
  }
  return 0;
}

namespace {

/// Shared condition check for one forwarding decision.
void check_decision(const LocalValidationFramework& framework,
                    topo::DeviceId device, const net::Prefix& prefix,
                    const std::vector<topo::DeviceId>& next_hops, int rank,
                    std::size_t bound,
                    std::vector<LocalValidationFramework::Issue>& out) {
  if (next_hops.size() < bound) {
    out.push_back({device, prefix,
                   "cardinality bound violated: " +
                       std::to_string(next_hops.size()) + " next hops < C = " +
                       std::to_string(bound)});
  }
  for (const topo::DeviceId hop : next_hops) {
    const auto hop_rank = framework.delta(prefix, hop);
    if (!hop_rank || *hop_rank >= rank) {
      out.push_back(
          {device, prefix,
           "rank does not decrease toward device " + std::to_string(hop) +
               ": delta " + std::to_string(rank) + " -> " +
               (hop_rank ? std::to_string(*hop_rank) : "undefined")});
    }
  }
}

}  // namespace

std::vector<LocalValidationFramework::Issue>
LocalValidationFramework::check_fib(topo::DeviceId device,
                                    const routing::ForwardingTable& fib) const {
  std::vector<Issue> issues;
  for (const topo::PrefixFact& fact : metadata_->all_prefixes()) {
    const auto rank = delta(fact.prefix, device);
    if (!rank || *rank == 0) continue;
    const std::size_t bound = cardinality_bound(fact.prefix, device);
    if (bound == 0) continue;  // device plays no role for this prefix
    const routing::Rule* rule = fib.lookup(fact.prefix.first());
    if (rule == nullptr || rule->connected) {
      issues.push_back({device, fact.prefix,
                        "no forwarding decision for ranked prefix"});
      continue;
    }
    check_decision(*this, device, fact.prefix, rule->next_hops, *rank, bound,
                   issues);
  }
  return issues;
}

std::vector<LocalValidationFramework::Issue>
LocalValidationFramework::check_contracts(
    topo::DeviceId device, std::span<const Contract> contracts) const {
  std::vector<Issue> issues;
  for (const Contract& contract : contracts) {
    if (contract.kind != ContractKind::kSpecific) continue;
    const auto rank = delta(contract.prefix, device);
    if (!rank) {
      issues.push_back({device, contract.prefix,
                        "contract for prefix with undefined rank"});
      continue;
    }
    if (*rank == 0) {
      issues.push_back({device, contract.prefix,
                        "contract generated for the destination itself"});
      continue;
    }
    const std::size_t bound =
        contract.mode == MatchMode::kSubsetAtLeast
            ? contract.min_next_hops
            : cardinality_bound(contract.prefix, device);
    check_decision(*this, device, contract.prefix,
                   contract.expected_next_hops, *rank, bound, issues);
  }
  return issues;
}

}  // namespace dcv::rcdc
