#include "rcdc/beliefs_io.hpp"

#include <charconv>
#include <sstream>

#include "net/error.hpp"

namespace dcv::rcdc {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("beliefs line " + std::to_string(line) + ": " + message);
}

}  // namespace

std::vector<Belief> parse_beliefs(std::string_view text,
                                  const topo::Topology& topology) {
  std::vector<Belief> beliefs;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string kind_text;
    if (!(tokens >> kind_text) || kind_text.front() == '#') continue;

    Belief belief;
    bool needs_bound = false;
    bool needs_via = false;
    if (kind_text == "reachable") {
      belief.kind = BeliefKind::kReachable;
    } else if (kind_text == "unreachable") {
      belief.kind = BeliefKind::kUnreachable;
    } else if (kind_text == "max-path-length") {
      belief.kind = BeliefKind::kMaxPathLength;
      needs_bound = true;
    } else if (kind_text == "min-ecmp-paths") {
      belief.kind = BeliefKind::kMinEcmpPaths;
      needs_bound = true;
    } else if (kind_text == "traverses") {
      belief.kind = BeliefKind::kTraverses;
      needs_via = true;
    } else if (kind_text == "avoids") {
      belief.kind = BeliefKind::kAvoids;
      needs_via = true;
    } else {
      fail(line_number, "unknown belief kind '" + kind_text + "'");
    }

    std::string source_name, prefix_text;
    if (!(tokens >> source_name >> prefix_text)) {
      fail(line_number, "expected <source-device> <prefix>");
    }
    const auto source = topology.find_device(source_name);
    if (!source) fail(line_number, "unknown device '" + source_name + "'");
    belief.source = *source;
    belief.destination = net::Prefix::parse(prefix_text);

    if (needs_bound) {
      std::string bound_text;
      if (!(tokens >> bound_text)) fail(line_number, "missing bound");
      const auto [next, ec] =
          std::from_chars(bound_text.data(),
                          bound_text.data() + bound_text.size(),
                          belief.bound);
      if (ec != std::errc{} ||
          next != bound_text.data() + bound_text.size()) {
        fail(line_number, "bad bound '" + bound_text + "'");
      }
    }
    if (needs_via) {
      std::string via_name;
      if (!(tokens >> via_name)) fail(line_number, "missing via device");
      const auto via = topology.find_device(via_name);
      if (!via) fail(line_number, "unknown device '" + via_name + "'");
      belief.via = *via;
    }
    std::string extra;
    if (tokens >> extra) {
      fail(line_number, "trailing token '" + extra + "'");
    }
    beliefs.push_back(belief);
  }
  return beliefs;
}

std::string write_beliefs(const std::vector<Belief>& beliefs,
                          const topo::Topology& topology) {
  std::ostringstream out;
  for (const Belief& belief : beliefs) {
    out << to_string(belief.kind) << " "
        << topology.device(belief.source).name << " "
        << belief.destination.to_string();
    switch (belief.kind) {
      case BeliefKind::kMaxPathLength:
      case BeliefKind::kMinEcmpPaths:
        out << " " << belief.bound;
        break;
      case BeliefKind::kTraverses:
      case BeliefKind::kAvoids:
        out << " " << topology.device(belief.via).name;
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dcv::rcdc
