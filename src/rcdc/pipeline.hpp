#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "rcdc/severity.hpp"
#include "rcdc/validator.hpp"

namespace dcv::rcdc {

/// Configuration of the RCDC monitoring service instance (§2.6.1).
struct PipelineConfig {
  unsigned puller_workers = 4;
  unsigned validator_workers = 4;
  /// Simulated per-device routing-table fetch latency; the paper reports
  /// 200–800 ms per table.
  std::chrono::microseconds fetch_latency_min{200'000};
  std::chrono::microseconds fetch_latency_max{800'000};
  /// Scale factor applied to simulated latencies so tests and benchmarks
  /// can run the full pipeline without waiting wall-clock production times.
  double time_scale = 1.0;
  std::uint64_t seed = 0;
};

/// Aggregate statistics of one monitoring cycle.
struct PipelineStats {
  std::size_t devices = 0;
  std::size_t contracts_checked = 0;
  std::size_t violations = 0;
  std::size_t alerts_high = 0;
  std::size_t alerts_low = 0;
  std::chrono::nanoseconds wall{0};
  /// Sum and mean of simulated fetch latencies (before scaling).
  std::chrono::nanoseconds fetch_total{0};
  /// Sum and mean of real contract-validation times per device.
  std::chrono::nanoseconds validate_total{0};
};

/// The three-microservice monitoring pipeline of Figure 5, realized
/// in-process: a device contract generator feeds a contract store; puller
/// workers fetch routing tables (with simulated production latencies) and
/// post notifications to a queue; validator workers consume notifications,
/// join table + contracts, verify, classify risk, and emit alerts.
///
/// "RCDC is designed for horizontal scalability. ... Each service instance
/// is configured to monitor O(10K) devices. Fetching each routing table
/// takes 200-800ms, and validating takes O(100) milliseconds."
class MonitoringPipeline {
 public:
  /// Called for every violation, with its risk assessment, from validator
  /// worker threads (serialized internally).
  using AlertSink =
      std::function<void(const Violation&, const RiskAssessment&)>;

  MonitoringPipeline(const topo::MetadataService& metadata,
                     const FibSource& fibs, VerifierFactory verifier_factory,
                     PipelineConfig config = {});

  void set_alert_sink(AlertSink sink) { alert_sink_ = std::move(sink); }

  /// Runs one full monitoring cycle over every device ("The frequency of
  /// validation is configurable" — the caller owns the schedule).
  [[nodiscard]] PipelineStats run_cycle();

 private:
  const topo::MetadataService* metadata_;
  const FibSource* fibs_;
  VerifierFactory verifier_factory_;
  PipelineConfig config_;
  AlertSink alert_sink_;
};

}  // namespace dcv::rcdc
