#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rcdc/severity.hpp"
#include "rcdc/validator.hpp"

namespace dcv::rcdc {

/// Configuration of the RCDC monitoring service instance (§2.6.1).
struct PipelineConfig {
  unsigned puller_workers = 4;
  unsigned validator_workers = 4;
  /// Simulated per-device routing-table fetch latency; the paper reports
  /// 200–800 ms per table.
  std::chrono::microseconds fetch_latency_min{200'000};
  std::chrono::microseconds fetch_latency_max{800'000};
  /// Scale factor applied to simulated latencies so tests and benchmarks
  /// can run the full pipeline without waiting wall-clock production times.
  double time_scale = 1.0;
  std::uint64_t seed = 0;
  /// Capacity of the puller→validator notification queue (the cloud-queue
  /// stand-in). Pullers block when the queue is full — backpressure instead
  /// of unbounded table buffering. Clamped to ≥ 1.
  std::size_t queue_capacity = 256;
  /// Incremental validation (on by default): each validated table is
  /// fingerprinted (order-insensitive semantic hash), and a device whose
  /// fingerprint is unchanged since its last verdict reuses the cached
  /// violation list instead of re-verifying — tables are still pulled every
  /// cycle (that is how change is observed), but steady-state verification
  /// work drops to the changed set. Cached verdicts are invalidated
  /// whenever the expected-topology epoch (and hence the contract plan)
  /// changes. Replayed violations flow through the same risk/alert path as
  /// fresh ones.
  bool incremental = true;
  /// Optional metrics sink (must outlive the pipeline). When set, every
  /// cycle records the dcv_pipeline_* series: fetch/validate latency
  /// histograms, queue depth/wait, coverage, retry and breaker counters.
  /// When null the instrumentation is fully disabled (no atomics touched).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional span sink (must outlive the pipeline). When set, every cycle
  /// records a causal span tree: a root "cycle" span (with "contracts" as
  /// its child) on the calling thread, and per-device "fetch" spans plus
  /// "validate" → {"verify", "report"} trees on the worker threads, all
  /// carrying the cycle's correlation id. Null disables span recording.
  obs::TraceRing* trace = nullptr;
};

/// Aggregate statistics of one monitoring cycle.
struct PipelineStats {
  std::size_t devices = 0;
  std::size_t contracts_checked = 0;
  std::size_t violations = 0;
  std::size_t alerts_high = 0;
  std::size_t alerts_low = 0;
  /// Violations found on degraded tables (stale fallback or truncated/
  /// corrupted pulls); their alerts carry degraded_confidence.
  std::size_t violations_degraded = 0;
  /// Devices that yielded no table this cycle (retries exhausted with no
  /// stale fallback, or skipped by an open circuit breaker).
  std::size_t devices_failed = 0;
  /// Devices validated against a stale cached table rather than a fresh
  /// pull.
  std::size_t devices_stale = 0;
  /// Devices actually re-verified this cycle (fingerprint changed, first
  /// seen, or incremental mode off).
  std::size_t devices_revalidated = 0;
  /// Devices whose cached verdicts were replayed because their table
  /// fingerprint was unchanged (always 0 with incremental mode off).
  std::size_t devices_skipped = 0;
  /// Extra pull attempts beyond the first, summed over all devices.
  std::size_t retries = 0;
  /// Circuit-breaker closed→open (or half-open→open) transitions observed
  /// during the cycle.
  std::size_t breaker_opens = 0;
  /// Cycle wall time, measured on the real (scaled) clock.
  std::chrono::nanoseconds wall{0};
  /// Sum of *simulated* (production-magnitude, pre-scale) fetch latencies
  /// over fetched devices. Reports what the paper's 200–800 ms pulls would
  /// have cost; NOT comparable to `wall` unless time_scale == 1.
  std::chrono::nanoseconds fetch_sim_total{0};
  /// Sum of *scaled* fetch latencies actually slept (simulated × time_scale)
  /// over fetched devices — same clock as `wall`, so utilization-style
  /// ratios against wall time must use this total, never fetch_sim_total.
  std::chrono::nanoseconds fetch_scaled_total{0};
  /// Sum of real contract-validation times across devices.
  std::chrono::nanoseconds validate_total{0};

  /// Fraction of devices that produced a table this cycle (fresh or stale).
  [[nodiscard]] double coverage() const {
    return devices == 0 ? 1.0
                        : static_cast<double>(devices - devices_failed) /
                              static_cast<double>(devices);
  }
  /// Mean simulated (pre-scale) fetch latency over devices actually fetched.
  [[nodiscard]] std::chrono::nanoseconds fetch_sim_mean() const {
    const auto fetched = static_cast<std::int64_t>(devices - devices_failed);
    return fetched == 0 ? std::chrono::nanoseconds{0}
                        : fetch_sim_total / fetched;
  }
  /// Mean scaled fetch latency (same clock as `wall`) over fetched devices.
  [[nodiscard]] std::chrono::nanoseconds fetch_scaled_mean() const {
    const auto fetched = static_cast<std::int64_t>(devices - devices_failed);
    return fetched == 0 ? std::chrono::nanoseconds{0}
                        : fetch_scaled_total / fetched;
  }
  /// Mean contract-validation time over devices actually validated.
  [[nodiscard]] std::chrono::nanoseconds validate_mean() const {
    const auto fetched = static_cast<std::int64_t>(devices - devices_failed);
    return fetched == 0 ? std::chrono::nanoseconds{0}
                        : validate_total / fetched;
  }
};

/// Point-in-time view of the pipeline for the telemetry plane: everything
/// a readiness probe needs, readable from any thread while cycles run.
struct PipelineHealth {
  std::uint64_t cycles_completed = 0;
  bool cycle_in_progress = false;
  /// Coverage of the last *completed* cycle (1.0 before the first one).
  double coverage = 1.0;
  /// Live notification-queue depth (sampled by the workers) and its bound.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t breaker_opens_last_cycle = 0;
  std::size_t devices_failed_last_cycle = 0;
  /// Time since the last completed cycle finished; negative before the
  /// first cycle completes.
  std::chrono::nanoseconds since_last_cycle{-1};
};

/// Thresholds that turn PipelineHealth into a readiness verdict. The
/// defaults encode "serve only while monitoring is trustworthy": at least
/// one cycle done, ≥90% of devices produced a table, no breaker opened
/// last cycle, queue below saturation, and (when enabled) the last cycle
/// finished recently enough that verdicts are not stale.
struct ReadinessRules {
  double min_coverage = 0.9;
  std::size_t max_breaker_opens = 0;
  /// queue_depth / queue_capacity above this fraction counts as saturated.
  double max_queue_saturation = 0.9;
  /// 0 disables the staleness rule (useful for one-shot runs).
  std::chrono::nanoseconds max_cycle_age{0};
};

/// The three-microservice monitoring pipeline of Figure 5, realized
/// in-process: a device contract generator feeds a contract store; puller
/// workers fetch routing tables (with simulated production latencies) and
/// post notifications to a queue; validator workers consume notifications,
/// join table + contracts, verify, classify risk, and emit alerts.
///
/// "RCDC is designed for horizontal scalability. ... Each service instance
/// is configured to monitor O(10K) devices. Fetching each routing table
/// takes 200-800ms, and validating takes O(100) milliseconds."
class MonitoringPipeline {
 public:
  /// Called for every violation, with its risk assessment, from validator
  /// worker threads (serialized internally).
  using AlertSink =
      std::function<void(const Violation&, const RiskAssessment&)>;

  MonitoringPipeline(const topo::MetadataService& metadata,
                     const FibSource& fibs, VerifierFactory verifier_factory,
                     PipelineConfig config = {});

  void set_alert_sink(AlertSink sink) { alert_sink_ = std::move(sink); }

  /// Runs one full monitoring cycle over every device ("The frequency of
  /// validation is configurable" — the caller owns the schedule).
  ///
  /// The cycle always completes: fetch failures reduce coverage (counted in
  /// devices_failed) instead of aborting the cycle, stale-cache fallbacks
  /// are validated at degraded confidence, and breaker-skipped devices are
  /// reported, never waited on.
  [[nodiscard]] PipelineStats run_cycle();

  /// Live state snapshot for the telemetry plane; safe to call from any
  /// thread, including while run_cycle() is executing on another.
  [[nodiscard]] PipelineHealth health() const;

 private:
  const topo::MetadataService* metadata_;
  const FibSource* fibs_;
  VerifierFactory verifier_factory_;
  PipelineConfig config_;
  AlertSink alert_sink_;
  /// Owns the epoch-keyed contract-plan cache: each cycle captures one
  /// immutable plan pointer instead of regenerating every device's
  /// contracts (stage 1 becomes a pointer copy in steady state).
  ContractGenerator generator_;

  // Incremental-validation state, owned by run_cycle (each device index is
  // touched by exactly one validator worker per cycle; cross-cycle
  // visibility comes from the worker joins). Reset whenever the plan epoch
  // changes.
  std::uint64_t plan_epoch_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> fingerprints_;  // 0 = never validated
  std::vector<std::vector<Violation>> cached_violations_;

  // Telemetry-plane state, updated by run_cycle and read by health().
  std::atomic<std::uint64_t> cycles_completed_{0};
  std::atomic<bool> cycle_in_progress_{false};
  std::atomic<double> last_coverage_{1.0};
  std::atomic<std::size_t> live_queue_depth_{0};
  std::atomic<std::size_t> last_breaker_opens_{0};
  std::atomic<std::size_t> last_devices_failed_{0};
  /// steady_clock::time_since_epoch() of the last cycle's end; -1 = none.
  std::atomic<std::int64_t> last_cycle_end_ns_{-1};
};

/// Builds a /readyz probe over the pipeline's live state: not-ready when no
/// cycle has completed yet, coverage is below rules.min_coverage, circuit
/// breakers opened last cycle beyond rules.max_breaker_opens, the
/// notification queue is saturated, or the last cycle is older than
/// rules.max_cycle_age. The detail text names every violated rule. The
/// pipeline must outlive the probe.
[[nodiscard]] obs::HealthProbe make_pipeline_probe(
    const MonitoringPipeline& pipeline, ReadinessRules rules = {});

}  // namespace dcv::rcdc
