#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {

/// Configuration of the error-burndown operations simulation behind
/// Figure 6.
struct BurndownConfig {
  topo::ClosParams datacenter{.clusters = 4,
                              .tors_per_cluster = 4,
                              .leaves_per_cluster = 4,
                              .spines_per_plane = 2,
                              .regional_spines = 4};
  int days = 40;
  /// RCDC starts detecting (and thus remediation starts) on this day; the
  /// paper's graph "documents a clear downward trend of errors since RCDC
  /// was deployed near day 5".
  int rcdc_deploy_day = 5;
  /// Latent errors present when monitoring begins (the paper: "initial
  /// reports identified a few hundred latent bugs" — scaled to the
  /// simulated datacenter size).
  std::size_t initial_faults = 60;
  /// Expected new faults arriving per day (Poisson).
  double fault_arrival_rate = 1.5;
  /// Daily remediation capacity. High-risk errors are fixed first
  /// (§2.6.4: "the high priority errors are remediated before addressing
  /// the low-priority errors").
  std::size_t high_risk_capacity_per_day = 8;
  std::size_t low_risk_capacity_per_day = 4;
  std::uint64_t seed = 42;
  /// Optional metrics sink (must outlive the call): the daily RCDC runs
  /// record their dcv_validator_* / dcv_verifier_* / dcv_bgp_* series here.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One day of the simulated operation.
struct BurndownDay {
  int day = 0;
  std::size_t outstanding_high = 0;
  std::size_t outstanding_low = 0;
  /// Proportions relative to the peak total error count — the y-axis of
  /// Figure 6 ("relative proportion of the high-risk and low-risk errors to
  /// total number of errors").
  double high_fraction = 0.0;
  double low_fraction = 0.0;
  /// Contract violations RCDC reported this day (0 before deployment).
  std::size_t violations_detected = 0;
  std::size_t remediated_today = 0;
};

/// Simulates datacenter operations around RCDC deployment: faults arrive
/// continuously; before the deploy day nothing is detected and errors
/// accumulate as latent risk; from the deploy day on, RCDC validates the
/// (simulated) network daily, alerts fire, and remediation burns errors
/// down in risk order. Fault risk follows the §2.6.4 rubric (servers
/// impacted + additional faults to impact).
[[nodiscard]] std::vector<BurndownDay> simulate_burndown(
    const BurndownConfig& config);

}  // namespace dcv::rcdc
