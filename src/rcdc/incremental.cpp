#include "rcdc/incremental.hpp"

#include <atomic>
#include <thread>

namespace dcv::rcdc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

void mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t fingerprint(const routing::ForwardingTable& fib) {
  std::uint64_t hash = kFnvOffset;
  for (const routing::Rule& rule : fib.rules()) {
    mix(hash, rule.prefix.network().value());
    mix(hash, static_cast<std::uint64_t>(rule.prefix.length()));
    mix(hash, rule.connected ? 1 : 0);
    for (const topo::DeviceId hop : rule.next_hops) mix(hash, hop);
  }
  // Reserve 0 as the "never validated" sentinel.
  return hash == 0 ? 1 : hash;
}

IncrementalValidator::IncrementalValidator(
    const topo::MetadataService& metadata, VerifierFactory verifier_factory,
    ContractGenOptions options)
    : metadata_(&metadata),
      verifier_factory_(std::move(verifier_factory)),
      generator_(metadata, options),
      fingerprints_(metadata.topology().device_count(), 0),
      cached_violations_(metadata.topology().device_count()) {}

IncrementalValidator::CycleResult IncrementalValidator::run_cycle(
    const FibSource& fibs, unsigned threads) {
  const std::size_t device_count = metadata_->topology().device_count();
  threads = std::max(1u, threads);

  std::atomic<std::size_t> next_index{0};
  std::atomic<std::size_t> revalidated{0};
  std::atomic<std::size_t> contracts_checked{0};

  const auto worker = [&] {
    const auto verifier = verifier_factory_();
    while (true) {
      const std::size_t device =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (device >= device_count) break;
      const routing::ForwardingTable fib =
          fibs.fetch(static_cast<topo::DeviceId>(device));
      const std::uint64_t print = fingerprint(fib);
      if (print == fingerprints_[device]) continue;  // unchanged: reuse
      const auto contracts =
          generator_.for_device(static_cast<topo::DeviceId>(device));
      cached_violations_[device] = verifier->check(
          fib, contracts, static_cast<topo::DeviceId>(device));
      fingerprints_[device] = print;
      revalidated.fetch_add(1, std::memory_order_relaxed);
      contracts_checked.fetch_add(contracts.size(),
                                  std::memory_order_relaxed);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }

  CycleResult result;
  result.devices_total = device_count;
  result.devices_revalidated = revalidated.load();
  result.contracts_checked = contracts_checked.load();
  for (const auto& device_violations : cached_violations_) {
    result.violations.insert(result.violations.end(),
                             device_violations.begin(),
                             device_violations.end());
  }
  return result;
}

void IncrementalValidator::reset() {
  std::fill(fingerprints_.begin(), fingerprints_.end(), 0);
  for (auto& cache : cached_violations_) cache.clear();
}

}  // namespace dcv::rcdc
