#include "rcdc/incremental.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/span.hpp"

namespace dcv::rcdc {

namespace {

/// splitmix64 finalizer: a strong 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fingerprint(const routing::ForwardingTable& fib) {
  // Semantic content hash: each rule is hashed independently and the rule
  // hashes are combined with wrap-around addition, so neither the order
  // rules are stored in nor the order ECMP next hops arrived in changes the
  // fingerprint — two permuted-but-equivalent tables must not look changed
  // to the incremental validator. (ForwardingTable canonicalizes on add();
  // hashing order-insensitively keeps equivalence intact for any table
  // whose rules reach us pre-built, e.g. parsed or corrupted pulls.)
  std::uint64_t table_acc = 0;
  for (const routing::Rule& rule : fib.rules()) {
    std::uint64_t hops_acc = 0;
    for (const topo::DeviceId hop : rule.next_hops) {
      hops_acc += mix64(static_cast<std::uint64_t>(hop) + 1);
    }
    std::uint64_t rule_hash =
        mix64(rule.prefix.network().value() ^
              (static_cast<std::uint64_t>(rule.prefix.length()) << 33) ^
              (rule.connected ? 1ull << 32 : 0));
    rule_hash = mix64(rule_hash ^ hops_acc ^
                      mix64(rule.next_hops.size()));
    table_acc += mix64(rule_hash);
  }
  const std::uint64_t hash = mix64(table_acc ^ fib.size());
  // Reserve 0 as the "never validated" sentinel.
  return hash == 0 ? 1 : hash;
}

IncrementalValidator::IncrementalValidator(
    const topo::MetadataService& metadata, VerifierFactory verifier_factory,
    ContractGenOptions options, obs::MetricsRegistry* metrics)
    : metadata_(&metadata),
      verifier_factory_(std::move(verifier_factory)),
      generator_(metadata, options),
      fingerprints_(metadata.topology().device_count(), 0),
      cached_violations_(metadata.topology().device_count()) {
  if (metrics != nullptr) {
    fingerprint_ns_ = &metrics->histogram(
        "dcv_incremental_fingerprint_ns",
        "Time to fingerprint one device's forwarding table");
    revalidated_total_ = &metrics->counter(
        "dcv_incremental_devices_revalidated_total",
        "Devices re-verified because their FIB fingerprint changed");
    skipped_total_ = &metrics->counter(
        "dcv_incremental_devices_skipped_total",
        "Devices whose cached verdicts were reused (fingerprint unchanged)");
    revalidation_ratio_ = &metrics->gauge(
        "dcv_incremental_revalidation_ratio",
        "Fraction of devices re-verified in the latest cycle");
  }
}

IncrementalValidator::CycleResult IncrementalValidator::run_cycle(
    const FibSource& fibs, unsigned threads) {
  const std::size_t device_count = metadata_->topology().device_count();
  // Clamp the pool to the work available.
  threads = std::clamp(
      threads, 1u,
      static_cast<unsigned>(std::max<std::size_t>(1, device_count)));

  // One immutable plan for this cycle. A topology-epoch change invalidates
  // every cached verdict: contracts may have changed for any device, so the
  // fingerprint shortcut is no longer sound and everything revalidates.
  const ContractPlanPtr plan = generator_.plan();
  if (plan->epoch() != plan_epoch_) {
    plan_epoch_ = plan->epoch();
    fingerprints_.assign(device_count, 0);
    cached_violations_.assign(device_count, {});
  }

  std::atomic<std::size_t> next_index{0};
  std::atomic<std::size_t> revalidated{0};
  std::atomic<std::size_t> contracts_checked{0};

  const auto worker = [&] {
    const auto verifier = verifier_factory_();
    while (true) {
      const std::size_t device =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (device >= device_count) break;
      const routing::ForwardingTable fib =
          fibs.fetch(static_cast<topo::DeviceId>(device));
      obs::ScopedTimer fingerprint_timer(fingerprint_ns_);
      const std::uint64_t print = fingerprint(fib);
      fingerprint_timer.stop();
      if (print == fingerprints_[device]) continue;  // unchanged: reuse
      const std::span<const Contract> contracts =
          plan->contracts_for(static_cast<topo::DeviceId>(device));
      cached_violations_[device] = verifier->check(
          fib, contracts, static_cast<topo::DeviceId>(device));
      fingerprints_[device] = print;
      revalidated.fetch_add(1, std::memory_order_relaxed);
      contracts_checked.fetch_add(contracts.size(),
                                  std::memory_order_relaxed);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }

  CycleResult result;
  result.devices_total = device_count;
  result.devices_revalidated = revalidated.load();
  result.contracts_checked = contracts_checked.load();
  if (revalidated_total_ != nullptr) {
    revalidated_total_->inc(result.devices_revalidated);
    skipped_total_->inc(result.devices_total - result.devices_revalidated);
    revalidation_ratio_->set(
        result.devices_total == 0
            ? 0.0
            : static_cast<double>(result.devices_revalidated) /
                  static_cast<double>(result.devices_total));
  }
  for (const auto& device_violations : cached_violations_) {
    result.violations.insert(result.violations.end(),
                             device_violations.begin(),
                             device_violations.end());
  }
  return result;
}

void IncrementalValidator::reset() {
  std::fill(fingerprints_.begin(), fingerprints_.end(), 0);
  for (auto& cache : cached_violations_) cache.clear();
}

}  // namespace dcv::rcdc
