#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "net/prefix.hpp"
#include "topology/device.hpp"

namespace dcv::rcdc {

/// The two contract types of §2.4: a *specific* contract constrains the
/// forwarding of one concrete hosted prefix; a *default* contract
/// constrains the default route — its prefix field is 0.0.0.0/0 but it
/// refers to the complement of all specific prefixes and is therefore
/// checked against the FIB's default rule, not by range semantics.
enum class ContractKind : std::uint8_t {
  kDefault,
  kSpecific,
};

/// How the actual next-hop set must relate to the expected one.
///
/// ToR/leaf/spine contracts demand the exact redundant set (Intent 3: all
/// redundant shortest paths available). Regional-spine contracts are
/// cardinality-style (§2.4.5): the actual set must be a non-empty subset of
/// the expected downlinks of at least `min_next_hops` elements — this is why
/// in Figure 3's failure scenario the R devices have *no* contract failure
/// for Prefix_B even though one of their candidate spines withdrew it.
enum class MatchMode : std::uint8_t {
  kExactSet,
  kSubsetAtLeast,
};

/// A local forwarding contract (§2.4): "a prefix and a set of next hops,
/// and states the expectation that all packets whose destination address
/// matches the given prefix must be forwarded to the specified next hops."
struct Contract {
  ContractKind kind = ContractKind::kSpecific;
  net::Prefix prefix;
  /// Expected next hops, sorted ascending by device id.
  std::vector<topo::DeviceId> expected_next_hops;
  MatchMode mode = MatchMode::kExactSet;
  /// Cardinality lower bound C(h, v) of §2.4.5; used by kSubsetAtLeast.
  std::size_t min_next_hops = 1;
  /// Whether a specific contract may be satisfied by the default route.
  /// Generated contracts set this to false: a destination served only by
  /// the default route is latent risk even when the ECMP sets coincide —
  /// the §2.6.2 "Migrations" case, where ToRs stopped seeing each other's
  /// specific announcements yet traffic still flowed via defaults, was
  /// reported as a violation of "all the specific contracts".
  bool allow_default_route = true;

  friend bool operator==(const Contract&, const Contract&) = default;
};

/// True iff an observed next-hop set satisfies the contract's matching mode.
/// Accepts any sorted next-hop view (Rule vectors, arena-backed Rib slices)
/// without materializing a copy.
[[nodiscard]] inline bool hops_satisfy(std::span<const topo::DeviceId> actual,
                                       const Contract& contract) {
  switch (contract.mode) {
    case MatchMode::kExactSet:
      return std::equal(actual.begin(), actual.end(),
                        contract.expected_next_hops.begin(),
                        contract.expected_next_hops.end());
    case MatchMode::kSubsetAtLeast:
      return actual.size() >= contract.min_next_hops &&
             std::includes(contract.expected_next_hops.begin(),
                           contract.expected_next_hops.end(), actual.begin(),
                           actual.end());
  }
  return false;
}

/// Why a contract failed.
enum class ViolationKind : std::uint8_t {
  /// The default route's next hops differ from the default contract.
  kDefaultRouteMismatch,
  /// The default route is absent entirely.
  kMissingDefaultRoute,
  /// A rule reachable within the contract range selects the wrong next
  /// hops (including the case where packets fall through to a default
  /// route with different hops).
  kWrongNextHops,
  /// Some addresses of the contract range match no rule at all: packets
  /// are dropped.
  kUnreachableRange,
  /// Part of the contract range is served only by the default route while
  /// the contract demands a specific route (latent-risk drift; §2.6.2
  /// "Migrations").
  kSpecificViaDefaultRoute,
};

[[nodiscard]] std::string_view to_string(ViolationKind kind);
std::ostream& operator<<(std::ostream& os, ViolationKind kind);

/// One contract violation, pointing at the specific rule that violates the
/// contract (as both engines of §2.5 report).
struct Violation {
  topo::DeviceId device = topo::kInvalidDevice;
  Contract contract;
  ViolationKind kind = ViolationKind::kWrongNextHops;
  /// The violating rule's prefix; meaningful for kWrongNextHops and
  /// kDefaultRouteMismatch.
  net::Prefix rule_prefix;
  /// The next hops the rule actually uses (empty for missing routes).
  std::vector<topo::DeviceId> actual_next_hops;

  friend bool operator==(const Violation&, const Violation&) = default;
};

/// All contracts of one device.
struct DeviceContracts {
  topo::DeviceId device = topo::kInvalidDevice;
  std::vector<Contract> contracts;
};

}  // namespace dcv::rcdc
