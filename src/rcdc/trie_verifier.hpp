#pragma once

#include <vector>

#include "obs/metrics.hpp"
#include "rcdc/verifier.hpp"
#include "trie/prefix_trie.hpp"

namespace dcv::rcdc {

/// Registry handles for the trie engine's hot-path series; all-null when
/// uninstrumented, so every record site is one branch.
struct TrieVerifierMetrics {
  /// One sample per specific contract: candidate rules actually walked
  /// before the §2.5.2 coverage stop condition fired.
  obs::Histogram* rules_walked = nullptr;
  /// dcv_trie_rebuilds_total: policy-trie rebuilds into the retained arena.
  obs::Counter* rebuilds = nullptr;
  /// dcv_trie_arena_growth_total: rebuilds that had to grow the node arena
  /// (steady state should see almost none — the arena is retained).
  obs::Counter* arena_growth = nullptr;
  /// dcv_trie_arena_nodes: node-arena capacity after the latest rebuild.
  obs::Gauge* arena_nodes = nullptr;
};

/// The specialized fast engine of §2.5.2. For each policy it builds a
/// prefix trie once; for each contract C it collects the related rule set
///
///   { r | C.range ⊆ r.prefix ∨ r.prefix ⊆ C.range },
///
/// walks it in descending prefix-length order, flags rules whose next hops
/// do not match the contract, accumulates covered address space, and stops
/// as soon as the union of walked prefixes covers C.range.
///
/// One refinement over the paper's listing: a rule is only flagged if it is
/// actually the longest-prefix match of some address in C.range (i.e. its
/// intersection with the range is not already covered by longer rules) —
/// this makes the engine agree exactly with the SMT engine's semantics,
/// which property tests assert.
///
/// The verifier is stateful across check() calls (one instance per worker
/// thread): the policy trie and candidate buffers are retained, so each
/// device rebuilds into the previous device's arena — the steady-state hot
/// path allocates nothing, and the candidate walk order comes from the
/// trie's 33-way counting sort instead of a per-contract std::sort.
class TrieVerifier final : public Verifier {
 public:
  /// Back-compat convenience: instrument only the rules-walked histogram.
  explicit TrieVerifier(obs::Histogram* rules_walked = nullptr)
      : TrieVerifier(TrieVerifierMetrics{.rules_walked = rules_walked}) {}

  explicit TrieVerifier(TrieVerifierMetrics metrics) : metrics_(metrics) {}

  [[nodiscard]] std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) override;

 private:
  using Policy = trie::PrefixTrie<const routing::Rule*>;

  TrieVerifierMetrics metrics_;
  Policy policy_;
  std::vector<Policy::Entry> candidates_;
  std::vector<Policy::Entry> scratch_;
};

}  // namespace dcv::rcdc
