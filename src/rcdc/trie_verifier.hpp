#pragma once

#include "obs/metrics.hpp"
#include "rcdc/verifier.hpp"

namespace dcv::rcdc {

/// The specialized fast engine of §2.5.2. For each policy it builds a
/// prefix trie once; for each contract C it collects the related rule set
///
///   { r | C.range ⊆ r.prefix ∨ r.prefix ⊆ C.range },
///
/// walks it in descending prefix-length order, flags rules whose next hops
/// do not match the contract, accumulates covered address space, and stops
/// as soon as the union of walked prefixes covers C.range.
///
/// One refinement over the paper's listing: a rule is only flagged if it is
/// actually the longest-prefix match of some address in C.range (i.e. its
/// intersection with the range is not already covered by longer rules) —
/// this makes the engine agree exactly with the SMT engine's semantics,
/// which property tests assert.
class TrieVerifier final : public Verifier {
 public:
  /// `rules_walked`, when non-null, receives one sample per specific
  /// contract: the number of candidate rules actually walked before the
  /// §2.5.2 coverage stop condition fired — the quantity the trie's
  /// early-exit is designed to keep small.
  explicit TrieVerifier(obs::Histogram* rules_walked = nullptr)
      : rules_walked_(rules_walked) {}

  [[nodiscard]] std::vector<Violation> check(
      const routing::ForwardingTable& fib, std::span<const Contract> contracts,
      topo::DeviceId device) override;

 private:
  obs::Histogram* rules_walked_;
};

}  // namespace dcv::rcdc
