#pragma once

#include <string>
#include <vector>

#include "rcdc/precheck.hpp"
#include "topology/topology.hpp"

namespace dcv::rcdc {

/// Parses the line-oriented change-plan format used by dcv_precheck and
/// the change-gate's POST /precheck endpoint:
///
///   # comments allowed
///   change renumber ToR1
///   set-asn T0-0-0 64990
///   change maintenance window
///   shut-link T0-0-0 T1-0-0
///   down-link T1-0-1 T2-1-0
///
/// Each `change <description>` opens a change; the following set-asn /
/// shut-link / down-link lines belong to it. Device names, link endpoints
/// and ASN values are resolved against `topology` *at parse time*, so an
/// invalid plan fails here with ParseError (a clean 400 for the gate)
/// instead of throwing from NetworkChange::apply against a shared warm
/// emulator. The returned changes capture resolved ids only and apply to
/// any clone of `topology`.
[[nodiscard]] std::vector<NetworkChange> parse_change_plan(
    const std::string& text, const topo::Topology& topology);

}  // namespace dcv::rcdc
