#pragma once

#include <string>
#include <vector>

#include "rcdc/fib_source.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// Template properties — "network beliefs" in the sense of [30] (Lopes,
/// Bjørner et al., NSDI'15), which the paper cites as the label-style way
/// of capturing intent (§1). Where RCDC derives intent automatically from
/// architecture, beliefs let an operator pin *additional* expectations to
/// concrete endpoints and check them against the same FIB reality.
enum class BeliefKind : std::uint8_t {
  kReachable,       // some forwarding path delivers source -> destination
  kUnreachable,     // no forwarding path delivers
  kMaxPathLength,   // every delivering path has at most `bound` hops
  kMinEcmpPaths,    // at least `bound` distinct delivering paths exist
  kTraverses,       // some delivering path passes through device `via`
  kAvoids,          // no delivering path passes through device `via`
};

[[nodiscard]] std::string_view to_string(BeliefKind kind);

struct Belief {
  BeliefKind kind = BeliefKind::kReachable;
  /// Source ToR.
  topo::DeviceId source = topo::kInvalidDevice;
  /// Destination: a hosted prefix.
  net::Prefix destination;
  /// Bound for kMaxPathLength / kMinEcmpPaths.
  std::uint64_t bound = 0;
  /// Waypoint for kTraverses / kAvoids.
  topo::DeviceId via = topo::kInvalidDevice;

  [[nodiscard]] std::string to_string(const topo::Topology& topology) const;
};

struct BeliefResult {
  Belief belief;
  bool holds = false;
  /// What was observed, e.g. "4 paths, lengths 4..4".
  std::string observed;
};

/// Checks beliefs against the forwarding state one destination at a time,
/// by traversing the per-destination forwarding graph induced by the FIBs
/// (longest-prefix match per device, like the global checker).
class BeliefChecker {
 public:
  BeliefChecker(const topo::MetadataService& metadata, const FibSource& fibs)
      : metadata_(&metadata), fibs_(&fibs) {}

  [[nodiscard]] BeliefResult check(const Belief& belief) const;
  [[nodiscard]] std::vector<BeliefResult> check_all(
      const std::vector<Belief>& beliefs) const;

 private:
  const topo::MetadataService* metadata_;
  const FibSource* fibs_;
};

}  // namespace dcv::rcdc
