#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "rcdc/fib_source.hpp"

namespace dcv::rcdc {

/// Time source for the resilience layer. Injected so the retry/backoff and
/// circuit-breaker state machines are testable with a deterministic clock —
/// tests must never sleep wall-clock time.
class FetchClock {
 public:
  virtual ~FetchClock() = default;

  FetchClock() = default;
  FetchClock(const FetchClock&) = delete;
  FetchClock& operator=(const FetchClock&) = delete;

  [[nodiscard]] virtual std::chrono::steady_clock::time_point now() = 0;
  virtual void sleep_for(std::chrono::nanoseconds duration) = 0;
};

/// The real clock: std::chrono::steady_clock + std::this_thread::sleep_for.
class SystemFetchClock final : public FetchClock {
 public:
  [[nodiscard]] std::chrono::steady_clock::time_point now() override;
  void sleep_for(std::chrono::nanoseconds duration) override;
};

/// A manual clock for tests and benchmarks: sleep_for() advances simulated
/// time instantly instead of blocking. Thread-safe (the pipeline's puller
/// workers share one clock).
class ManualFetchClock final : public FetchClock {
 public:
  [[nodiscard]] std::chrono::steady_clock::time_point now() override;
  void sleep_for(std::chrono::nanoseconds duration) override;
  /// Moves time forward without a sleeper (e.g. "the cool-down elapses
  /// between monitoring cycles").
  void advance(std::chrono::nanoseconds duration);

 private:
  std::mutex mutex_;
  std::chrono::steady_clock::time_point now_{};
};

/// Retry schedule for one fetch: exponential backoff with jitter under an
/// overall per-fetch deadline.
struct RetryPolicy {
  /// Total pull attempts per fetch (1 = no retries).
  std::uint32_t max_attempts = 3;
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(50);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(2);
  /// Backoff is scaled by a deterministic factor in [1-jitter, 1+jitter]
  /// to decorrelate retry storms across devices.
  double jitter = 0.2;
  /// Overall budget for one fetch (attempts + backoffs). No new attempt is
  /// started once the budget is exhausted.
  std::chrono::nanoseconds fetch_deadline = std::chrono::seconds(10);
};

/// Per-device circuit breaker: after `failure_threshold` consecutive
/// exhausted fetches the breaker opens and fetches short-circuit (no device
/// contact) until `cool_down` elapses; then one half-open probe is allowed —
/// success closes the breaker, failure re-opens it for another cool-down.
struct BreakerPolicy {
  std::uint32_t failure_threshold = 5;
  std::chrono::nanoseconds cool_down = std::chrono::seconds(30);
};

struct ResilienceConfig {
  RetryPolicy retry;
  BreakerPolicy breaker;
  /// Serve the last successfully pulled table (tagged stale, with its age)
  /// when a fetch fails outright or is short-circuited by the breaker.
  bool serve_stale = true;
  std::uint64_t seed = 0;
  /// Optional metrics sink (must outlive the source). When set, every fetch
  /// records the dcv_fetch_* series: attempts histogram, retry/backoff/
  /// deadline/stale/short-circuit counters, and breaker transitions by
  /// target state. Null disables instrumentation entirely.
  obs::MetricsRegistry* metrics = nullptr;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState state);

/// Cumulative counters across all fetches through one ResilientFibSource.
struct ResilienceStats {
  std::uint64_t fetches = 0;
  std::uint64_t retries = 0;
  /// Fetches that ended without a fresh table (stale fallback or failure).
  std::uint64_t exhausted = 0;
  std::uint64_t breaker_opens = 0;
  /// Fetches short-circuited by an open breaker (device never contacted).
  std::uint64_t short_circuits = 0;
  std::uint64_t half_open_probes = 0;
  std::uint64_t stale_served = 0;
  /// Retry loops cut short because the next backoff would overrun the
  /// per-fetch deadline (attempt budget not yet exhausted).
  std::uint64_t deadline_hits = 0;
};

/// Decorator that gives any FibSource the failure-handling a production
/// routing-table puller needs (§2.6.1): retries with exponential backoff +
/// jitter under a per-fetch deadline, a per-device circuit breaker so
/// persistently dead devices stop consuming the retry budget of every
/// cycle, and a stale-table cache so one flaky pull degrades confidence
/// instead of coverage.
///
/// try_fetch() never throws; the worst outcome is a FetchOutcome with no
/// table. Thread-safe: validator/puller workers fan fetches out
/// concurrently; breaker and cache state share one mutex, and backoff
/// sleeps happen outside it.
class ResilientFibSource final : public FibSource {
 public:
  /// `clock` defaults to the system clock; pass a ManualFetchClock in tests.
  /// The clock must outlive the source.
  ResilientFibSource(const FibSource& inner, ResilienceConfig config,
                     FetchClock* clock = nullptr);

  [[nodiscard]] FetchOutcome try_fetch(topo::DeviceId device) const override;

  /// Legacy infallible path: throws FetchError when no table (fresh or
  /// stale) could be produced.
  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override;

  [[nodiscard]] ResilienceStats stats() const;
  [[nodiscard]] BreakerState breaker_state(topo::DeviceId device) const;
  [[nodiscard]] const ResilienceConfig& config() const { return config_; }

 private:
  struct DeviceState {
    BreakerState breaker = BreakerState::kClosed;
    std::uint32_t consecutive_failures = 0;
    std::chrono::steady_clock::time_point opened_at{};
    /// A half-open probe is in flight; concurrent fetches short-circuit.
    bool probe_inflight = false;
    bool has_cache = false;
    routing::ForwardingTable cached_table;
    std::chrono::steady_clock::time_point cached_at{};
  };

  [[nodiscard]] std::chrono::nanoseconds backoff_before(
      topo::DeviceId device, std::uint32_t attempt) const;

  const FibSource* inner_;
  ResilienceConfig config_;
  FetchClock* clock_;
  mutable SystemFetchClock system_clock_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<topo::DeviceId, DeviceState> state_;
  mutable ResilienceStats stats_;

  // Registry handles; all null when config_.metrics is null.
  obs::Histogram* attempts_hist_ = nullptr;
  obs::Counter* attempts_total_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* backoff_sleep_ns_total_ = nullptr;
  obs::Counter* deadline_hits_total_ = nullptr;
  obs::Counter* stale_served_total_ = nullptr;
  obs::Counter* short_circuits_total_ = nullptr;
  obs::Counter* breaker_to_open_ = nullptr;
  obs::Counter* breaker_to_half_open_ = nullptr;
  obs::Counter* breaker_to_closed_ = nullptr;
};

}  // namespace dcv::rcdc
