#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rcdc/contract.hpp"
#include "routing/fib.hpp"
#include "topology/metadata.hpp"

namespace dcv::rcdc {

/// The abstract local-validation framework of §2.4.5: local validation of
/// policies P_v : H -> 2^(H x V) is sound when there is a rank function
/// δ : H x V -> N such that
///
///   (1) every next hop strictly decreases δ:
///         (h', v') ∈ P_v(h)  ⇒  δ(h, v) > δ(h', v'),
///   (2) δ(h, v) = 0 exactly when v is the intended destination for h, and
///   (3) a cardinality bound C : H x V -> N with C(h, v) > 0 whenever
///       δ(h, v) > 0 is met: |{v' | (h', v') ∈ P_v(h)}| ≥ C(h, v).
///
/// Headers never rewrite in our setting, so H collapses to destination
/// prefixes. The rank is the architectural distance-to-destination:
///
///   destination ToR 0; leaves of its cluster 1; ToRs of its cluster and
///   spines serving it 2; other leaves and regional spines 3; other ToRs 4.
///
/// Condition (1) over every device's policy implies loop freedom and
/// shortest-path forwarding; together with (3) it yields Claim 1 — local
/// contracts imply global all-pairs reachability over the maximal redundant
/// shortest paths. check_contracts() verifies that *generated contracts*
/// satisfy the conditions (the inductive-invariant proof obligation);
/// check_fib() verifies a *deployed policy* directly against the framework.
class LocalValidationFramework {
 public:
  explicit LocalValidationFramework(const topo::MetadataService& metadata)
      : metadata_(&metadata) {}

  /// δ(prefix, device): architectural distance from `device` to the ToR
  /// hosting `prefix`. nullopt when the device is outside the destination's
  /// datacenter fabric (no rank is defined, e.g. across datacenters) or the
  /// prefix is not hosted.
  [[nodiscard]] std::optional<int> delta(const net::Prefix& prefix,
                                         topo::DeviceId device) const;

  /// C(prefix, device): the expected redundant fan-out toward the prefix;
  /// 0 when δ is 0 or undefined.
  [[nodiscard]] std::size_t cardinality_bound(const net::Prefix& prefix,
                                              topo::DeviceId device) const;

  /// A violation of one of the framework's conditions.
  struct Issue {
    topo::DeviceId device = topo::kInvalidDevice;
    net::Prefix prefix;
    std::string message;
  };

  /// Checks a deployed policy: for every hosted prefix ranked on this
  /// device, the FIB's forwarding decision must decrease δ and meet the
  /// cardinality bound.
  [[nodiscard]] std::vector<Issue> check_fib(
      topo::DeviceId device, const routing::ForwardingTable& fib) const;

  /// Checks generated contracts against the framework: every expected next
  /// hop decreases δ and the expected fan-out meets C. This is the static
  /// proof obligation showing the contract set is self-consistent.
  [[nodiscard]] std::vector<Issue> check_contracts(
      topo::DeviceId device, std::span<const Contract> contracts) const;

 private:
  const topo::MetadataService* metadata_;
};

}  // namespace dcv::rcdc
