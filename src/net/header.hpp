#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dcv::net {

/// Well-known IP protocol numbers used in ACLs. `kIp` is the wildcard used
/// by Cisco's `ip` keyword: it matches every protocol.
enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// A closed range of layer-4 port numbers [lo, hi].
///
/// `any()` is [0, 65535] (the paper: "for ports, Any encodes the range from
/// 0 to 2^16 - 1").
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0xFFFF;

  constexpr PortRange() = default;
  constexpr PortRange(std::uint16_t low, std::uint16_t high)
      : lo(low), hi(high) {}

  static constexpr PortRange any() { return PortRange{0, 0xFFFF}; }
  static constexpr PortRange exactly(std::uint16_t port) {
    return PortRange{port, port};
  }

  [[nodiscard]] constexpr bool is_any() const {
    return lo == 0 && hi == 0xFFFF;
  }
  [[nodiscard]] constexpr bool contains(std::uint16_t port) const {
    return lo <= port && port <= hi;
  }
  [[nodiscard]] constexpr bool contains(const PortRange& o) const {
    return lo <= o.lo && o.hi <= hi;
  }
  [[nodiscard]] constexpr bool overlaps(const PortRange& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
  /// True iff the range holds at least one port (lo <= hi). An inverted
  /// range denotes the empty set — contains() is false for every port.
  [[nodiscard]] constexpr bool valid() const { return lo <= hi; }
  /// The overlap of the two ranges; !valid() when they are disjoint.
  [[nodiscard]] constexpr PortRange intersection(const PortRange& o) const {
    return PortRange(lo < o.lo ? o.lo : lo, hi < o.hi ? hi : o.hi);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const PortRange&, const PortRange&) =
      default;
};

/// A protocol matcher: either a specific IP protocol number or the `ip`
/// wildcard (empty optional) that matches all protocols.
struct ProtocolSpec {
  std::optional<std::uint8_t> number;  // nullopt == wildcard ("ip" / Any)

  constexpr ProtocolSpec() = default;
  constexpr explicit ProtocolSpec(std::uint8_t n) : number(n) {}
  constexpr explicit ProtocolSpec(Protocol p)
      : number(static_cast<std::uint8_t>(p)) {}

  static constexpr ProtocolSpec any() { return ProtocolSpec{}; }
  static constexpr ProtocolSpec tcp() { return ProtocolSpec{Protocol::kTcp}; }
  static constexpr ProtocolSpec udp() { return ProtocolSpec{Protocol::kUdp}; }
  static constexpr ProtocolSpec icmp() {
    return ProtocolSpec{Protocol::kIcmp};
  }

  [[nodiscard]] constexpr bool is_any() const { return !number.has_value(); }
  [[nodiscard]] constexpr bool matches(std::uint8_t protocol) const {
    return !number || *number == protocol;
  }

  /// Parses a protocol keyword ("ip", "tcp", "udp", "icmp") or a numeric
  /// protocol value. Throws dcv::ParseError on anything else.
  static ProtocolSpec parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const ProtocolSpec&,
                                    const ProtocolSpec&) = default;
};

/// The concrete 5-tuple over which connectivity policies are interpreted;
/// the paper's vector x = <srcIp, srcPort, dstIp, dstPort, protocol>.
struct PacketHeader {
  Ipv4Address src_ip{};
  std::uint16_t src_port = 0;
  Ipv4Address dst_ip{};
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = static_cast<std::uint8_t>(Protocol::kTcp);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const PacketHeader&,
                                    const PacketHeader&) = default;
};

std::ostream& operator<<(std::ostream& os, const PacketHeader& header);

}  // namespace dcv::net
