#pragma once

#include <stdexcept>
#include <string>

namespace dcv {

/// Base class for all errors raised by the dcv libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when textual input (addresses, prefixes, ACLs, routing tables)
/// cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when an operation is applied to an object in an invalid state,
/// e.g. querying a device id that does not exist in a topology.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

}  // namespace dcv
