#include "net/header.hpp"

#include <charconv>
#include <ostream>

#include "net/error.hpp"

namespace dcv::net {

std::string PortRange::to_string() const {
  if (is_any()) return "any";
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

ProtocolSpec ProtocolSpec::parse(std::string_view text) {
  if (text == "ip" || text == "any" || text == "Any" || text == "*") {
    return ProtocolSpec::any();
  }
  if (text == "tcp" || text == "Tcp" || text == "TCP") {
    return ProtocolSpec::tcp();
  }
  if (text == "udp" || text == "Udp" || text == "UDP") {
    return ProtocolSpec::udp();
  }
  if (text == "icmp" || text == "Icmp" || text == "ICMP") {
    return ProtocolSpec::icmp();
  }
  unsigned number = 0;
  const auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), number);
  if (ec != std::errc{} || next != text.data() + text.size() || number > 255) {
    throw ParseError("unknown protocol: '" + std::string(text) + "'");
  }
  return ProtocolSpec(static_cast<std::uint8_t>(number));
}

std::string ProtocolSpec::to_string() const {
  if (!number) return "ip";
  switch (*number) {
    case static_cast<std::uint8_t>(Protocol::kTcp):
      return "tcp";
    case static_cast<std::uint8_t>(Protocol::kUdp):
      return "udp";
    case static_cast<std::uint8_t>(Protocol::kIcmp):
      return "icmp";
    default:
      return std::to_string(*number);
  }
}

std::string PacketHeader::to_string() const {
  return ProtocolSpec(protocol).to_string() + " " + src_ip.to_string() + ":" +
         std::to_string(src_port) + " -> " + dst_ip.to_string() + ":" +
         std::to_string(dst_port);
}

std::ostream& operator<<(std::ostream& os, const PacketHeader& header) {
  return os << header.to_string();
}

}  // namespace dcv::net
