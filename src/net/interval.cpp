#include "net/interval.hpp"

#include <algorithm>
#include <ostream>

namespace dcv::net {

std::string AddressInterval::to_string() const {
  return "[" + lo.to_string() + ", " + hi.to_string() + "]";
}

std::ostream& operator<<(std::ostream& os, const AddressInterval& interval) {
  return os << interval.to_string();
}

void IntervalSet::add(const AddressInterval& interval) {
  if (!interval.valid()) return;

  // Merge the new interval with every stored interval it overlaps or is
  // adjacent to, keeping the vector sorted and disjoint. Interval counts
  // here are small (rules touched by one contract check), so a linear merge
  // is fine and obviously correct.
  AddressInterval merged = interval;
  std::vector<AddressInterval> out;
  out.reserve(intervals_.size() + 1);
  bool inserted = false;
  for (const auto& existing : intervals_) {
    const bool adjacent_left =
        existing.hi.value() != UINT32_C(0xFFFFFFFF) &&
        existing.hi.value() + 1 == merged.lo.value();
    const bool adjacent_right =
        merged.hi.value() != UINT32_C(0xFFFFFFFF) &&
        merged.hi.value() + 1 == existing.lo.value();
    if (existing.overlaps(merged) || adjacent_left || adjacent_right) {
      merged.lo = std::min(merged.lo, existing.lo);
      merged.hi = std::max(merged.hi, existing.hi);
    } else if (existing.hi < merged.lo) {
      out.push_back(existing);
    } else {
      if (!inserted) {
        out.push_back(merged);
        inserted = true;
      }
      out.push_back(existing);
    }
  }
  if (!inserted) out.push_back(merged);
  intervals_ = std::move(out);
}

bool IntervalSet::covers(const AddressInterval& interval) const {
  // Since intervals_ are disjoint and coalesced, `interval` is covered iff a
  // single stored interval contains it.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const AddressInterval& a, const AddressInterval& b) {
        return a.hi < b.lo;
      });
  return it != intervals_.end() && it->contains(interval);
}

bool IntervalSet::contains(Ipv4Address address) const {
  return covers(AddressInterval(address, address));
}

std::uint64_t IntervalSet::size() const {
  std::uint64_t total = 0;
  for (const auto& interval : intervals_) total += interval.size();
  return total;
}

}  // namespace dcv::net
