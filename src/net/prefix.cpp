#include "net/prefix.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>

#include "net/error.hpp"

namespace dcv::net {

namespace {

constexpr std::uint32_t mask_bits(int length) {
  if (length == 0) return 0;
  return ~std::uint32_t{0} << (32 - length);
}

}  // namespace

Prefix::Prefix(Ipv4Address network, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw InvalidArgument("prefix length out of range: " +
                          std::to_string(length));
  }
  network_ = Ipv4Address(network.value() & mask_bits(length));
}

Prefix Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Prefix(Ipv4Address::parse(text), 32);
  }
  const auto address = Ipv4Address::parse(text.substr(0, slash));
  const auto length_text = text.substr(slash + 1);
  int length = -1;
  const auto [next, ec] = std::from_chars(
      length_text.data(), length_text.data() + length_text.size(), length);
  if (ec != std::errc{} || next != length_text.data() + length_text.size() ||
      length < 0 || length > 32) {
    throw ParseError("malformed prefix length in '" + std::string(text) + "'");
  }
  return Prefix(address, length);
}

Ipv4Address Prefix::last() const {
  return Ipv4Address(network_.value() | ~mask_bits(length_));
}

Ipv4Address Prefix::mask() const { return Ipv4Address(mask_bits(length_)); }

std::uint64_t Prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

bool Prefix::contains(Ipv4Address address) const {
  return (address.value() & mask_bits(length_)) == network_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

bool Prefix::overlaps(const Prefix& other) const {
  return contains(other) || other.contains(*this);
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.to_string();
}

Prefix common_prefix(const Prefix& a, const Prefix& b) {
  const int max_length = std::min(a.length(), b.length());
  int length = 0;
  while (length < max_length && a.bit(length) == b.bit(length)) ++length;
  return Prefix(a.network(), length);
}

std::vector<Prefix> prefix_difference(const Prefix& outer,
                                      const Prefix& inner) {
  if (inner.contains(outer)) return {};
  if (!outer.contains(inner)) return {outer};
  std::vector<Prefix> out;
  out.reserve(static_cast<std::size_t>(inner.length() - outer.length()));
  // Walk from outer toward inner; at each step, the half not containing
  // inner is entirely outside it.
  for (int length = outer.length(); length < inner.length(); ++length) {
    const std::uint32_t branch_bit = std::uint32_t{1} << (31 - length);
    const std::uint32_t sibling_network =
        (inner.network().value() &
         (length == 0 ? 0u : ~std::uint32_t{0} << (32 - length))) |
        ((inner.network().value() & branch_bit) ^ branch_bit);
    out.emplace_back(Ipv4Address(sibling_network), length + 1);
  }
  return out;
}

}  // namespace dcv::net
