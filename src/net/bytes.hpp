#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dcv::net {

/// Append-only little-endian byte encoder for the binary interchange
/// formats (dist wire frames, serialized metrics registries). Fixed-width
/// integers only — the decoding side must be able to bound every read
/// before performing it, and implicit varint lengths make that harder to
/// audit than explicit u32 counts.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(v.data(), v.size());
  }
  void bytes(std::span<const std::uint8_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(v.data(), v.size());
  }
  /// Raw bytes, no length prefix (for payloads framed elsewhere).
  void raw(std::span<const std::uint8_t> v) { append(v.data(), v.size()); }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return out_;
  }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  std::vector<std::uint8_t> out_;
};

/// Bounds-checked decoder over an immutable byte span. Every read method
/// returns false (and leaves the output untouched) once the reader has
/// failed or would run past the end; failure is sticky, so a decode
/// routine can issue all its reads and check ok() once at the end. Never
/// throws, never reads out of bounds — malformed input from the wire must
/// degrade to a decode error, not UB (the dist fuzz corpus runs these
/// paths under ASan+UBSan).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t& v) { return read(&v, sizeof v); }
  [[nodiscard]] bool u16(std::uint16_t& v) { return read(&v, sizeof v); }
  [[nodiscard]] bool u32(std::uint32_t& v) { return read(&v, sizeof v); }
  [[nodiscard]] bool u64(std::uint64_t& v) { return read(&v, sizeof v); }
  [[nodiscard]] bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  [[nodiscard]] bool str(std::string& v) {
    std::uint32_t n = 0;
    if (!u32(n) || n > remaining()) return fail();
    v.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool bytes(std::vector<std::uint8_t>& v) {
    std::uint32_t n = 0;
    if (!u32(n) || n > remaining()) return fail();
    v.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  /// Reads a u32 element count and rejects counts that could not possibly
  /// fit in the remaining bytes (each element needs ≥ min_element_bytes),
  /// so a corrupted count cannot drive a multi-gigabyte reserve().
  [[nodiscard]] bool count(std::uint32_t& n, std::size_t min_element_bytes) {
    if (!u32(n)) return false;
    if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
      return fail();
    }
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the reader consumed the input exactly and never failed.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  bool read(void* out, std::size_t n) {
    if (!ok_ || n > remaining()) return fail();
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

static_assert(std::endian::native == std::endian::little,
              "wire formats assume little-endian hosts");

}  // namespace dcv::net
