#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dcv::net {

/// A closed interval of IPv4 addresses [lo, hi].
///
/// Prefixes are intervals whose size is a power of two aligned on its size;
/// intervals are the natural domain for coverage reasoning ("is the contract
/// range fully covered by the union of these rule prefixes?" — the stopping
/// condition of the paper's trie algorithm, §2.5.2).
struct AddressInterval {
  Ipv4Address lo{};
  Ipv4Address hi{};

  constexpr AddressInterval() = default;
  constexpr AddressInterval(Ipv4Address low, Ipv4Address high)
      : lo(low), hi(high) {}

  /// The interval covered by a CIDR prefix.
  static AddressInterval from_prefix(const Prefix& prefix) {
    return AddressInterval(prefix.first(), prefix.last());
  }

  [[nodiscard]] constexpr bool valid() const { return lo <= hi; }
  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return lo <= a && a <= hi;
  }
  [[nodiscard]] constexpr bool contains(const AddressInterval& o) const {
    return lo <= o.lo && o.hi <= hi;
  }
  [[nodiscard]] constexpr bool overlaps(const AddressInterval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
  /// The overlap of the two intervals; invalid() when they are disjoint.
  [[nodiscard]] constexpr AddressInterval intersection(
      const AddressInterval& o) const {
    return AddressInterval(lo < o.lo ? o.lo : lo, hi < o.hi ? hi : o.hi);
  }
  [[nodiscard]] std::uint64_t size() const {
    return std::uint64_t{hi.value()} - lo.value() + 1;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const AddressInterval&,
                                    const AddressInterval&) = default;
};

std::ostream& operator<<(std::ostream& os, const AddressInterval& interval);

/// A set of addresses maintained as disjoint, sorted, coalesced intervals.
///
/// Supports the coverage query at the heart of the trie-based contract
/// checker: rules' prefixes are added one by one (descending prefix length)
/// and the check stops as soon as the contract range is fully covered.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Adds an interval, merging with any overlapping/adjacent intervals.
  void add(const AddressInterval& interval);
  void add(const Prefix& prefix) { add(AddressInterval::from_prefix(prefix)); }

  /// True iff every address of `interval` is in the set.
  [[nodiscard]] bool covers(const AddressInterval& interval) const;
  [[nodiscard]] bool covers(const Prefix& prefix) const {
    return covers(AddressInterval::from_prefix(prefix));
  }

  [[nodiscard]] bool contains(Ipv4Address address) const;

  /// Total number of addresses in the set.
  [[nodiscard]] std::uint64_t size() const;

  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// The disjoint sorted intervals making up the set.
  [[nodiscard]] const std::vector<AddressInterval>& intervals() const {
    return intervals_;
  }

 private:
  std::vector<AddressInterval> intervals_;
};

}  // namespace dcv::net
