#include "net/ipv4.hpp"

#include <charconv>
#include <ostream>

#include "net/error.hpp"

namespace dcv::net {

Ipv4Address Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  for (int octet_index = 0; octet_index < 4; ++octet_index) {
    if (octet_index > 0) {
      if (cursor == end || *cursor != '.') {
        throw ParseError("malformed IPv4 address: '" + std::string(text) +
                         "'");
      }
      ++cursor;
    }
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(cursor, end, octet);
    if (ec != std::errc{} || next == cursor || octet > 255) {
      throw ParseError("malformed IPv4 address: '" + std::string(text) + "'");
    }
    value = (value << 8) | octet;
    cursor = next;
  }
  if (cursor != end) {
    throw ParseError("trailing characters in IPv4 address: '" +
                     std::string(text) + "'");
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address address) {
  return os << address.to_string();
}

}  // namespace dcv::net
