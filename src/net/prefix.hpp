#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"

namespace dcv::net {

/// A CIDR prefix: a 32-bit IPv4 network address plus a mask length.
///
/// Invariant: host bits below the mask are zero (the constructor masks them
/// off), so two Prefix values compare equal iff they denote the same address
/// range. A /0 prefix ("0.0.0.0/0") denotes the whole address space; the
/// paper uses it both as the default route and, in default contracts, as the
/// complement of all specific prefixes (§2.4).
class Prefix {
 public:
  /// The default prefix 0.0.0.0/0.
  constexpr Prefix() = default;

  /// Builds a prefix from a network address and mask length (0..32). Host
  /// bits are cleared. Throws dcv::InvalidArgument if length > 32.
  Prefix(Ipv4Address network, int length);

  /// Parses CIDR notation, e.g. "10.3.129.224/28". A bare address is read
  /// as a /32 host route. Throws dcv::ParseError on malformed input.
  static Prefix parse(std::string_view text);

  /// The canonical default route 0.0.0.0/0.
  static constexpr Prefix default_route() { return Prefix{}; }

  [[nodiscard]] constexpr Ipv4Address network() const { return network_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  /// First address of the range (equals network()).
  [[nodiscard]] constexpr Ipv4Address first() const { return network_; }

  /// Last address of the range, e.g. 10.255.255.255 for 10.0.0.0/8.
  [[nodiscard]] Ipv4Address last() const;

  /// The netmask as an address, e.g. 255.255.255.0 for /24.
  [[nodiscard]] Ipv4Address mask() const;

  /// Number of addresses covered: 2^(32-length). Returned as 64-bit since a
  /// /0 covers 2^32 addresses.
  [[nodiscard]] std::uint64_t size() const;

  /// True iff the given address is inside this prefix's range.
  [[nodiscard]] bool contains(Ipv4Address address) const;

  /// True iff `other` is a subset of (or equal to) this prefix. In the
  /// paper's trie algorithm this is the test "r_i.prefix extends r_j".
  [[nodiscard]] bool contains(const Prefix& other) const;

  /// True iff the two prefixes share any address. For proper prefixes this
  /// happens exactly when one contains the other.
  [[nodiscard]] bool overlaps(const Prefix& other) const;

  /// True for 0.0.0.0/0.
  [[nodiscard]] constexpr bool is_default() const { return length_ == 0; }

  /// The i'th bit of the network address from the top; valid for i < length.
  [[nodiscard]] constexpr bool bit(int i) const { return network_.bit(i); }

  /// CIDR rendering, e.g. "10.3.129.224/28".
  [[nodiscard]] std::string to_string() const;

  /// Ordering: by network address, then by length (shorter first). This
  /// gives a deterministic total order used for canonical rule ordering.
  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address network_{};
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

/// Decomposes `outer` minus `inner` into the minimal set of disjoint CIDR
/// prefixes (at most 32 - outer.length() of them): at each level on the
/// path from outer down to inner, the sibling subtree not containing inner
/// is emitted. Returns {outer} when the prefixes are disjoint, and {} when
/// inner covers outer. Used e.g. to express "all tenants except this
/// virtual network" in prefix-based firewall rules.
[[nodiscard]] std::vector<Prefix> prefix_difference(const Prefix& outer,
                                                    const Prefix& inner);

/// The longest prefix containing both arguments (their lowest common
/// ancestor in the prefix trie). Used by route aggregation.
[[nodiscard]] Prefix common_prefix(const Prefix& a, const Prefix& b);

}  // namespace dcv::net

template <>
struct std::hash<dcv::net::Prefix> {
  std::size_t operator()(const dcv::net::Prefix& p) const noexcept {
    const std::uint64_t packed =
        (std::uint64_t{p.network().value()} << 6) |
        static_cast<std::uint64_t>(p.length());
    return std::hash<std::uint64_t>{}(packed);
  }
};
