#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace dcv::net {

/// An IPv4 address stored as a host-order 32-bit unsigned integer.
///
/// Value type: cheap to copy, totally ordered by numeric address value.
/// The ordering matches the unsigned bit-vector comparison used in the
/// paper's SMT encodings (e.g. 10.0.0.0 <= x <= 10.255.255.255).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets, most significant
  /// first: Ipv4Address::from_octets(10, 20, 30, 40) == "10.20.30.40".
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation ("10.20.30.40"). Throws dcv::ParseError on
  /// malformed input (wrong number of octets, out-of-range octet, junk).
  static Ipv4Address parse(std::string_view text);

  /// The host-order numeric value of the address.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// The i'th octet, 0 being the most significant ("10" in 10.20.30.40).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// The i'th bit counted from the most significant (bit 0 is the top bit).
  /// Prefix tries consume address bits in this order.
  [[nodiscard]] constexpr bool bit(int i) const {
    return ((value_ >> (31 - i)) & 1u) != 0;
  }

  /// Dotted-quad rendering, e.g. "10.20.30.40".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address address);

}  // namespace dcv::net
