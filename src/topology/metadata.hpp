#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/prefix.hpp"
#include "topology/topology.hpp"

namespace dcv::topo {

/// A fact about address locality: which ToR (and hence cluster) hosts a
/// VLAN prefix.
struct PrefixFact {
  net::Prefix prefix;
  DeviceId tor = kInvalidDevice;
  ClusterId cluster = kNoCluster;
};

/// The metadata service of §1/§2.3: "Azure has a metadata service that
/// maintains facts such as the IP prefixes hosted in the top-of-rack switch
/// routers, the details of the neighbors, and how the BGP sessions are
/// configured between routers."
///
/// Intent is *derived* from these facts, never from observed network state.
/// The service is an immutable snapshot of the expected architecture; it
/// deliberately ignores link/session state so that contracts stay stable
/// across state fluctuations (§2.4).
class MetadataService {
 public:
  explicit MetadataService(const Topology& topology);

  [[nodiscard]] const Topology& topology() const { return *topology_; }

  /// The underlying topology's expected-architecture epoch (see
  /// Topology::epoch). Contract plans are keyed by this value.
  [[nodiscard]] std::uint64_t epoch() const { return topology_->epoch(); }

  /// Every hosted prefix in the datacenter with its locality facts, ordered
  /// by prefix.
  [[nodiscard]] std::span<const PrefixFact> all_prefixes() const {
    return prefixes_;
  }

  /// Locality fact for one prefix; nullopt if the prefix is not hosted.
  [[nodiscard]] std::optional<PrefixFact> locate(
      const net::Prefix& prefix) const;

  /// Prefixes hosted under ToRs of a cluster.
  [[nodiscard]] std::vector<PrefixFact> prefixes_in_cluster(
      ClusterId cluster) const;

  /// Spine devices with an expected link into the given cluster's leaf
  /// layer. A leaf's specific contract for a remote prefix points at the
  /// intersection of its own spine neighbors with this set (§2.4.2).
  [[nodiscard]] const std::unordered_set<DeviceId>& spines_serving_cluster(
      ClusterId cluster) const;

  /// Expected spine next hops of `leaf` toward `cluster`: the leaf's spine
  /// neighbors that also serve the destination cluster.
  [[nodiscard]] std::vector<DeviceId> leaf_uplinks_toward(
      DeviceId leaf, ClusterId cluster) const;

  /// Expected leaf next hops of `spine` into `cluster`: the spine's leaf
  /// neighbors belonging to the cluster (§2.4.3).
  [[nodiscard]] std::vector<DeviceId> spine_downlinks_into(
      DeviceId spine, ClusterId cluster) const;

  /// Expected spine next hops of regional-spine `regional` toward `cluster`.
  [[nodiscard]] std::vector<DeviceId> regional_downlinks_toward(
      DeviceId regional, ClusterId cluster) const;

  /// Regional spines with an expected link to some spine serving `cluster`.
  /// Used for cross-datacenter forwarding in region topologies.
  [[nodiscard]] const std::unordered_set<DeviceId>& regionals_serving_cluster(
      ClusterId cluster) const;

 private:
  const Topology* topology_;
  std::vector<PrefixFact> prefixes_;
  std::unordered_map<net::Prefix, std::size_t> prefix_index_;
  std::vector<std::unordered_set<DeviceId>> spines_by_cluster_;
  std::vector<std::unordered_set<DeviceId>> regionals_by_cluster_;
};

}  // namespace dcv::topo
