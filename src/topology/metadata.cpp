#include "topology/metadata.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace dcv::topo {

MetadataService::MetadataService(const Topology& topology)
    : topology_(&topology) {
  for (const Device& d : topology.devices()) {
    if (d.role != DeviceRole::kTor) continue;
    for (const net::Prefix& p : d.hosted_prefixes) {
      prefixes_.push_back(
          PrefixFact{.prefix = p, .tor = d.id, .cluster = d.cluster});
    }
  }
  std::sort(prefixes_.begin(), prefixes_.end(),
            [](const PrefixFact& a, const PrefixFact& b) {
              return a.prefix < b.prefix;
            });
  prefix_index_.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (!prefix_index_.emplace(prefixes_[i].prefix, i).second) {
      throw InvalidArgument("duplicate hosted prefix: " +
                            prefixes_[i].prefix.to_string());
    }
  }

  spines_by_cluster_.resize(topology.cluster_count());
  regionals_by_cluster_.resize(topology.cluster_count());
  for (std::size_t c = 0; c < topology.cluster_count(); ++c) {
    for (const DeviceId leaf :
         topology.leaves_in_cluster(static_cast<ClusterId>(c))) {
      for (const DeviceId spine :
           topology.neighbors_with_role(leaf, DeviceRole::kSpine)) {
        spines_by_cluster_[c].insert(spine);
      }
    }
    for (const DeviceId spine : spines_by_cluster_[c]) {
      for (const DeviceId regional : topology.neighbors_with_role(
               spine, DeviceRole::kRegionalSpine)) {
        regionals_by_cluster_[c].insert(regional);
      }
    }
  }
}

std::optional<PrefixFact> MetadataService::locate(
    const net::Prefix& prefix) const {
  const auto it = prefix_index_.find(prefix);
  if (it == prefix_index_.end()) return std::nullopt;
  return prefixes_[it->second];
}

std::vector<PrefixFact> MetadataService::prefixes_in_cluster(
    ClusterId cluster) const {
  std::vector<PrefixFact> out;
  for (const auto& fact : prefixes_) {
    if (fact.cluster == cluster) out.push_back(fact);
  }
  return out;
}

const std::unordered_set<DeviceId>& MetadataService::spines_serving_cluster(
    ClusterId cluster) const {
  if (cluster >= spines_by_cluster_.size()) {
    throw InvalidArgument("bad cluster id");
  }
  return spines_by_cluster_[cluster];
}

const std::unordered_set<DeviceId>& MetadataService::regionals_serving_cluster(
    ClusterId cluster) const {
  if (cluster >= regionals_by_cluster_.size()) {
    throw InvalidArgument("bad cluster id");
  }
  return regionals_by_cluster_[cluster];
}

std::vector<DeviceId> MetadataService::leaf_uplinks_toward(
    DeviceId leaf, ClusterId cluster) const {
  const auto& serving = spines_serving_cluster(cluster);
  std::vector<DeviceId> out;
  for (const DeviceId spine :
       topology_->neighbors_with_role(leaf, DeviceRole::kSpine)) {
    if (serving.contains(spine)) out.push_back(spine);
  }
  return out;
}

std::vector<DeviceId> MetadataService::spine_downlinks_into(
    DeviceId spine, ClusterId cluster) const {
  std::vector<DeviceId> out;
  for (const DeviceId leaf :
       topology_->neighbors_with_role(spine, DeviceRole::kLeaf)) {
    if (topology_->device(leaf).cluster == cluster) out.push_back(leaf);
  }
  return out;
}

std::vector<DeviceId> MetadataService::regional_downlinks_toward(
    DeviceId regional, ClusterId cluster) const {
  const auto& serving = spines_serving_cluster(cluster);
  std::vector<DeviceId> out;
  for (const DeviceId spine :
       topology_->neighbors_with_role(regional, DeviceRole::kSpine)) {
    if (serving.contains(spine)) out.push_back(spine);
  }
  return out;
}

}  // namespace dcv::topo
