#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "net/prefix.hpp"

namespace dcv::topo {

/// Dense index of a device within a Topology.
using DeviceId = std::uint32_t;

/// BGP autonomous system number.
using Asn = std::uint32_t;

/// Dense index of a cluster (a set of racks behind a common leaf layer).
using ClusterId = std::uint32_t;

/// Dense index of a datacenter within a region. Multiple datacenters can
/// share a regional-spine layer; private ASNs are reused across datacenters,
/// which is why regional spines strip them (§2.1).
using DatacenterId = std::uint32_t;

inline constexpr DeviceId kInvalidDevice =
    std::numeric_limits<DeviceId>::max();
inline constexpr ClusterId kNoCluster = std::numeric_limits<ClusterId>::max();
inline constexpr DatacenterId kNoDatacenter =
    std::numeric_limits<DatacenterId>::max();

/// The fixed role a device plays in the Clos hierarchy (§2.1). Roles drive
/// both route propagation behavior and contract generation: the paper's
/// central claim is that every device's forwarding intent is a function of
/// its role plus address-locality facts.
enum class DeviceRole : std::uint8_t {
  kTor,            // top-of-rack; hosts server VLAN prefixes
  kLeaf,           // cluster aggregation (T1)
  kSpine,          // datacenter aggregation (T2)
  kRegionalSpine,  // regional spine (RH); strips private ASNs, relays default
};

/// Number of DeviceRole values; sizes role-indexed tables (CSR adjacency).
inline constexpr std::size_t kDeviceRoleCount = 4;

[[nodiscard]] std::string_view to_string(DeviceRole role);
std::ostream& operator<<(std::ostream& os, DeviceRole role);

/// A network device. Value type owned by Topology.
struct Device {
  DeviceId id = kInvalidDevice;
  std::string name;
  DeviceRole role = DeviceRole::kTor;
  Asn asn = 0;
  /// Cluster membership for ToR and leaf devices; kNoCluster for spine and
  /// regional-spine devices, which serve the whole datacenter.
  ClusterId cluster = kNoCluster;
  /// Datacenter membership; kNoDatacenter for regional spines, which serve
  /// the whole region.
  DatacenterId datacenter = 0;
  /// VLAN prefixes hosted below this device; non-empty only for ToRs.
  std::vector<net::Prefix> hosted_prefixes;
};

}  // namespace dcv::topo
