#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace dcv::topo {

/// Parameters of a synthetic Clos datacenter in the style of §2.1 / Figure 1.
///
/// The spine layer is organized in *planes*: there are `leaves_per_cluster`
/// planes and leaf j of every cluster connects to all `spines_per_plane`
/// spines of plane j. This reproduces the structure of the paper's running
/// example (Figure 3: leaf A1 connects to spine D1 only, A2 to D2, ...) and
/// generalizes to wider fabrics. Fan-outs correspond to the paper's k, n,
/// m, p parameters.
struct ClosParams {
  std::uint32_t clusters = 2;
  std::uint32_t tors_per_cluster = 2;           // k
  std::uint32_t leaves_per_cluster = 4;         // m (== number of planes)
  std::uint32_t spines_per_plane = 1;           // n / m
  std::uint32_t regional_spines = 4;            // p
  std::uint32_t regional_links_per_spine = 2;   // uplinks per spine device
  std::uint32_t prefixes_per_tor = 1;
  int prefix_length = 24;

  // ASN scheme per §2.1: one ASN for all datacenter spines, one ASN per
  // cluster for its leaves, ToR ASNs unique within a cluster but reused
  // across clusters.
  Asn spine_asn = 65535;
  Asn leaf_asn_base = 65100;      // leaf ASN = base + cluster index
  Asn tor_asn_base = 64500;       // ToR ASN  = base + index within cluster
  Asn regional_asn_base = 63000;  // regional ASN = base + device index

  [[nodiscard]] std::uint32_t spine_count() const {
    return leaves_per_cluster * spines_per_plane;
  }
  [[nodiscard]] std::uint32_t device_count() const {
    return clusters * (tors_per_cluster + leaves_per_cluster) + spine_count() +
           regional_spines;
  }
};

/// Builds the synthetic datacenter. Prefixes are carved sequentially from
/// 10.0.0.0/8; ToR names are "T0-<cluster>-<i>", leaves "T1-<cluster>-<j>",
/// spines "T2-<plane>-<i>", regional spines "RH-<i>".
[[nodiscard]] Topology build_clos(const ClosParams& params);

/// Builds a *region*: `datacenters` identical datacenters sharing one
/// regional-spine layer. The private ASN scheme (ToR/leaf/spine ASNs) is
/// reused verbatim in every datacenter — the collision the paper's regional
/// spines resolve by stripping private ASNs from relayed AS-paths (§2.1).
/// Device names are prefixed "DC<d>-"; cluster ids are globally unique
/// across the region.
[[nodiscard]] Topology build_region(const ClosParams& params,
                                    std::uint32_t datacenters);

/// The exact scaled-down topology of the paper's Figure 3, with the paper's
/// device names (ToR1..ToR4, A1..A4, B1..B4, D1..D4, R1..R4) and one hosted
/// prefix per ToR (Prefix_A..Prefix_D as 10.0.<i>.0/24).
[[nodiscard]] Topology build_figure3();

/// Applies Figure 3's four link failures to a topology built by
/// build_figure3(): ToR1 loses its uplinks to A3 and A4, ToR2 loses its
/// uplinks to A1 and A2.
void apply_figure3_failures(Topology& topology);

}  // namespace dcv::topo
