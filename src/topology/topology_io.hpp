#pragma once

#include <string>
#include <string_view>

#include "topology/topology.hpp"

namespace dcv::topo {

/// Text serialization of a topology — the interchange format consumed by
/// the command-line tools, playing the role of the cloud-topology files of
/// the generator the paper points to for synthetic benchmarks (§2.6.3
/// [29]). Line-oriented:
///
///   # comment
///   device <name> <tor|leaf|spine|regional> <asn> [cluster=<n>] [dc=<n>]
///   link <device-name> <device-name> [down|shutdown]
///   prefix <tor-name> <cidr>
///
/// Devices must be declared before links/prefixes that reference them.
[[nodiscard]] std::string write_topology(const Topology& topology);

/// Parses the format produced by write_topology. Throws dcv::ParseError
/// with a line number on malformed input.
[[nodiscard]] Topology parse_topology(std::string_view text);

}  // namespace dcv::topo
