#include "topology/topology.hpp"

#include <algorithm>
#include <ostream>

#include "net/error.hpp"

namespace dcv::topo {

std::string_view to_string(DeviceRole role) {
  switch (role) {
    case DeviceRole::kTor:
      return "ToR";
    case DeviceRole::kLeaf:
      return "Leaf";
    case DeviceRole::kSpine:
      return "Spine";
    case DeviceRole::kRegionalSpine:
      return "RegionalSpine";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, DeviceRole role) {
  return os << to_string(role);
}

DeviceId Topology::add_device(std::string name, DeviceRole role, Asn asn,
                              ClusterId cluster, DatacenterId datacenter) {
  const DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{.id = id,
                            .name = std::move(name),
                            .role = role,
                            .asn = asn,
                            .cluster = cluster,
                            .datacenter = datacenter,
                            .hosted_prefixes = {}});
  incident_links_.emplace_back();
  if (cluster != kNoCluster) {
    cluster_count_ = std::max(cluster_count_, std::size_t{cluster} + 1);
  }
  ++epoch_;
  return id;
}

LinkId Topology::add_link(DeviceId a, DeviceId b) {
  if (a >= devices_.size() || b >= devices_.size() || a == b) {
    throw InvalidArgument("add_link: bad endpoints");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{.id = id, .a = a, .b = b});
  incident_links_[a].push_back(id);
  incident_links_[b].push_back(id);
  ++epoch_;
  return id;
}

void Topology::add_hosted_prefix(DeviceId tor, const net::Prefix& prefix) {
  if (tor >= devices_.size()) throw InvalidArgument("bad device id");
  devices_[tor].hosted_prefixes.push_back(prefix);
  ++epoch_;
}

const Device& Topology::device(DeviceId id) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return devices_[id];
}

const Link& Topology::link(LinkId id) const {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  return links_[id];
}

std::optional<DeviceId> Topology::find_device(std::string_view name) const {
  for (const auto& d : devices_) {
    if (d.name == name) return d.id;
  }
  return std::nullopt;
}

std::span<const LinkId> Topology::links_of(DeviceId id) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return incident_links_[id];
}

std::vector<DeviceId> Topology::neighbors(DeviceId id) const {
  std::vector<DeviceId> out;
  for (const LinkId lid : links_of(id)) out.push_back(links_[lid].other(id));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DeviceId> Topology::neighbors_with_role(DeviceId id,
                                                    DeviceRole role) const {
  std::vector<DeviceId> out;
  for (const LinkId lid : links_of(id)) {
    const DeviceId n = links_[lid].other(id);
    if (devices_[n].role == role) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DeviceId> Topology::usable_neighbors(DeviceId id) const {
  std::vector<DeviceId> out;
  for (const LinkId lid : links_of(id)) {
    if (links_[lid].usable()) out.push_back(links_[lid].other(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<LinkId> Topology::find_link(DeviceId a, DeviceId b) const {
  for (const LinkId lid : links_of(a)) {
    if (links_[lid].other(a) == b) return lid;
  }
  return std::nullopt;
}

std::vector<DeviceId> Topology::devices_with_role(DeviceRole role) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.role == role) out.push_back(d.id);
  }
  return out;
}

std::vector<DeviceId> Topology::tors_in_cluster(ClusterId cluster) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.role == DeviceRole::kTor && d.cluster == cluster) out.push_back(d.id);
  }
  return out;
}

std::vector<DeviceId> Topology::leaves_in_cluster(ClusterId cluster) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.role == DeviceRole::kLeaf && d.cluster == cluster)
      out.push_back(d.id);
  }
  return out;
}

void Topology::set_link_state(LinkId id, LinkState state) {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  links_[id].link_state = state;
  // A physically-down link cannot keep a BGP session established; an
  // admin-shut session stays admin-shut regardless of link state.
  if (state == LinkState::kDown &&
      links_[id].bgp_state == BgpSessionState::kEstablished) {
    links_[id].bgp_state = BgpSessionState::kDown;
  }
  if (state == LinkState::kUp &&
      links_[id].bgp_state == BgpSessionState::kDown) {
    links_[id].bgp_state = BgpSessionState::kEstablished;
  }
}

void Topology::set_bgp_state(LinkId id, BgpSessionState state) {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  links_[id].bgp_state = state;
}

void Topology::set_asn(DeviceId id, Asn asn) {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  devices_[id].asn = asn;
  ++epoch_;
}

void Topology::shut_all_sessions_of(DeviceId id) {
  for (const LinkId lid : links_of(id)) {
    links_[lid].bgp_state = BgpSessionState::kDown;
  }
}

void Topology::clear_faults() {
  for (auto& l : links_) {
    l.link_state = LinkState::kUp;
    l.bgp_state = BgpSessionState::kEstablished;
  }
}

}  // namespace dcv::topo
