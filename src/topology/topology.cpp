#include "topology/topology.hpp"

#include <algorithm>
#include <ostream>

#include "net/error.hpp"

namespace dcv::topo {

std::string_view to_string(DeviceRole role) {
  switch (role) {
    case DeviceRole::kTor:
      return "ToR";
    case DeviceRole::kLeaf:
      return "Leaf";
    case DeviceRole::kSpine:
      return "Spine";
    case DeviceRole::kRegionalSpine:
      return "RegionalSpine";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, DeviceRole role) {
  return os << to_string(role);
}

Topology::Topology(const Topology& other)
    : devices_(other.devices_),
      links_(other.links_),
      incident_links_(other.incident_links_),
      cluster_count_(other.cluster_count_),
      epoch_(other.epoch_) {}

Topology& Topology::operator=(const Topology& other) {
  if (this == &other) return *this;
  devices_ = other.devices_;
  links_ = other.links_;
  incident_links_ = other.incident_links_;
  cluster_count_ = other.cluster_count_;
  epoch_ = other.epoch_;
  adjacency_epoch_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  return *this;
}

Topology::Topology(Topology&& other) noexcept
    : devices_(std::move(other.devices_)),
      links_(std::move(other.links_)),
      incident_links_(std::move(other.incident_links_)),
      cluster_count_(other.cluster_count_),
      epoch_(other.epoch_) {}

Topology& Topology::operator=(Topology&& other) noexcept {
  if (this == &other) return *this;
  devices_ = std::move(other.devices_);
  links_ = std::move(other.links_);
  incident_links_ = std::move(other.incident_links_);
  cluster_count_ = other.cluster_count_;
  epoch_ = other.epoch_;
  adjacency_epoch_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  return *this;
}

DeviceId Topology::add_device(std::string name, DeviceRole role, Asn asn,
                              ClusterId cluster, DatacenterId datacenter) {
  const DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{.id = id,
                            .name = std::move(name),
                            .role = role,
                            .asn = asn,
                            .cluster = cluster,
                            .datacenter = datacenter,
                            .hosted_prefixes = {}});
  incident_links_.emplace_back();
  if (cluster != kNoCluster) {
    cluster_count_ = std::max(cluster_count_, std::size_t{cluster} + 1);
  }
  ++epoch_;
  return id;
}

LinkId Topology::add_link(DeviceId a, DeviceId b) {
  if (a >= devices_.size() || b >= devices_.size() || a == b) {
    throw InvalidArgument("add_link: bad endpoints");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{.id = id, .a = a, .b = b});
  incident_links_[a].push_back(id);
  incident_links_[b].push_back(id);
  ++epoch_;
  return id;
}

void Topology::add_hosted_prefix(DeviceId tor, const net::Prefix& prefix) {
  if (tor >= devices_.size()) throw InvalidArgument("bad device id");
  devices_[tor].hosted_prefixes.push_back(prefix);
  ++epoch_;
}

const Device& Topology::device(DeviceId id) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return devices_[id];
}

const Link& Topology::link(LinkId id) const {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  return links_[id];
}

std::optional<DeviceId> Topology::find_device(std::string_view name) const {
  for (const auto& d : devices_) {
    if (d.name == name) return d.id;
  }
  return std::nullopt;
}

std::span<const LinkId> Topology::links_of(DeviceId id) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return incident_links_[id];
}

const Topology::AdjacencyCache& Topology::adjacency() const {
  if (adjacency_epoch_.load(std::memory_order_acquire) == epoch_) {
    return adjacency_cache_;
  }
  const std::lock_guard lock(adjacency_mutex_);
  if (adjacency_epoch_.load(std::memory_order_relaxed) == epoch_) {
    return adjacency_cache_;  // another reader rebuilt while we waited
  }
  AdjacencyCache& cache = adjacency_cache_;
  const std::size_t n = devices_.size();

  // All-neighbor CSR: each row is the device's link peers, sorted.
  cache.all.offsets.assign(n + 1, 0);
  cache.all.values.clear();
  cache.all.values.reserve(2 * links_.size());
  for (std::size_t i = 0; i < n; ++i) {
    cache.all.offsets[i] = static_cast<std::uint32_t>(cache.all.values.size());
    for (const LinkId lid : incident_links_[i]) {
      cache.all.values.push_back(links_[lid].other(static_cast<DeviceId>(i)));
    }
    std::sort(cache.all.values.begin() + cache.all.offsets[i],
              cache.all.values.end());
  }
  cache.all.offsets[n] = static_cast<std::uint32_t>(cache.all.values.size());

  // Per-role CSRs and member lists, derived from the sorted all-rows so the
  // role slices stay sorted without re-sorting.
  for (std::size_t r = 0; r < kDeviceRoleCount; ++r) {
    Csr& csr = cache.by_role[r];
    csr.offsets.assign(n + 1, 0);
    csr.values.clear();
    cache.role_members[r].clear();
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < kDeviceRoleCount; ++r) {
      cache.by_role[r].offsets[i] =
          static_cast<std::uint32_t>(cache.by_role[r].values.size());
    }
    for (const DeviceId peer : cache.all.row(static_cast<DeviceId>(i))) {
      const std::size_t r = static_cast<std::size_t>(devices_[peer].role);
      cache.by_role[r].values.push_back(peer);
    }
    const std::size_t own = static_cast<std::size_t>(devices_[i].role);
    cache.role_members[own].push_back(static_cast<DeviceId>(i));
  }
  for (std::size_t r = 0; r < kDeviceRoleCount; ++r) {
    cache.by_role[r].offsets[n] =
        static_cast<std::uint32_t>(cache.by_role[r].values.size());
  }

  adjacency_epoch_.store(epoch_, std::memory_order_release);
  return cache;
}

std::span<const DeviceId> Topology::neighbors(DeviceId id) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return adjacency().all.row(id);
}

std::span<const DeviceId> Topology::neighbors_with_role(DeviceId id,
                                                        DeviceRole role) const {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  return adjacency().by_role[static_cast<std::size_t>(role)].row(id);
}

std::vector<DeviceId> Topology::usable_neighbors(DeviceId id) const {
  std::vector<DeviceId> out;
  for (const LinkId lid : links_of(id)) {
    if (links_[lid].usable()) out.push_back(links_[lid].other(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<LinkId> Topology::find_link(DeviceId a, DeviceId b) const {
  for (const LinkId lid : links_of(a)) {
    if (links_[lid].other(a) == b) return lid;
  }
  return std::nullopt;
}

std::span<const DeviceId> Topology::devices_with_role(DeviceRole role) const {
  return adjacency().role_members[static_cast<std::size_t>(role)];
}

std::vector<DeviceId> Topology::tors_in_cluster(ClusterId cluster) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.role == DeviceRole::kTor && d.cluster == cluster) out.push_back(d.id);
  }
  return out;
}

std::vector<DeviceId> Topology::leaves_in_cluster(ClusterId cluster) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.role == DeviceRole::kLeaf && d.cluster == cluster)
      out.push_back(d.id);
  }
  return out;
}

void Topology::set_link_state(LinkId id, LinkState state) {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  links_[id].link_state = state;
  // A physically-down link cannot keep a BGP session established; an
  // admin-shut session stays admin-shut regardless of link state.
  if (state == LinkState::kDown &&
      links_[id].bgp_state == BgpSessionState::kEstablished) {
    links_[id].bgp_state = BgpSessionState::kDown;
  }
  if (state == LinkState::kUp &&
      links_[id].bgp_state == BgpSessionState::kDown) {
    links_[id].bgp_state = BgpSessionState::kEstablished;
  }
}

void Topology::set_bgp_state(LinkId id, BgpSessionState state) {
  if (id >= links_.size()) throw InvalidArgument("bad link id");
  links_[id].bgp_state = state;
}

void Topology::set_asn(DeviceId id, Asn asn) {
  if (id >= devices_.size()) throw InvalidArgument("bad device id");
  devices_[id].asn = asn;
  ++epoch_;
}

void Topology::shut_all_sessions_of(DeviceId id) {
  for (const LinkId lid : links_of(id)) {
    links_[lid].bgp_state = BgpSessionState::kDown;
  }
}

void Topology::clear_faults() {
  for (auto& l : links_) {
    l.link_state = LinkState::kUp;
    l.bgp_state = BgpSessionState::kEstablished;
  }
}

}  // namespace dcv::topo
