#include "topology/faults.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_set>

#include "net/error.hpp"

namespace dcv::topo {

std::string_view to_string(DeviceFaultKind kind) {
  switch (kind) {
    case DeviceFaultKind::kRibFibInconsistency:
      return "rib-fib-inconsistency";
    case DeviceFaultKind::kLayer2InterfaceBug:
      return "layer2-interface-bug";
    case DeviceFaultKind::kEcmpSingleNextHop:
      return "ecmp-single-next-hop";
    case DeviceFaultKind::kRejectDefaultRoute:
      return "reject-default-route";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, DeviceFaultKind kind) {
  return os << to_string(kind);
}

std::string FaultRecord::to_string(const Topology& topology) const {
  switch (kind) {
    case Kind::kLinkDown: {
      const Link& l = topology.link(link);
      return "link-down " + topology.device(l.a).name + "<->" +
             topology.device(l.b).name;
    }
    case Kind::kBgpAdminShutdown: {
      const Link& l = topology.link(link);
      return "bgp-admin-shutdown " + topology.device(l.a).name + "<->" +
             topology.device(l.b).name;
    }
    case Kind::kDeviceFault:
      return std::string(dcv::topo::to_string(device_fault)) + " at " +
             topology.device(device).name;
  }
  return "?";
}

void FaultInjector::link_down(LinkId link) {
  topology_->set_link_state(link, LinkState::kDown);
  records_.push_back(FaultRecord{.kind = FaultRecord::Kind::kLinkDown,
                                 .link = link});
}

void FaultInjector::bgp_admin_shutdown(LinkId link) {
  topology_->set_bgp_state(link, BgpSessionState::kAdminShutdown);
  records_.push_back(FaultRecord{.kind = FaultRecord::Kind::kBgpAdminShutdown,
                                 .link = link});
}

void FaultInjector::device_fault(DeviceId device, DeviceFaultKind kind) {
  if (kind == DeviceFaultKind::kLayer2InterfaceBug) {
    // No layer-3 interfaces means no BGP session can establish on any link.
    topology_->shut_all_sessions_of(device);
  }
  records_.push_back(FaultRecord{.kind = FaultRecord::Kind::kDeviceFault,
                                 .device = device,
                                 .device_fault = kind});
}

void FaultInjector::random_link_failures(std::size_t count) {
  if (topology_->link_count() == 0) return;
  std::uniform_int_distribution<LinkId> pick(
      0, static_cast<LinkId>(topology_->link_count() - 1));
  std::unordered_set<LinkId> chosen;
  while (chosen.size() < std::min(count, topology_->link_count())) {
    const LinkId link = pick(rng_);
    if (chosen.insert(link).second) link_down(link);
  }
}

void FaultInjector::random_bgp_shutdowns(std::size_t count) {
  if (topology_->link_count() == 0) return;
  std::uniform_int_distribution<LinkId> pick(
      0, static_cast<LinkId>(topology_->link_count() - 1));
  std::unordered_set<LinkId> chosen;
  while (chosen.size() < std::min(count, topology_->link_count())) {
    const LinkId link = pick(rng_);
    if (chosen.insert(link).second) bgp_admin_shutdown(link);
  }
}

void FaultInjector::random_device_faults(std::size_t count, DeviceRole role,
                                         DeviceFaultKind kind) {
  const auto candidates = topology_->devices_with_role(role);
  if (candidates.empty()) return;
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  std::unordered_set<DeviceId> chosen;
  while (chosen.size() < std::min(count, candidates.size())) {
    const DeviceId device = candidates[pick(rng_)];
    if (chosen.insert(device).second) device_fault(device, kind);
  }
}

bool FaultInjector::device_has_fault(DeviceId device,
                                     DeviceFaultKind kind) const {
  return std::any_of(records_.begin(), records_.end(),
                     [&](const FaultRecord& r) {
                       return r.kind == FaultRecord::Kind::kDeviceFault &&
                              r.device == device && r.device_fault == kind;
                     });
}

std::vector<DeviceFaultKind> FaultInjector::faults_of(DeviceId device) const {
  std::vector<DeviceFaultKind> out;
  for (const auto& r : records_) {
    if (r.kind == FaultRecord::Kind::kDeviceFault && r.device == device) {
      out.push_back(r.device_fault);
    }
  }
  return out;
}

void FaultInjector::repair(std::size_t record_index) {
  if (record_index >= records_.size()) {
    throw InvalidArgument("repair: bad record index");
  }
  records_.erase(records_.begin() +
                 static_cast<std::ptrdiff_t>(record_index));
  reapply();
}

void FaultInjector::reapply() {
  topology_->clear_faults();
  for (const FaultRecord& r : records_) {
    switch (r.kind) {
      case FaultRecord::Kind::kLinkDown:
        topology_->set_link_state(r.link, LinkState::kDown);
        break;
      case FaultRecord::Kind::kBgpAdminShutdown:
        topology_->set_bgp_state(r.link, BgpSessionState::kAdminShutdown);
        break;
      case FaultRecord::Kind::kDeviceFault:
        if (r.device_fault == DeviceFaultKind::kLayer2InterfaceBug) {
          topology_->shut_all_sessions_of(r.device);
        }
        break;
    }
  }
}

void FaultInjector::reset() {
  records_.clear();
  topology_->clear_faults();
}

}  // namespace dcv::topo
