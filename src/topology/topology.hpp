#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "topology/device.hpp"
#include "topology/link.hpp"

namespace dcv::topo {

/// A datacenter network graph: devices, point-to-point links, adjacency.
///
/// The topology is the *expected* architecture — the source of intent.
/// Link and BGP-session state can be mutated (fault injection, operational
/// drift) but devices and links are never removed: contracts are generated
/// from the expected topology and ignore current state (§2.4).
class Topology {
 public:
  Topology() = default;

  /// Adds a device and returns its id. Name must be unique.
  DeviceId add_device(std::string name, DeviceRole role, Asn asn,
                      ClusterId cluster = kNoCluster,
                      DatacenterId datacenter = 0);

  /// Adds an undirected link between two existing devices.
  LinkId add_link(DeviceId a, DeviceId b);

  /// Registers a hosted (VLAN) prefix on a ToR device.
  void add_hosted_prefix(DeviceId tor, const net::Prefix& prefix);

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Monotone version counter of the *expected* topology: bumped by every
  /// mutation that changes the device/link/prefix set or expected
  /// configuration (add_device, add_link, add_hosted_prefix, set_asn) and
  /// never by link/session *state* changes — contracts derive from expected
  /// topology only (§2.4), so contract plans keyed by this epoch stay valid
  /// across fault injection and operational state drift.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] const Device& device(DeviceId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Looks a device up by its unique name; nullopt if absent.
  [[nodiscard]] std::optional<DeviceId> find_device(
      std::string_view name) const;

  /// Links incident to a device (regardless of state).
  [[nodiscard]] std::span<const LinkId> links_of(DeviceId id) const;

  /// All expected neighbors of a device (regardless of link state).
  [[nodiscard]] std::vector<DeviceId> neighbors(DeviceId id) const;

  /// Expected neighbors restricted to a given role; e.g. a ToR's leaves, a
  /// leaf's spines. This is what contract generation consumes.
  [[nodiscard]] std::vector<DeviceId> neighbors_with_role(
      DeviceId id, DeviceRole role) const;

  /// Neighbors reachable over currently-usable links (live adjacency).
  [[nodiscard]] std::vector<DeviceId> usable_neighbors(DeviceId id) const;

  /// The link between two devices, if one exists.
  [[nodiscard]] std::optional<LinkId> find_link(DeviceId a, DeviceId b) const;

  /// Devices of a role, in id order.
  [[nodiscard]] std::vector<DeviceId> devices_with_role(DeviceRole role) const;

  /// ToR devices belonging to a cluster, in id order.
  [[nodiscard]] std::vector<DeviceId> tors_in_cluster(ClusterId cluster) const;

  /// Leaf devices belonging to a cluster, in id order.
  [[nodiscard]] std::vector<DeviceId> leaves_in_cluster(
      ClusterId cluster) const;

  [[nodiscard]] std::size_t cluster_count() const { return cluster_count_; }

  // -- Mutable state (fault injection / operational drift) -----------------

  void set_link_state(LinkId id, LinkState state);
  void set_bgp_state(LinkId id, BgpSessionState state);

  /// Reassigns a device's ASN. Models configuration drift such as the
  /// migration misconfiguration of §2.6.2 where decommissioned and new leaf
  /// devices were configured with the same ASN.
  void set_asn(DeviceId id, Asn asn);

  /// Takes every link of a device down at the BGP level, modeling device
  /// faults such as the layer-2 interface bug in §2.6.2 (Software Bug 2).
  void shut_all_sessions_of(DeviceId id);

  /// Restores every link and session to healthy state.
  void clear_faults();

 private:
  std::vector<Device> devices_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_links_;
  std::size_t cluster_count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace dcv::topo
