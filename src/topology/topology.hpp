#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "topology/device.hpp"
#include "topology/link.hpp"

namespace dcv::topo {

/// A datacenter network graph: devices, point-to-point links, adjacency.
///
/// The topology is the *expected* architecture — the source of intent.
/// Link and BGP-session state can be mutated (fault injection, operational
/// drift) but devices and links are never removed: contracts are generated
/// from the expected topology and ignore current state (§2.4).
class Topology {
 public:
  Topology() = default;
  // The adjacency cache (mutex + atomic epoch) is not copyable; copies and
  // moves transfer the graph and start with a cold cache, rebuilt on first
  // neighbors*() call.
  Topology(const Topology& other);
  Topology& operator=(const Topology& other);
  Topology(Topology&& other) noexcept;
  Topology& operator=(Topology&& other) noexcept;

  /// Adds a device and returns its id. Name must be unique.
  DeviceId add_device(std::string name, DeviceRole role, Asn asn,
                      ClusterId cluster = kNoCluster,
                      DatacenterId datacenter = 0);

  /// Adds an undirected link between two existing devices.
  LinkId add_link(DeviceId a, DeviceId b);

  /// Registers a hosted (VLAN) prefix on a ToR device.
  void add_hosted_prefix(DeviceId tor, const net::Prefix& prefix);

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Monotone version counter of the *expected* topology: bumped by every
  /// mutation that changes the device/link/prefix set or expected
  /// configuration (add_device, add_link, add_hosted_prefix, set_asn) and
  /// never by link/session *state* changes — contracts derive from expected
  /// topology only (§2.4), so contract plans keyed by this epoch stay valid
  /// across fault injection and operational state drift.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] const Device& device(DeviceId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Looks a device up by its unique name; nullopt if absent.
  [[nodiscard]] std::optional<DeviceId> find_device(
      std::string_view name) const;

  /// Links incident to a device (regardless of state).
  [[nodiscard]] std::span<const LinkId> links_of(DeviceId id) const;

  /// All expected neighbors of a device (regardless of link state), sorted
  /// by id. The span views the epoch-keyed CSR adjacency cache: no per-call
  /// allocation, valid until the next expected-topology mutation. The cache
  /// rebuilds lazily on first use after a mutation; concurrent readers are
  /// safe as long as mutation is externally synchronized with reads (the
  /// same contract the mutators already carry).
  [[nodiscard]] std::span<const DeviceId> neighbors(DeviceId id) const;

  /// Expected neighbors restricted to a given role; e.g. a ToR's leaves, a
  /// leaf's spines. This is what contract generation consumes. Sorted;
  /// same lifetime contract as neighbors().
  [[nodiscard]] std::span<const DeviceId> neighbors_with_role(
      DeviceId id, DeviceRole role) const;

  /// Neighbors reachable over currently-usable links (live adjacency).
  /// Allocates: depends on link *state*, which the epoch-keyed cache
  /// deliberately ignores.
  [[nodiscard]] std::vector<DeviceId> usable_neighbors(DeviceId id) const;

  /// The link between two devices, if one exists.
  [[nodiscard]] std::optional<LinkId> find_link(DeviceId a, DeviceId b) const;

  /// Devices of a role, in id order. Same lifetime contract as neighbors().
  [[nodiscard]] std::span<const DeviceId> devices_with_role(
      DeviceRole role) const;

  /// ToR devices belonging to a cluster, in id order.
  [[nodiscard]] std::vector<DeviceId> tors_in_cluster(ClusterId cluster) const;

  /// Leaf devices belonging to a cluster, in id order.
  [[nodiscard]] std::vector<DeviceId> leaves_in_cluster(
      ClusterId cluster) const;

  [[nodiscard]] std::size_t cluster_count() const { return cluster_count_; }

  // -- Mutable state (fault injection / operational drift) -----------------

  void set_link_state(LinkId id, LinkState state);
  void set_bgp_state(LinkId id, BgpSessionState state);

  /// Reassigns a device's ASN. Models configuration drift such as the
  /// migration misconfiguration of §2.6.2 where decommissioned and new leaf
  /// devices were configured with the same ASN.
  void set_asn(DeviceId id, Asn asn);

  /// Takes every link of a device down at the BGP level, modeling device
  /// faults such as the layer-2 interface bug in §2.6.2 (Software Bug 2).
  void shut_all_sessions_of(DeviceId id);

  /// Restores every link and session to healthy state.
  void clear_faults();

 private:
  /// One compressed-sparse-row table: row(i) is a sorted slice of values.
  struct Csr {
    std::vector<std::uint32_t> offsets;  // device_count + 1
    std::vector<DeviceId> values;

    [[nodiscard]] std::span<const DeviceId> row(DeviceId id) const {
      return {values.data() + offsets[id],
              static_cast<std::size_t>(offsets[id + 1] - offsets[id])};
    }
  };

  /// Precomputed adjacency slices for one expected-topology epoch: the
  /// all-neighbor CSR, one CSR per role, and the id-ordered member list of
  /// each role. ~2 + 2·roles words per device plus one word per (directed)
  /// edge per table — and neighbors*() stop allocating per call.
  struct AdjacencyCache {
    Csr all;
    std::array<Csr, kDeviceRoleCount> by_role;
    std::array<std::vector<DeviceId>, kDeviceRoleCount> role_members;
  };

  /// The cache for the current epoch, building it first if stale. Hot path
  /// is one relaxed-epoch acquire load.
  const AdjacencyCache& adjacency() const;

  std::vector<Device> devices_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_links_;
  std::size_t cluster_count_ = 0;
  std::uint64_t epoch_ = 0;

  mutable std::mutex adjacency_mutex_;
  mutable AdjacencyCache adjacency_cache_;
  /// Epoch adjacency_cache_ was built for; ~0 = never built (epoch_ starts
  /// at 0 and only increments, so ~0 is unreachable).
  mutable std::atomic<std::uint64_t> adjacency_epoch_{~std::uint64_t{0}};
};

}  // namespace dcv::topo
