#include "topology/clos_builder.hpp"

#include <string>
#include <vector>

#include "net/error.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dcv::topo {

namespace {

void validate(const ClosParams& p) {
  if (p.clusters == 0 || p.tors_per_cluster == 0 ||
      p.leaves_per_cluster == 0 || p.spines_per_plane == 0 ||
      p.regional_spines == 0) {
    throw InvalidArgument("build_clos: all layer sizes must be positive");
  }
  if (p.regional_links_per_spine == 0 ||
      p.regional_links_per_spine > p.regional_spines) {
    throw InvalidArgument("build_clos: bad regional_links_per_spine");
  }
  if (p.prefix_length < 8 || p.prefix_length > 32) {
    throw InvalidArgument("build_clos: prefix_length must be in [8, 32]");
  }
}

/// Adds one datacenter (spine planes + clusters) to `topo`, wired into the
/// given regional spines. Cluster ids start at `first_cluster`; hosted
/// prefixes are carved from `next_prefix_base` onward.
void add_datacenter(Topology& topo, const ClosParams& p,
                    DatacenterId datacenter, const std::string& name_prefix,
                    const std::vector<DeviceId>& regionals,
                    ClusterId first_cluster,
                    std::uint64_t& next_prefix_base) {
  const std::uint64_t prefix_stride = std::uint64_t{1}
                                      << (32 - p.prefix_length);
  const std::uint64_t prefix_space_end =
      net::Ipv4Address::from_octets(11, 0, 0, 0).value();

  // Datacenter spines, organized in planes; plane j serves leaf j of every
  // cluster.
  std::vector<std::vector<DeviceId>> spine_planes(p.leaves_per_cluster);
  std::uint32_t global_spine = 0;
  for (std::uint32_t plane = 0; plane < p.leaves_per_cluster; ++plane) {
    for (std::uint32_t i = 0; i < p.spines_per_plane; ++i, ++global_spine) {
      const DeviceId spine = topo.add_device(
          name_prefix + "T2-" + std::to_string(plane) + "-" +
              std::to_string(i),
          DeviceRole::kSpine, p.spine_asn, kNoCluster, datacenter);
      spine_planes[plane].push_back(spine);
      // Spread each spine's uplinks across the regional layer so that,
      // collectively, the spine layer reaches every regional spine. With
      // p=4 regionals and 2 uplinks this reproduces Figure 3 (D1 -> {R1,
      // R3}).
      const std::uint32_t step = std::max<std::uint32_t>(
          1, p.regional_spines / p.regional_links_per_spine);
      for (std::uint32_t k = 0; k < p.regional_links_per_spine; ++k) {
        const std::uint32_t r = (global_spine + k * step) % p.regional_spines;
        topo.add_link(spine, regionals[r]);
      }
    }
  }

  for (std::uint32_t c = 0; c < p.clusters; ++c) {
    const ClusterId cluster = first_cluster + c;
    std::vector<DeviceId> leaves;
    leaves.reserve(p.leaves_per_cluster);
    for (std::uint32_t j = 0; j < p.leaves_per_cluster; ++j) {
      const DeviceId leaf = topo.add_device(
          name_prefix + "T1-" + std::to_string(cluster) + "-" +
              std::to_string(j),
          DeviceRole::kLeaf, p.leaf_asn_base + c, cluster, datacenter);
      leaves.push_back(leaf);
      for (const DeviceId spine : spine_planes[j]) topo.add_link(leaf, spine);
    }
    for (std::uint32_t t = 0; t < p.tors_per_cluster; ++t) {
      const DeviceId tor = topo.add_device(
          name_prefix + "T0-" + std::to_string(cluster) + "-" +
              std::to_string(t),
          DeviceRole::kTor, p.tor_asn_base + t, cluster, datacenter);
      for (const DeviceId leaf : leaves) topo.add_link(tor, leaf);
      for (std::uint32_t q = 0; q < p.prefixes_per_tor; ++q) {
        if (next_prefix_base + prefix_stride > prefix_space_end) {
          throw InvalidArgument(
              "build_clos: prefix space 10.0.0.0/8 exhausted; use a longer "
              "prefix_length or fewer ToRs");
        }
        topo.add_hosted_prefix(
            tor, net::Prefix(net::Ipv4Address(
                                 static_cast<std::uint32_t>(next_prefix_base)),
                             p.prefix_length));
        next_prefix_base += prefix_stride;
      }
    }
  }
}

std::vector<DeviceId> add_regionals(Topology& topo, const ClosParams& p) {
  std::vector<DeviceId> regionals;
  regionals.reserve(p.regional_spines);
  for (std::uint32_t i = 0; i < p.regional_spines; ++i) {
    regionals.push_back(
        topo.add_device("RH-" + std::to_string(i), DeviceRole::kRegionalSpine,
                        p.regional_asn_base + i, kNoCluster, kNoDatacenter));
  }
  return regionals;
}

}  // namespace

Topology build_clos(const ClosParams& p) {
  validate(p);
  Topology topo;
  const auto regionals = add_regionals(topo, p);
  std::uint64_t next_prefix_base =
      net::Ipv4Address::from_octets(10, 0, 0, 0).value();
  add_datacenter(topo, p, /*datacenter=*/0, /*name_prefix=*/"", regionals,
                 /*first_cluster=*/0, next_prefix_base);
  return topo;
}

Topology build_region(const ClosParams& p, std::uint32_t datacenters) {
  validate(p);
  if (datacenters == 0) {
    throw InvalidArgument("build_region: need at least one datacenter");
  }
  Topology topo;
  const auto regionals = add_regionals(topo, p);
  std::uint64_t next_prefix_base =
      net::Ipv4Address::from_octets(10, 0, 0, 0).value();
  for (std::uint32_t d = 0; d < datacenters; ++d) {
    add_datacenter(topo, p, d, "DC" + std::to_string(d) + "-", regionals,
                   /*first_cluster=*/d * p.clusters, next_prefix_base);
  }
  return topo;
}

Topology build_figure3() {
  Topology topo;

  // Regional spines R1..R4.
  std::vector<DeviceId> r;
  for (int i = 1; i <= 4; ++i) {
    r.push_back(topo.add_device("R" + std::to_string(i),
                                DeviceRole::kRegionalSpine, 63000 + i,
                                kNoCluster, kNoDatacenter));
  }
  // Datacenter spines D1..D4; D_i connects to regionals {R_i, R_{i+2}}
  // (cyclically), as in Figure 3.
  std::vector<DeviceId> d;
  for (int i = 1; i <= 4; ++i) {
    const DeviceId spine =
        topo.add_device("D" + std::to_string(i), DeviceRole::kSpine, 65535);
    d.push_back(spine);
    topo.add_link(spine, r[(i - 1) % 4]);
    topo.add_link(spine, r[(i + 1) % 4]);
  }
  // Cluster A: leaves A1..A4 (leaf i <-> spine D_i), then cluster B.
  std::vector<DeviceId> a;
  for (int i = 1; i <= 4; ++i) {
    const DeviceId leaf =
        topo.add_device("A" + std::to_string(i), DeviceRole::kLeaf, 65100, 0);
    a.push_back(leaf);
    topo.add_link(leaf, d[i - 1]);
  }
  std::vector<DeviceId> b;
  for (int i = 1; i <= 4; ++i) {
    const DeviceId leaf =
        topo.add_device("B" + std::to_string(i), DeviceRole::kLeaf, 65101, 1);
    b.push_back(leaf);
    topo.add_link(leaf, d[i - 1]);
  }
  const char* tor_names[] = {"ToR1", "ToR2", "ToR3", "ToR4"};
  for (int i = 0; i < 4; ++i) {
    const ClusterId cluster = i < 2 ? 0 : 1;
    const DeviceId tor = topo.add_device(tor_names[i], DeviceRole::kTor,
                                         64500 + (i % 2), cluster);
    const auto& leaves = cluster == 0 ? a : b;
    for (const DeviceId leaf : leaves) topo.add_link(tor, leaf);
    // Prefix_A..Prefix_D as 10.0.<i>.0/24.
    topo.add_hosted_prefix(
        tor, net::Prefix(net::Ipv4Address::from_octets(
                             10, 0, static_cast<std::uint8_t>(i), 0),
                         24));
  }
  return topo;
}

void apply_figure3_failures(Topology& topology) {
  const auto fail = [&](std::string_view tor, std::string_view leaf) {
    const auto t = topology.find_device(tor);
    const auto l = topology.find_device(leaf);
    if (!t || !l) throw InvalidArgument("apply_figure3_failures: bad names");
    const auto link = topology.find_link(*t, *l);
    if (!link) throw InvalidArgument("apply_figure3_failures: no such link");
    topology.set_link_state(*link, LinkState::kDown);
  };
  fail("ToR1", "A3");
  fail("ToR1", "A4");
  fail("ToR2", "A1");
  fail("ToR2", "A2");
}

}  // namespace dcv::topo
