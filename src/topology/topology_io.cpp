#include "topology/topology_io.hpp"

#include <charconv>
#include <sstream>

#include "net/error.hpp"
#include "net/prefix.hpp"

namespace dcv::topo {

namespace {

std::string_view role_keyword(DeviceRole role) {
  switch (role) {
    case DeviceRole::kTor:
      return "tor";
    case DeviceRole::kLeaf:
      return "leaf";
    case DeviceRole::kSpine:
      return "spine";
    case DeviceRole::kRegionalSpine:
      return "regional";
  }
  return "?";
}

DeviceRole parse_role(std::string_view token, int line) {
  if (token == "tor") return DeviceRole::kTor;
  if (token == "leaf") return DeviceRole::kLeaf;
  if (token == "spine") return DeviceRole::kSpine;
  if (token == "regional") return DeviceRole::kRegionalSpine;
  throw ParseError("topology line " + std::to_string(line) +
                   ": unknown role '" + std::string(token) + "'");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const auto token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

std::uint32_t parse_number(std::string_view token, int line,
                           const char* what) {
  std::uint32_t value = 0;
  const auto [next, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || next != token.data() + token.size()) {
    throw ParseError("topology line " + std::to_string(line) + ": bad " +
                     what + " '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string write_topology(const Topology& topology) {
  std::ostringstream out;
  out << "# dcvalidate topology: " << topology.device_count()
      << " devices, " << topology.link_count() << " links\n";
  for (const Device& d : topology.devices()) {
    out << "device " << d.name << " " << role_keyword(d.role) << " "
        << d.asn;
    if (d.cluster != kNoCluster) out << " cluster=" << d.cluster;
    if (d.datacenter != kNoDatacenter && d.datacenter != 0) {
      out << " dc=" << d.datacenter;
    }
    out << "\n";
  }
  for (const Link& l : topology.links()) {
    out << "link " << topology.device(l.a).name << " "
        << topology.device(l.b).name;
    if (l.link_state == LinkState::kDown) {
      out << " down";
    } else if (l.bgp_state == BgpSessionState::kAdminShutdown) {
      out << " shutdown";
    }
    out << "\n";
  }
  for (const Device& d : topology.devices()) {
    for (const net::Prefix& p : d.hosted_prefixes) {
      out << "prefix " << d.name << " " << p.to_string() << "\n";
    }
  }
  return out.str();
}

Topology parse_topology(std::string_view text) {
  Topology topology;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    std::string_view rest = line;
    const auto keyword = next_token(rest);

    if (keyword == "device") {
      const auto name = next_token(rest);
      const auto role = parse_role(next_token(rest), line_number);
      const auto asn = parse_number(next_token(rest), line_number, "asn");
      ClusterId cluster = kNoCluster;
      DatacenterId datacenter =
          role == DeviceRole::kRegionalSpine ? kNoDatacenter : 0;
      while (true) {
        const auto option = next_token(rest);
        if (option.empty()) break;
        if (option.substr(0, 8) == "cluster=") {
          cluster = parse_number(option.substr(8), line_number, "cluster");
        } else if (option.substr(0, 3) == "dc=") {
          datacenter = parse_number(option.substr(3), line_number, "dc");
        } else {
          throw ParseError("topology line " + std::to_string(line_number) +
                           ": unknown option '" + std::string(option) + "'");
        }
      }
      if (name.empty() || topology.find_device(name)) {
        throw ParseError("topology line " + std::to_string(line_number) +
                         ": missing or duplicate device name");
      }
      topology.add_device(std::string(name), role, asn, cluster, datacenter);
      continue;
    }

    const auto resolve = [&](std::string_view name) {
      const auto id = topology.find_device(name);
      if (!id) {
        throw ParseError("topology line " + std::to_string(line_number) +
                         ": unknown device '" + std::string(name) + "'");
      }
      return *id;
    };

    if (keyword == "link") {
      const auto a = resolve(next_token(rest));
      const auto b = resolve(next_token(rest));
      const LinkId link = topology.add_link(a, b);
      const auto state = next_token(rest);
      if (state == "down") {
        topology.set_link_state(link, LinkState::kDown);
      } else if (state == "shutdown") {
        topology.set_bgp_state(link, BgpSessionState::kAdminShutdown);
      } else if (!state.empty()) {
        throw ParseError("topology line " + std::to_string(line_number) +
                         ": unknown link state '" + std::string(state) + "'");
      }
      continue;
    }

    if (keyword == "prefix") {
      const auto tor = resolve(next_token(rest));
      topology.add_hosted_prefix(tor,
                                 net::Prefix::parse(next_token(rest)));
      continue;
    }

    throw ParseError("topology line " + std::to_string(line_number) +
                     ": unknown keyword '" + std::string(keyword) + "'");
  }
  return topology;
}

}  // namespace dcv::topo
