#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace dcv::topo {

/// Device-level fault modes observed in production (§2.6.2). These are not
/// graph faults: they corrupt how a device turns its RIB into a FIB or how
/// it processes announcements, and are therefore interpreted by the routing
/// layer when FIBs are produced.
enum class DeviceFaultKind : std::uint8_t {
  /// "Software Bug 1": RIB-FIB inconsistency — the FIB retains significantly
  /// fewer next hops for the default route than the RIB computed.
  kRibFibInconsistency,
  /// "Software Bug 2": interfaces treated as layer-2 switch ports; no IP
  /// addresses, so no BGP session comes up on any interface.
  kLayer2InterfaceBug,
  /// "Policy Errors" (ECMP misconfiguration): the device programs a single
  /// next hop for upstream traffic instead of all available uplinks.
  kEcmpSingleNextHop,
  /// "Policy Errors" (route-map misconfiguration): the device rejects
  /// default-route announcements from upstream devices.
  kRejectDefaultRoute,
};

[[nodiscard]] std::string_view to_string(DeviceFaultKind kind);
std::ostream& operator<<(std::ostream& os, DeviceFaultKind kind);

/// A concrete injected fault, kept for ground truth when evaluating what the
/// validators detect.
struct FaultRecord {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kBgpAdminShutdown,
    kDeviceFault,
  };
  Kind kind = Kind::kLinkDown;
  LinkId link = 0;                 // for link/session faults
  DeviceId device = kInvalidDevice;  // for device faults
  DeviceFaultKind device_fault = DeviceFaultKind::kRibFibInconsistency;

  [[nodiscard]] std::string to_string(const Topology& topology) const;
};

/// Injects faults into a topology and records ground truth. Device-level
/// faults are stored here and consulted by the routing layer (BgpSimulator /
/// FibSynthesizer) when producing FIBs.
class FaultInjector {
 public:
  explicit FaultInjector(Topology& topology, std::uint64_t seed = 0)
      : topology_(&topology), rng_(seed) {}

  // -- Deterministic injection ---------------------------------------------

  void link_down(LinkId link);
  void bgp_admin_shutdown(LinkId link);
  void device_fault(DeviceId device, DeviceFaultKind kind);

  // -- Random injection -----------------------------------------------------

  /// Takes `count` distinct random links physically down.
  void random_link_failures(std::size_t count);

  /// Admin-shuts BGP on `count` distinct random links (lossy-link
  /// mitigation drift, §2.6.2 "Operation Drift").
  void random_bgp_shutdowns(std::size_t count);

  /// Applies a random device fault of the given kind to `count` distinct
  /// random devices of the given role.
  void random_device_faults(std::size_t count, DeviceRole role,
                            DeviceFaultKind kind);

  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }

  /// Device-fault lookup used by the routing layer.
  [[nodiscard]] bool device_has_fault(DeviceId device,
                                      DeviceFaultKind kind) const;
  [[nodiscard]] std::vector<DeviceFaultKind> faults_of(DeviceId device) const;

  /// Remediates one fault: removes its record and restores the topology to
  /// the state implied by the remaining faults (faults can overlap on the
  /// same link, so the full remaining set is re-applied).
  void repair(std::size_t record_index);

  /// Clears the topology's fault state and re-applies every recorded fault.
  void reapply();

  /// Clears both the injected faults and the topology's link/session state.
  void reset();

 private:
  Topology* topology_;
  std::mt19937_64 rng_;
  std::vector<FaultRecord> records_;
};

}  // namespace dcv::topo
