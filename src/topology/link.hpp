#pragma once

#include <cstdint>

#include "topology/device.hpp"

namespace dcv::topo {

/// Dense index of a link within a Topology.
using LinkId = std::uint32_t;

/// Physical state of a point-to-point link.
enum class LinkState : std::uint8_t {
  kUp,
  kDown,  // e.g. optical hardware failure (§2.6.2 "Hardware Failures")
};

/// State of the EBGP session configured across a link (§2.1: every link
/// carries exactly one EBGP session between its two endpoints).
enum class BgpSessionState : std::uint8_t {
  kEstablished,
  kAdminShutdown,  // operator shut, e.g. lossy-link mitigation (§2.6.2)
  kDown,           // follows the link or a device-level fault
};

/// An undirected point-to-point link between two devices.
struct Link {
  LinkId id = 0;
  DeviceId a = kInvalidDevice;
  DeviceId b = kInvalidDevice;
  LinkState link_state = LinkState::kUp;
  BgpSessionState bgp_state = BgpSessionState::kEstablished;

  /// True iff routes can be exchanged across this link: the physical link is
  /// up and the EBGP session is established.
  [[nodiscard]] bool usable() const {
    return link_state == LinkState::kUp &&
           bgp_state == BgpSessionState::kEstablished;
  }

  /// The endpoint opposite to `from`.
  [[nodiscard]] DeviceId other(DeviceId from) const {
    return from == a ? b : a;
  }
};

}  // namespace dcv::topo
