#include "gate/gate_service.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/error.hpp"
#include "rcdc/contract.hpp"
#include "rcdc/precheck_io.hpp"
#include "secguru/nsg.hpp"
#include "secguru/nsg_gate.hpp"

namespace dcv::gate {

namespace {

obs::HttpResponse text_response(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

GateService::GateService(const topo::Topology& production, GateConfig config)
    : production_(&production),
      config_(config),
      session_(production, config.contract_options, config.precheck_threads),
      nsg_pool_(config.nsg_engines, config.engine_config, config.metrics) {
  if (config_.metrics != nullptr) {
    precheck_approved_ = &config_.metrics->counter(
        "dcv_gate_prechecks_total", "Prechecks served by decision",
        {{"decision", "approved"}});
    precheck_rejected_ = &config_.metrics->counter(
        "dcv_gate_prechecks_total", "Prechecks served by decision",
        {{"decision", "rejected"}});
    nsg_accepted_ = &config_.metrics->counter(
        "dcv_gate_nsg_checks_total", "NSG change checks by decision",
        {{"decision", "accepted"}});
    nsg_rejected_ = &config_.metrics->counter(
        "dcv_gate_nsg_checks_total", "NSG change checks by decision",
        {{"decision", "rejected"}});
    batches_counter_ = &config_.metrics->counter(
        "dcv_gate_precheck_batches_total",
        "Emulator batches run by the precheck coalescer");
    batch_size_hist_ = &config_.metrics->histogram(
        "dcv_gate_precheck_batch_size",
        "Changes coalesced per emulator batch");
  }
}

void GateService::attach(obs::HttpServer& server) {
  server_.store(&server, std::memory_order_release);
  server.add_route(
      "POST", "/precheck",
      [this](const obs::HttpRequest& request) {
        return handle_precheck(request);
      },
      config_.precheck_body_bytes);
  server.add_route(
      "POST", "/nsg-check",
      [this](const obs::HttpRequest& request) {
        return handle_nsg_check(request);
      },
      config_.nsg_body_bytes);
  server.add_route("GET", "/gatez", [this](const obs::HttpRequest& request) {
    return handle_gatez(request);
  });
}

std::vector<rcdc::PrecheckResult> GateService::run_batched(
    std::vector<rcdc::NetworkChange> changes) {
  PendingBatch mine;
  mine.changes = std::move(changes);

  std::unique_lock lock(batch_mutex_);
  waiting_.push_back(&mine);
  while (!mine.done) {
    if (runner_active_) {
      // Someone else is driving the emulator; our batch slot waits its
      // turn (or gets picked up by the current runner's next sweep).
      batch_cv_.wait(lock);
      continue;
    }
    // Become the runner. Hold the door open for the coalescing window so
    // concurrent arrivals share this emulator pass.
    runner_active_ = true;
    if (config_.batch_window.count() > 0) {
      std::size_t queued = 0;
      for (const PendingBatch* pending : waiting_) {
        queued += pending->changes.size();
      }
      if (queued < config_.max_batch) {
        batch_cv_.wait_for(lock, config_.batch_window);
      }
    }

    std::vector<PendingBatch*> batch;
    std::vector<rcdc::NetworkChange> combined;
    while (!waiting_.empty()) {
      PendingBatch* pending = waiting_.front();
      if (!batch.empty() &&
          combined.size() + pending->changes.size() > config_.max_batch) {
        break;  // rolls into the next batch
      }
      waiting_.pop_front();
      for (rcdc::NetworkChange& change : pending->changes) {
        combined.push_back(std::move(change));
      }
      batch.push_back(pending);
    }

    lock.unlock();
    std::vector<rcdc::PrecheckResult> results;
    std::string batch_error;
    try {
      results = session_.check_batch(combined);
    } catch (const std::exception& exception) {
      batch_error = exception.what();
    }
    lock.lock();

    batches_run_.fetch_add(1, std::memory_order_relaxed);
    if (batches_counter_ != nullptr) batches_counter_->inc();
    if (batch_size_hist_ != nullptr) {
      batch_size_hist_->observe(combined.size());
    }
    std::size_t cursor = 0;
    for (PendingBatch* pending : batch) {
      const std::size_t count = pending->changes.size();
      if (batch_error.empty()) {
        pending->results.assign(
            std::make_move_iterator(results.begin() + cursor),
            std::make_move_iterator(results.begin() + cursor + count));
      } else {
        for (std::size_t c = 0; c < count; ++c) {
          rcdc::PrecheckResult failed;
          failed.error = batch_error;
          pending->results.push_back(std::move(failed));
        }
      }
      cursor += count;
      pending->done = true;
    }
    runner_active_ = false;
    batch_cv_.notify_all();
  }
  return std::move(mine.results);
}

obs::HttpResponse GateService::handle_precheck(
    const obs::HttpRequest& request) {
  if (production_->epoch() != session_.base_epoch()) {
    return text_response(409,
                         "stale gate: production topology epoch moved from " +
                             std::to_string(session_.base_epoch()) + " to " +
                             std::to_string(production_->epoch()) +
                             "; restart the gate against the new topology\n");
  }
  std::vector<rcdc::NetworkChange> changes;
  try {
    changes = rcdc::parse_change_plan(request.body, *production_);
  } catch (const std::exception& exception) {
    return text_response(400, std::string(exception.what()) + "\n");
  }
  if (changes.empty()) {
    return text_response(400, "plan contains no change\n");
  }

  const std::vector<rcdc::PrecheckResult> results =
      run_batched(std::move(changes));
  prechecks_served_.fetch_add(results.size(), std::memory_order_relaxed);

  bool all_approved = true;
  bool any_error = false;
  std::ostringstream body;
  for (const rcdc::PrecheckResult& result : results) {
    all_approved = all_approved && result.approved;
    any_error = any_error || !result.error.empty();
    if (precheck_approved_ != nullptr) {
      (result.approved ? precheck_approved_ : precheck_rejected_)->inc();
    }
  }
  body << "decision: " << (all_approved ? "approved" : "rejected") << "\n";
  for (const rcdc::PrecheckResult& result : results) {
    if (!result.error.empty()) {
      body << "ERROR " << result.description << ": " << result.error << "\n";
      continue;
    }
    body << (result.approved ? "APPROVED " : "REJECTED ")
         << result.description << " (baseline " << result.baseline_violations
         << ", after " << result.post_change_violations << ", introduced "
         << result.introduced.size() << ")\n";
    std::size_t shown = 0;
    for (const rcdc::Violation& violation : result.introduced) {
      if (shown++ >= 10) {
        body << "  ... " << (result.introduced.size() - 10) << " more\n";
        break;
      }
      body << "  " << production_->device(violation.device).name << " "
           << (violation.contract.kind == rcdc::ContractKind::kDefault
                   ? "default"
                   : violation.contract.prefix.to_string())
           << " " << to_string(violation.kind) << "\n";
    }
  }
  return text_response(any_error ? 422 : 200, body.str());
}

obs::HttpResponse GateService::handle_nsg_check(
    const obs::HttpRequest& request) {
  const std::string_view space = request.query_param("space");
  if (space.empty()) {
    return text_response(400, "missing query parameter: space=<CIDR>\n");
  }
  std::string name(request.query_param("vnet"));
  if (name.empty()) name = "vnet";
  const bool has_database = request.query_param("db") != "0";

  secguru::VirtualNetwork vnet;
  secguru::Nsg proposed;
  try {
    vnet.name = name;
    vnet.address_space = net::Prefix::parse(space);
    vnet.has_database_instance = has_database;
    vnet.nsg = secguru::Nsg(name);
    proposed = secguru::parse_nsg(request.body, name + "-proposed");
  } catch (const std::exception& exception) {
    return text_response(400, std::string(exception.what()) + "\n");
  }

  secguru::NsgChangeResult result;
  {
    const secguru::FastEnginePool::Lease lease = nsg_pool_.acquire();
    const secguru::NsgGate nsg_gate(*lease);
    result = nsg_gate.try_update(vnet, proposed);
  }
  nsg_checks_served_.fetch_add(1, std::memory_order_relaxed);
  if (nsg_accepted_ != nullptr) {
    (result.accepted ? nsg_accepted_ : nsg_rejected_)->inc();
  }

  std::ostringstream body;
  body << "decision: " << (result.accepted ? "accepted" : "rejected") << "\n";
  body << "contracts checked: " << result.report.contracts_checked << "\n";
  for (const secguru::ContractCheckResult& failure : result.report.failures) {
    body << "FAILED " << failure.contract_name;
    if (failure.witness.has_value()) {
      body << " witness " << failure.witness->to_string();
    }
    if (failure.violating_rule.has_value()) {
      body << " rule #" << *failure.violating_rule;
    }
    body << "\n";
  }
  return text_response(200, body.str());
}

obs::HttpResponse GateService::handle_gatez(
    const obs::HttpRequest& /*request*/) const {
  std::ostringstream body;
  body << "change gate:\n"
       << "  base epoch            " << session_.base_epoch() << "\n"
       << "  baseline violations   " << session_.baseline_violations() << "\n"
       << "  prechecks served      "
       << prechecks_served_.load(std::memory_order_relaxed) << "\n"
       << "  emulator batches      "
       << batches_run_.load(std::memory_order_relaxed) << "\n"
       << "  devices revalidated   " << session_.devices_revalidated() << "\n"
       << "  devices skipped       " << session_.devices_skipped() << "\n"
       << "  nsg checks served     "
       << nsg_checks_served_.load(std::memory_order_relaxed) << "\n"
       << "  nsg engines           " << nsg_pool_.size() << " ("
       << nsg_pool_.available() << " free)\n";
  return text_response(200, body.str());
}

obs::HealthProbe GateService::wrap_probe(obs::HealthProbe inner,
                                         double max_queue_saturation) const {
  return [this, inner = std::move(inner), max_queue_saturation]() {
    obs::HealthSnapshot snapshot = inner ? inner() : obs::HealthSnapshot{};
    const obs::HttpServer* server = server_.load(std::memory_order_acquire);
    if (server != nullptr) {
      const double saturation = server->queue_saturation();
      if (saturation > max_queue_saturation) {
        snapshot.ready = false;
        snapshot.detail += "gate: request queue saturation " +
                           std::to_string(saturation) + " above " +
                           std::to_string(max_queue_saturation) + "\n";
      }
    }
    return snapshot;
  };
}

}  // namespace dcv::gate
