#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/precheck.hpp"
#include "secguru/engine_pool.hpp"
#include "topology/topology.hpp"

namespace dcv::gate {

struct GateConfig {
  /// Validation threads per precheck batch; 0 = hardware-aware default.
  unsigned precheck_threads = 0;
  /// Coalescing window: a precheck arriving while no batch is running
  /// waits this long for same-epoch companions before the emulator pass
  /// starts. 0 disables coalescing (every request is its own batch).
  std::chrono::milliseconds batch_window{2};
  /// Changes per emulator batch; requests beyond the cap roll into the
  /// next batch.
  std::size_t max_batch = 16;
  /// FastEngines kept warm for concurrent POST /nsg-check traffic.
  std::size_t nsg_engines = 2;
  /// Per-endpoint request caps (change plans and NSG tables are far
  /// bigger than scrape GETs; these override the server's default).
  std::size_t precheck_body_bytes = 1 << 20;
  std::size_t nsg_body_bytes = 1 << 20;
  rcdc::ContractGenOptions contract_options = {};
  secguru::FastEngineConfig engine_config = {};
  /// When set (must outlive the service), receives dcv_gate_* series.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The change-gate service (§2.7 + §3.4 as one serving layer): vets
/// proposed network changes and NSG updates *before* rollout, over HTTP.
///
///   POST /precheck   body: a change plan (see rcdc/precheck_io.hpp).
///                    Each plan is parsed with parse-time name resolution
///                    (bad plans 400 without touching the emulator) and
///                    checked by a persistent warm PrecheckSession.
///                    Requests arriving within `batch_window` coalesce
///                    into one emulator batch: K changes cost K+1 warm
///                    reconvergences instead of K cold clones. 200 carries
///                    the per-change verdicts; "decision: approved" on the
///                    first line iff every change passed.
///   POST /nsg-check  query: ?vnet=NAME&space=CIDR&db=0|1 (db default 1);
///                    body: the Figure 9 tabular NSG. Runs the SecGuru
///                    NsgGate (database-backup contracts) on a FastEngine
///                    leased from a fixed pool. 200 with
///                    "decision: accepted" or "decision: rejected" plus
///                    the failed contracts and witness packets.
///   GET  /gatez      plain-text serving counters (batches, amortization,
///                    divergence-proportionality evidence).
///
/// A session is bound to the production topology epoch it cloned; when the
/// live epoch moves on, prechecks answer 409 until a fresh gate is built.
/// Handlers are thread-safe: the precheck batcher serializes emulator
/// access (callers block on their batch), NSG checks run concurrently up
/// to the engine-pool size, and overload beyond the HTTP server's
/// admission bounds is already 429'd before reaching the gate.
class GateService {
 public:
  /// Builds the warm session (one cold converge + baseline validation) and
  /// the NSG engine pool. `production` must outlive the service.
  explicit GateService(const topo::Topology& production,
                       GateConfig config = {});

  GateService(const GateService&) = delete;
  GateService& operator=(const GateService&) = delete;

  /// Registers the gate routes (with their per-endpoint body caps) on the
  /// server and remembers it for saturation-aware readiness. Call before
  /// the server starts.
  void attach(obs::HttpServer& server);

  /// Route handlers, usable directly (without sockets) by tests and
  /// benches; attach() wires these same functions.
  [[nodiscard]] obs::HttpResponse handle_precheck(
      const obs::HttpRequest& request);
  [[nodiscard]] obs::HttpResponse handle_nsg_check(
      const obs::HttpRequest& request);
  [[nodiscard]] obs::HttpResponse handle_gatez(
      const obs::HttpRequest& request) const;

  /// Wraps a readiness probe with the gate's admission signal: not ready
  /// while the attached server's dispatch queue sits above
  /// `max_queue_saturation` (the ReadinessRules semantics, applied to the
  /// serving layer).
  [[nodiscard]] obs::HealthProbe wrap_probe(obs::HealthProbe inner,
                                            double max_queue_saturation) const;

  [[nodiscard]] std::uint64_t prechecks_served() const {
    return prechecks_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precheck_batches() const {
    return batches_run_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nsg_checks_served() const {
    return nsg_checks_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const rcdc::PrecheckSession& session() const {
    return session_;
  }

 private:
  /// One request's slot in the coalescing batcher.
  struct PendingBatch {
    std::vector<rcdc::NetworkChange> changes;
    std::vector<rcdc::PrecheckResult> results;
    bool done = false;
  };

  /// Runs `changes` through the batcher: coalesces with concurrent
  /// arrivals, blocks until this request's results are ready.
  std::vector<rcdc::PrecheckResult> run_batched(
      std::vector<rcdc::NetworkChange> changes);

  const topo::Topology* production_;
  GateConfig config_;
  rcdc::PrecheckSession session_;
  secguru::FastEnginePool nsg_pool_;
  std::atomic<const obs::HttpServer*> server_{nullptr};

  // Batcher state: requests queue under the mutex; one caller at a time
  // holds the runner role and drives the (single-threaded) session.
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::deque<PendingBatch*> waiting_;
  bool runner_active_ = false;

  std::atomic<std::uint64_t> prechecks_served_{0};
  std::atomic<std::uint64_t> batches_run_{0};
  std::atomic<std::uint64_t> nsg_checks_served_{0};

  obs::Counter* precheck_approved_ = nullptr;
  obs::Counter* precheck_rejected_ = nullptr;
  obs::Counter* nsg_accepted_ = nullptr;
  obs::Counter* nsg_rejected_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
};

}  // namespace dcv::gate
