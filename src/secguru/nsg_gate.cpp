#include "secguru/nsg_gate.hpp"

#include <deque>
#include <random>

namespace dcv::secguru {

ContractSuite database_backup_contracts(const VirtualNetwork& vnet,
                                        const BackupInfrastructure& infra) {
  ContractSuite suite{.name = "database-backup:" + vnet.name,
                      .contracts = {}};
  // The orchestration service must reach the database instance on the
  // control ports ...
  suite.contracts.push_back(ConnectivityContract{
      .name = "backup-control-inbound",
      .expect = Expectation::kAllow,
      .protocol = net::ProtocolSpec::tcp(),
      .src = infra.service_range,
      .src_ports = net::PortRange::any(),
      .dst = vnet.address_space,
      .dst_ports = infra.control_ports});
  // ... and the instance must be able to ship backup data out to it.
  suite.contracts.push_back(ConnectivityContract{
      .name = "backup-data-outbound",
      .expect = Expectation::kAllow,
      .protocol = net::ProtocolSpec::tcp(),
      .src = vnet.address_space,
      .src_ports = net::PortRange::any(),
      .dst = infra.service_range,
      .dst_ports = net::PortRange::exactly(443)});
  return suite;
}

NsgChangeResult NsgGate::try_update(VirtualNetwork& vnet,
                                    const Nsg& proposed) const {
  NsgChangeResult result;
  if (!vnet.has_database_instance) {
    vnet.nsg = proposed;
    result.accepted = true;
    return result;
  }
  const ContractSuite suite = database_backup_contracts(vnet, infra_);
  result.report = fast_ != nullptr
                      ? fast_->check_suite(proposed.to_policy(), suite)
                      : engine_->check_suite(proposed.to_policy(), suite);
  result.accepted = result.report.ok();
  if (result.accepted) vnet.nsg = proposed;
  return result;
}

namespace {

/// The NSG a managed-database virtual network starts with: intra-vnet
/// traffic, auto-provisioned backup reachability, default deny.
Nsg baseline_nsg(const VirtualNetwork& vnet,
                 const BackupInfrastructure& infra) {
  Nsg nsg("nsg-" + vnet.name);
  nsg.upsert(NsgRule{
      .priority = 100,
      .name = "AllowVnetInbound",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::any(),
                   .src = vnet.address_space,
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = net::PortRange::any()}});
  nsg.upsert(NsgRule{
      .priority = 300,
      .name = "AllowBackupControl",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::tcp(),
                   .src = infra.service_range,
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = infra.control_ports}});
  nsg.upsert(NsgRule{
      .priority = 310,
      .name = "AllowBackupData",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::tcp(),
                   .src = vnet.address_space,
                   .src_ports = net::PortRange::any(),
                   .dst = infra.service_range,
                   .dst_ports = net::PortRange::exactly(443)}});
  nsg.upsert(NsgRule{
      .priority = 4096,
      .name = "DenyAll",
      .rule = Rule{.action = Action::kDeny,
                   .protocol = net::ProtocolSpec::any(),
                   .src = net::Prefix::default_route(),
                   .src_ports = net::PortRange::any(),
                   .dst = net::Prefix::default_route(),
                   .dst_ports = net::PortRange::any()}});
  return nsg;
}

}  // namespace

std::vector<NsgIncidentDay> simulate_nsg_incidents(
    const NsgIncidentConfig& config) {
  FastEngine engine;
  const BackupInfrastructure infra;
  const NsgGate gate(engine, infra);
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  struct Customer {
    VirtualNetwork vnet;
    bool broken = false;
    bool incident_pending = false;  // broken, not yet reported
    int broken_since = 0;
    int misconfig_priority = 0;  // the offending rule, for support to fix
  };
  std::vector<Customer> customers;
  std::deque<std::size_t> open_incidents;  // customer indices, FIFO
  double adoption_accumulator = 0.0;
  std::vector<NsgIncidentDay> series;
  series.reserve(static_cast<std::size_t>(config.days));

  for (int day = 0; day < config.days; ++day) {
    NsgIncidentDay today{.day = day};
    const bool gate_live = day >= config.gate_deploy_day;

    // Adoption ramp: new managed-database virtual networks come online.
    adoption_accumulator += config.adoption_per_day;
    while (adoption_accumulator >= 1.0) {
      adoption_accumulator -= 1.0;
      const auto index = static_cast<std::uint32_t>(customers.size());
      VirtualNetwork vnet{
          .name = "vnet-" + std::to_string(index),
          .address_space = net::Prefix(
              net::Ipv4Address(net::Ipv4Address::from_octets(10, 0, 0, 0)
                                   .value() +
                               index * (1u << 16)),
              16),
          .has_database_instance = true,
          .nsg = {}};
      vnet.nsg = baseline_nsg(vnet, infra);
      customers.push_back(Customer{.vnet = std::move(vnet)});
    }

    // Customer NSG churn.
    for (std::size_t c = 0; c < customers.size(); ++c) {
      Customer& customer = customers[c];
      if (coin(rng) >= config.changes_per_vnet_per_day) continue;
      ++today.changes_attempted;

      Nsg proposed = customer.vnet.nsg;
      const bool misconfigures =
          coin(rng) < config.misconfiguration_probability;
      if (misconfigures) {
        // The classic lock-down mistake: a broad deny ahead of the backup
        // allow rules. "Customers who were making changes to the NSG
        // policies were not aware that they were blocking database backups."
        const int priority = 150 + static_cast<int>(coin(rng) * 100);
        proposed.upsert(NsgRule{
            .priority = priority,
            .name = "DenyInboundLockdown",
            .rule = Rule{.action = Action::kDeny,
                         .protocol = net::ProtocolSpec::any(),
                         .src = net::Prefix::default_route(),
                         .src_ports = net::PortRange::any(),
                         .dst = customer.vnet.address_space,
                         .dst_ports = net::PortRange::any()}});
        customer.misconfig_priority = priority;
      } else {
        // A benign application rule at low priority.
        proposed.upsert(NsgRule{
            .priority = 1000 + static_cast<int>(coin(rng) * 1000),
            .name = "AllowApp",
            .rule = Rule{.action = Action::kPermit,
                         .protocol = net::ProtocolSpec::tcp(),
                         .src = net::Prefix::default_route(),
                         .src_ports = net::PortRange::any(),
                         .dst = customer.vnet.address_space,
                         .dst_ports = net::PortRange::exactly(
                             static_cast<std::uint16_t>(
                                 8000 + coin(rng) * 1000))}});
      }

      if (gate_live) {
        const NsgChangeResult result =
            gate.try_update(customer.vnet, proposed);
        if (!result.accepted) ++today.changes_rejected_by_gate;
      } else {
        // Pre-gate API: the change lands unvalidated.
        customer.vnet.nsg = proposed;
        if (misconfigures && !customer.broken) {
          customer.broken = true;
          customer.incident_pending = true;
          customer.broken_since = day;
        }
      }
    }

    // Failing backups surface as customer-reported incidents after the
    // detection lag.
    for (std::size_t c = 0; c < customers.size(); ++c) {
      Customer& customer = customers[c];
      if (customer.incident_pending &&
          day - customer.broken_since >= config.detection_lag_days) {
        customer.incident_pending = false;
        open_incidents.push_back(c);
        ++today.incidents_reported;
      }
    }

    // Support works the incident queue: diagnose the NSG, remove the
    // offending rule.
    for (std::size_t fixed = 0;
         fixed < config.support_capacity_per_day && !open_incidents.empty();
         ++fixed) {
      Customer& customer = customers[open_incidents.front()];
      open_incidents.pop_front();
      customer.vnet.nsg.remove(customer.misconfig_priority);
      customer.broken = false;
    }

    today.database_vnets = customers.size();
    today.incidents_open = open_incidents.size();
    series.push_back(today);
  }
  return series;
}

}  // namespace dcv::secguru
