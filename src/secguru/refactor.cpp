#include "secguru/refactor.hpp"

#include <algorithm>
#include <random>

namespace dcv::secguru {

namespace {

/// Owned public prefix #i: carved as /20s from 104.208.0.0 onward (the
/// ranges Figure 8 uses) and, for the second half, from 168.61.0.0.
net::Prefix owned_prefix(std::size_t i, std::size_t total) {
  const bool second_block = i >= (total + 1) / 2;
  const std::size_t index = second_block ? i - (total + 1) / 2 : i;
  const std::uint32_t base =
      second_block ? net::Ipv4Address::from_octets(168, 61, 0, 0).value()
                   : net::Ipv4Address::from_octets(104, 208, 0, 0).value();
  return net::Prefix(
      net::Ipv4Address(base + static_cast<std::uint32_t>(index) * (1u << 12)),
      20);
}

/// Service #i endpoint prefix: a /28 inside an owned prefix.
net::Prefix service_prefix(std::size_t i, std::size_t owned_total) {
  const net::Prefix owner = owned_prefix(i % owned_total, owned_total);
  return net::Prefix(
      net::Ipv4Address(owner.network().value() +
                       static_cast<std::uint32_t>(i / owned_total) * 16),
      28);
}

constexpr std::uint16_t kBlockedPorts[] = {135, 137, 138, 139,
                                           445, 593, 1433, 1434};

Rule deny_src(const net::Prefix& src, std::string comment) {
  return Rule{.action = Action::kDeny,
              .protocol = net::ProtocolSpec::any(),
              .src = src,
              .src_ports = net::PortRange::any(),
              .dst = net::Prefix::default_route(),
              .dst_ports = net::PortRange::any(),
              .comment = std::move(comment)};
}

}  // namespace

Policy generate_legacy_edge_acl(const LegacyAclParams& params) {
  std::mt19937_64 rng(params.seed);
  Policy acl{.name = "edge-acl",
             .semantics = PolicySemantics::kFirstApplicable,
             .rules = {}};

  // §1 — isolating private addresses (RFC1918 + unspecified).
  for (const char* range :
       {"0.0.0.0/32", "10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16"}) {
    acl.rules.push_back(
        deny_src(net::Prefix::parse(range), "Isolating private addresses"));
  }

  // §2 — anti-spoofing: traffic sourced from our own ranges cannot
  // legitimately arrive at the edge.
  for (std::size_t i = 0; i < params.owned_prefixes; ++i) {
    acl.rules.push_back(deny_src(owned_prefix(i, params.owned_prefixes),
                                 "Anti spoofing ACLs"));
  }

  // §3 — permits for IPs without port and protocol blocks: the first few
  // owned /24s are exempt from the standard blocks.
  const std::size_t exempt = std::min<std::size_t>(2, params.owned_prefixes);
  for (std::size_t i = 0; i < exempt; ++i) {
    acl.rules.push_back(Rule{
        .action = Action::kPermit,
        .protocol = net::ProtocolSpec::any(),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = net::Prefix(owned_prefix(i, params.owned_prefixes).network(),
                           24),
        .dst_ports = net::PortRange::any(),
        .comment = "permits for IPs without port and protocol blocks"});
  }

  // Service-specific whitelists that grew inorganically, interspersed with
  // zero-day mitigations.
  std::uniform_int_distribution<std::uint32_t> client_pick(0x08000000u,
                                                           0x5F000000u);
  std::uniform_int_distribution<std::size_t> port_pick(
      0, std::size(kBlockedPorts) - 1);
  std::uniform_int_distribution<std::uint32_t> block_pick(0x20000000u,
                                                          0x7F000000u);
  for (std::size_t s = 0; s < params.services; ++s) {
    const net::Prefix endpoint = service_prefix(s, params.owned_prefixes);
    for (std::size_t w = 0; w < params.whitelist_entries_per_service; ++w) {
      acl.rules.push_back(Rule{
          .action = Action::kPermit,
          .protocol = net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(client_pick(rng)), 24),
          .src_ports = net::PortRange::any(),
          .dst = endpoint,
          .dst_ports = net::PortRange::exactly(443),
          .comment = "service whitelist " + std::to_string(s)});
    }
    if (s < params.zero_day_blocks) {
      acl.rules.push_back(Rule{
          .action = Action::kDeny,
          .protocol = net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(block_pick(rng)), 16),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix::default_route(),
          .dst_ports = net::PortRange::exactly(
              kBlockedPorts[port_pick(rng)]),
          .comment = "zero-day mitigation " + std::to_string(s)});
    }
  }

  // §4 — standard port and protocol blocks for all Internet traffic.
  for (const std::uint16_t port : kBlockedPorts) {
    for (const auto proto :
         {net::ProtocolSpec::tcp(), net::ProtocolSpec::udp()}) {
      acl.rules.push_back(Rule{
          .action = Action::kDeny,
          .protocol = proto,
          .src = net::Prefix::default_route(),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix::default_route(),
          .dst_ports = net::PortRange::exactly(port),
          .comment = "standard port and protocol blocks"});
    }
  }
  for (const std::uint8_t proto : {std::uint8_t{53}, std::uint8_t{55}}) {
    acl.rules.push_back(Rule{
        .action = Action::kDeny,
        .protocol = net::ProtocolSpec(proto),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = net::Prefix::default_route(),
        .dst_ports = net::PortRange::any(),
        .comment = "standard port and protocol blocks"});
  }

  // §5 — permits for the owned ranges, after the port blocks.
  for (std::size_t i = 0; i < params.owned_prefixes; ++i) {
    acl.rules.push_back(Rule{
        .action = Action::kPermit,
        .protocol = net::ProtocolSpec::any(),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = owned_prefix(i, params.owned_prefixes),
        .dst_ports = net::PortRange::any(),
        .comment = "permits for IPs with port and protocol blocks"});
  }

  // Organic redundancy: re-append copies of random existing rules at the
  // end, where the originals fully shadow them.
  const auto base_size = acl.rules.size();
  const auto redundant = static_cast<std::size_t>(
      static_cast<double>(base_size) * params.redundancy_factor);
  std::uniform_int_distribution<std::size_t> rule_pick(0, base_size - 1);
  for (std::size_t i = 0; i < redundant; ++i) {
    Rule copy = acl.rules[rule_pick(rng)];
    copy.comment = "redundant duplicate";
    acl.rules.push_back(std::move(copy));
  }
  for (std::size_t i = 0; i < acl.rules.size(); ++i) {
    acl.rules[i].line = static_cast<int>(i + 1);
  }
  return acl;
}

ContractSuite edge_acl_contracts(const LegacyAclParams& params) {
  ContractSuite suite{.name = "edge-acl-regression", .contracts = {}};
  // A clean public client range: outside every private and owned range.
  const auto internet_client = net::Prefix::parse("8.8.8.0/24");

  for (const char* range :
       {"0.0.0.0/32", "10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16"}) {
    suite.contracts.push_back(ConnectivityContract{
        .name = std::string("private-isolation ") + range,
        .expect = Expectation::kDeny,
        .protocol = net::ProtocolSpec::any(),
        .src = net::Prefix::parse(range),
        .src_ports = net::PortRange::any(),
        .dst = net::Prefix::default_route(),
        .dst_ports = net::PortRange::any()});
  }
  for (std::size_t i = 0; i < params.owned_prefixes; ++i) {
    const net::Prefix owned = owned_prefix(i, params.owned_prefixes);
    suite.contracts.push_back(ConnectivityContract{
        .name = "anti-spoofing " + owned.to_string(),
        .expect = Expectation::kDeny,
        .protocol = net::ProtocolSpec::any(),
        .src = owned,
        .src_ports = net::PortRange::any(),
        .dst = net::Prefix::default_route(),
        .dst_ports = net::PortRange::any()});
    // Every owned range stays reachable from the Internet on the web ports.
    suite.contracts.push_back(ConnectivityContract{
        .name = "service-reachable " + owned.to_string(),
        .expect = Expectation::kAllow,
        .protocol = net::ProtocolSpec::tcp(),
        .src = internet_client,
        .src_ports = net::PortRange::any(),
        .dst = owned,
        .dst_ports = net::PortRange::exactly(443)});
  }
  // The standard blocks hold for ranges that are not exempt (§3 exempts the
  // first two /24s).
  const std::size_t exempt = std::min<std::size_t>(2, params.owned_prefixes);
  for (std::size_t i = exempt; i < params.owned_prefixes; ++i) {
    const net::Prefix owned = owned_prefix(i, params.owned_prefixes);
    suite.contracts.push_back(ConnectivityContract{
        .name = "port-blocked " + owned.to_string(),
        .expect = Expectation::kDeny,
        .protocol = net::ProtocolSpec::tcp(),
        .src = internet_client,
        .src_ports = net::PortRange::any(),
        .dst = owned,
        .dst_ports = net::PortRange::exactly(445)});
  }
  return suite;
}

Change delete_rules_matching(std::string description,
                             std::function<bool(const Rule&)> predicate) {
  return Change{
      .description = std::move(description),
      .apply = [predicate = std::move(predicate)](const Policy& before) {
        Policy after = before;
        std::erase_if(after.rules, predicate);
        return after;
      }};
}

Change append_rules(std::string description, std::vector<Rule> rules) {
  return Change{.description = std::move(description),
                .apply = [rules = std::move(rules)](const Policy& before) {
                  Policy after = before;
                  after.rules.insert(after.rules.end(), rules.begin(),
                                     rules.end());
                  return after;
                }};
}

namespace {

/// The plan loop, generic over the checker (Engine or FastEngine — both
/// expose check_suite with the same shape).
template <typename EngineT>
std::vector<StepOutcome> run_plan(
    EngineT& engine, Policy& production, const std::vector<Change>& plan,
    const ContractSuite& contracts, const TestDevice& lab,
    const TestDevice& production_device) {
  std::vector<StepOutcome> outcomes;
  outcomes.reserve(plan.size());
  for (const Change& change : plan) {
    StepOutcome outcome;
    outcome.description = change.description;
    outcome.rules_before = production.rules.size();
    outcome.rules_after = production.rules.size();

    // Precheck: configure the candidate ACL on a test device and validate
    // the *effective* policy against the regression contracts (§3.3).
    const Policy candidate = change.apply(production);
    const Policy lab_effective = lab.configure(candidate);
    PolicyReport precheck = engine.check_suite(lab_effective, contracts);
    outcome.precheck_ok = precheck.ok();
    outcome.precheck_failures = std::move(precheck.failures);
    if (!outcome.precheck_ok) {
      outcomes.push_back(std::move(outcome));
      continue;  // the change never reaches production
    }

    // Deploy, then postcheck the production device's effective ACL.
    const Policy previous = production;
    production = candidate;
    const Policy effective = production_device.configure(production);
    PolicyReport postcheck = engine.check_suite(effective, contracts);
    outcome.applied = true;
    outcome.postcheck_ok = postcheck.ok();
    outcome.postcheck_failures = std::move(postcheck.failures);
    if (!outcome.postcheck_ok) {
      production = previous;  // rollback methodology
      outcome.rolled_back = true;
    }
    outcome.rules_after = production.rules.size();
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace

std::vector<StepOutcome> execute_refactor_plan(
    Engine& engine, Policy& production, const std::vector<Change>& plan,
    const ContractSuite& contracts, const TestDevice& lab,
    const TestDevice& production_device) {
  return run_plan(engine, production, plan, contracts, lab,
                  production_device);
}

std::vector<StepOutcome> execute_refactor_plan(
    FastEngine& engine, Policy& production, const std::vector<Change>& plan,
    const ContractSuite& contracts, const TestDevice& lab,
    const TestDevice& production_device) {
  return run_plan(engine, production, plan, contracts, lab,
                  production_device);
}

}  // namespace dcv::secguru
