#include "secguru/fast_engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace dcv::secguru {

namespace {

PacketCube proto_clamped(PacketCube cube, const net::ProtocolSpec& spec) {
  if (!spec.is_any()) {
    cube.proto_lo = *spec.number;
    cube.proto_hi = *spec.number;
  }
  return cube;
}

}  // namespace

PacketCube PacketCube::from_rule(const Rule& rule) {
  return proto_clamped(
      PacketCube{.src = net::AddressInterval::from_prefix(rule.src),
                 .src_ports = rule.src_ports,
                 .dst = net::AddressInterval::from_prefix(rule.dst),
                 .dst_ports = rule.dst_ports},
      rule.protocol);
}

PacketCube PacketCube::from_contract(const ConnectivityContract& contract) {
  return proto_clamped(
      PacketCube{.src = net::AddressInterval::from_prefix(contract.src),
                 .src_ports = contract.src_ports,
                 .dst = net::AddressInterval::from_prefix(contract.dst),
                 .dst_ports = contract.dst_ports},
      contract.protocol);
}

bool PacketCube::valid() const {
  return src.valid() && src_ports.valid() && dst.valid() &&
         dst_ports.valid() && proto_lo <= proto_hi;
}

std::optional<PacketCube> PacketCube::intersect(
    const PacketCube& other) const {
  const PacketCube out{
      .src = src.intersection(other.src),
      .src_ports = src_ports.intersection(other.src_ports),
      .dst = dst.intersection(other.dst),
      .dst_ports = dst_ports.intersection(other.dst_ports),
      .proto_lo = std::max(proto_lo, other.proto_lo),
      .proto_hi = std::min(proto_hi, other.proto_hi)};
  if (!out.valid()) return std::nullopt;
  return out;
}

bool PacketCube::contains(const net::PacketHeader& packet) const {
  return src.contains(packet.src_ip) && src_ports.contains(packet.src_port) &&
         dst.contains(packet.dst_ip) && dst_ports.contains(packet.dst_port) &&
         proto_lo <= packet.protocol && packet.protocol <= proto_hi;
}

net::PacketHeader PacketCube::low_corner() const {
  return net::PacketHeader{.src_ip = src.lo,
                           .src_port = src_ports.lo,
                           .dst_ip = dst.lo,
                           .dst_port = dst_ports.lo,
                           .protocol = proto_lo};
}

void PacketCube::subtract(const PacketCube& other,
                          std::vector<PacketCube>& out) const {
  const auto inter = intersect(other);
  if (!inter) {
    out.push_back(*this);
    return;
  }
  // Dimension sweep: carve the slabs of this cube outside the intersection
  // along each dimension in turn, clamping the remainder to the
  // intersection's extent before moving to the next dimension. What is
  // left at the end is the intersection itself — the part removed.
  PacketCube rest = *this;

  if (rest.src.lo < inter->src.lo) {
    PacketCube piece = rest;
    piece.src = {rest.src.lo, net::Ipv4Address(inter->src.lo.value() - 1)};
    out.push_back(piece);
  }
  if (inter->src.hi < rest.src.hi) {
    PacketCube piece = rest;
    piece.src = {net::Ipv4Address(inter->src.hi.value() + 1), rest.src.hi};
    out.push_back(piece);
  }
  rest.src = inter->src;

  if (rest.src_ports.lo < inter->src_ports.lo) {
    PacketCube piece = rest;
    piece.src_ports = {rest.src_ports.lo,
                       static_cast<std::uint16_t>(inter->src_ports.lo - 1)};
    out.push_back(piece);
  }
  if (inter->src_ports.hi < rest.src_ports.hi) {
    PacketCube piece = rest;
    piece.src_ports = {static_cast<std::uint16_t>(inter->src_ports.hi + 1),
                       rest.src_ports.hi};
    out.push_back(piece);
  }
  rest.src_ports = inter->src_ports;

  if (rest.dst.lo < inter->dst.lo) {
    PacketCube piece = rest;
    piece.dst = {rest.dst.lo, net::Ipv4Address(inter->dst.lo.value() - 1)};
    out.push_back(piece);
  }
  if (inter->dst.hi < rest.dst.hi) {
    PacketCube piece = rest;
    piece.dst = {net::Ipv4Address(inter->dst.hi.value() + 1), rest.dst.hi};
    out.push_back(piece);
  }
  rest.dst = inter->dst;

  if (rest.dst_ports.lo < inter->dst_ports.lo) {
    PacketCube piece = rest;
    piece.dst_ports = {rest.dst_ports.lo,
                       static_cast<std::uint16_t>(inter->dst_ports.lo - 1)};
    out.push_back(piece);
  }
  if (inter->dst_ports.hi < rest.dst_ports.hi) {
    PacketCube piece = rest;
    piece.dst_ports = {static_cast<std::uint16_t>(inter->dst_ports.hi + 1),
                       rest.dst_ports.hi};
    out.push_back(piece);
  }
  rest.dst_ports = inter->dst_ports;

  if (rest.proto_lo < inter->proto_lo) {
    PacketCube piece = rest;
    piece.proto_hi = static_cast<std::uint8_t>(inter->proto_lo - 1);
    out.push_back(piece);
  }
  if (inter->proto_hi < rest.proto_hi) {
    PacketCube piece = rest;
    piece.proto_lo = static_cast<std::uint8_t>(inter->proto_hi + 1);
    out.push_back(piece);
  }
}

std::string PacketCube::to_string() const {
  return "src " + src.to_string() + " ports " + src_ports.to_string() +
         " -> dst " + dst.to_string() + " ports " + dst_ports.to_string() +
         " proto [" + std::to_string(proto_lo) + ", " +
         std::to_string(proto_hi) + "]";
}

namespace {

/// Subtracts `cube` from every region, rewriting `regions` in place via
/// `scratch`. Returns false when the result exceeds `budget` (the caller
/// must treat the check as inconclusive).
bool subtract_all(std::vector<PacketCube>& regions, const PacketCube& cube,
                  std::vector<PacketCube>& scratch, std::size_t budget) {
  scratch.clear();
  for (const PacketCube& region : regions) {
    region.subtract(cube, scratch);
    if (scratch.size() > budget) return false;
  }
  regions.swap(scratch);
  return true;
}

FastDecision decide_first_applicable(const Policy& policy,
                                     const ConnectivityContract& contract,
                                     std::size_t budget) {
  // The action that would contradict the expectation if it decided a
  // contract packet.
  const Action violating_action = contract.expect == Expectation::kAllow
                                      ? Action::kDeny
                                      : Action::kPermit;
  std::vector<PacketCube> residual{PacketCube::from_contract(contract)};
  std::vector<PacketCube> scratch;
  for (const Rule& rule : policy.rules) {
    if (residual.empty()) break;
    const PacketCube cube = PacketCube::from_rule(rule);
    if (!cube.valid()) continue;  // inverted port range: matches nothing
    if (rule.action == violating_action) {
      // Any undecided contract packet this rule matches is decided here,
      // against the expectation: a witness. No overlap means the rule
      // decides no undecided packet, so the residual is untouched.
      for (const PacketCube& region : residual) {
        if (const auto hit = region.intersect(cube)) {
          return {FastVerdict::kViolated, hit->low_corner()};
        }
      }
      continue;
    }
    // Rule action agrees with the expectation: packets it decides comply;
    // remove them from the undecided set.
    if (!subtract_all(residual, cube, scratch, budget)) {
      return {FastVerdict::kInconclusive, std::nullopt};
    }
  }
  if (!residual.empty() && contract.expect == Expectation::kAllow) {
    // Undecided packets fall to the implicit default deny.
    return {FastVerdict::kViolated, residual.front().low_corner()};
  }
  return {FastVerdict::kHolds, std::nullopt};
}

FastDecision decide_deny_overrides(const Policy& policy,
                                   const ConnectivityContract& contract,
                                   std::size_t budget) {
  const PacketCube domain = PacketCube::from_contract(contract);
  std::vector<PacketCube> scratch;
  if (contract.expect == Expectation::kAllow) {
    // Violated iff some contract packet is denied: it matches a deny rule,
    // or it matches no permit rule at all.
    for (const Rule& rule : policy.rules) {
      if (rule.action != Action::kDeny) continue;
      const PacketCube cube = PacketCube::from_rule(rule);
      if (!cube.valid()) continue;
      if (const auto hit = domain.intersect(cube)) {
        return {FastVerdict::kViolated, hit->low_corner()};
      }
    }
    std::vector<PacketCube> uncovered{domain};
    for (const Rule& rule : policy.rules) {
      if (rule.action != Action::kPermit) continue;
      if (uncovered.empty()) break;
      const PacketCube cube = PacketCube::from_rule(rule);
      if (!cube.valid()) continue;
      if (!subtract_all(uncovered, cube, scratch, budget)) {
        return {FastVerdict::kInconclusive, std::nullopt};
      }
    }
    if (!uncovered.empty()) {
      return {FastVerdict::kViolated, uncovered.front().low_corner()};
    }
    return {FastVerdict::kHolds, std::nullopt};
  }
  // Deny expectation: violated iff some contract packet is admitted — it
  // matches a permit rule and no deny rule.
  bool capped = false;
  for (const Rule& permit : policy.rules) {
    if (permit.action != Action::kPermit) continue;
    const PacketCube cube = PacketCube::from_rule(permit);
    if (!cube.valid()) continue;
    const auto seed = domain.intersect(cube);
    if (!seed) continue;
    std::vector<PacketCube> admitted{*seed};
    bool this_permit_capped = false;
    for (const Rule& deny : policy.rules) {
      if (deny.action != Action::kDeny) continue;
      if (admitted.empty()) break;
      const PacketCube deny_cube = PacketCube::from_rule(deny);
      if (!deny_cube.valid()) continue;
      if (!subtract_all(admitted, deny_cube, scratch, budget)) {
        this_permit_capped = true;
        break;
      }
    }
    if (this_permit_capped) {
      // Keep scanning: a later permit may still yield a definite witness,
      // but a clean "holds" is no longer provable on the fast path.
      capped = true;
      continue;
    }
    if (!admitted.empty()) {
      return {FastVerdict::kViolated, admitted.front().low_corner()};
    }
  }
  if (capped) return {FastVerdict::kInconclusive, std::nullopt};
  return {FastVerdict::kHolds, std::nullopt};
}

}  // namespace

FastEngine::FastEngine(FastEngineConfig config, obs::MetricsRegistry* metrics)
    : config_(config) {
  if (metrics != nullptr) {
    fastpath_hits_metric_ = &metrics->counter(
        "dcv_secguru_fastpath_hits_total",
        "Contract checks decided by interval algebra without Z3");
    smt_fallbacks_metric_ = &metrics->counter(
        "dcv_secguru_smt_fallbacks_total",
        "Contract checks that fell back to the Z3 engine");
    check_ns_ = &metrics->histogram(
        "dcv_secguru_check_ns", "SecGuru contract check latency (ns)");
  }
}

FastEngine::~FastEngine() = default;

void FastEngine::ensure_pool(std::size_t slots) {
  if (pool_.size() < slots) pool_.resize(slots);
}

Engine& FastEngine::fallback_engine(std::size_t slot) {
  // The pool vector is sized before workers start; each slot is owned by
  // exactly one worker, so lazy creation here is race-free.
  auto& engine = pool_[slot];
  if (!engine) engine = std::make_unique<Engine>();
  return *engine;
}

FastDecision FastEngine::try_decide(
    const Policy& policy, const ConnectivityContract& contract) const {
  const PacketCube domain = PacketCube::from_contract(contract);
  if (!domain.valid()) {
    // An empty contract filter holds vacuously under either expectation.
    return {FastVerdict::kHolds, std::nullopt};
  }
  switch (policy.semantics) {
    case PolicySemantics::kFirstApplicable:
      return decide_first_applicable(policy, contract,
                                     config_.max_residual_cubes);
    case PolicySemantics::kDenyOverrides:
      return decide_deny_overrides(policy, contract,
                                   config_.max_residual_cubes);
  }
  return {FastVerdict::kInconclusive, std::nullopt};
}

ContractCheckResult FastEngine::check_one(const Policy& policy,
                                          const ConnectivityContract& contract,
                                          std::size_t slot) {
  const auto start = std::chrono::steady_clock::now();
  ContractCheckResult result;
  const FastDecision decision = try_decide(policy, contract);
  if (decision.verdict == FastVerdict::kInconclusive) {
    smt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (smt_fallbacks_metric_ != nullptr) smt_fallbacks_metric_->inc();
    result = fallback_engine(slot).check(policy, contract);
  } else {
    fastpath_hits_.fetch_add(1, std::memory_order_relaxed);
    if (fastpath_hits_metric_ != nullptr) fastpath_hits_metric_->inc();
    result.contract_name = contract.name;
    result.holds = decision.verdict == FastVerdict::kHolds;
    if (!result.holds) {
      result.witness = decision.witness;
      // Same reporting convention as Engine::check: the rule that decides
      // the witness is the violator (nullopt = implicit default deny).
      result.violating_rule = evaluate(policy, *decision.witness).rule_index;
    }
  }
  if (check_ns_ != nullptr) {
    check_ns_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return result;
}

ContractCheckResult FastEngine::check(const Policy& policy,
                                      const ConnectivityContract& contract) {
  ensure_pool(1);
  return check_one(policy, contract, 0);
}

PolicyReport FastEngine::check_suite(const Policy& policy,
                                     const ContractSuite& suite,
                                     unsigned threads) {
  PolicyReport report;
  report.policy_name = policy.name;
  report.contracts_checked = suite.contracts.size();
  const std::size_t n = suite.contracts.size();
  if (n == 0) return report;
  const unsigned workers = std::max(
      1u, std::min<unsigned>(threads, static_cast<unsigned>(n)));
  ensure_pool(workers);

  std::vector<std::optional<ContractCheckResult>> failures(n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      auto result = check_one(policy, suite.contracts[i], 0);
      if (!result.holds) failures[i] = std::move(result);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&](std::size_t slot) {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        auto result = check_one(policy, suite.contracts[i], slot);
        if (!result.holds) failures[i] = std::move(result);
      }
    };
    {
      std::vector<std::jthread> pool;
      pool.reserve(workers - 1);
      for (unsigned t = 1; t < workers; ++t) pool.emplace_back(worker, t);
      worker(0);
    }
  }
  for (auto& failure : failures) {
    if (failure) report.failures.push_back(std::move(*failure));
  }
  return report;
}

IncrementalSuiteChecker::IncrementalSuiteChecker(FastEngine& engine,
                                                 ContractSuite suite,
                                                 obs::MetricsRegistry* metrics)
    : engine_(&engine), suite_(std::move(suite)) {
  contract_cubes_.reserve(suite_.contracts.size());
  for (const ConnectivityContract& contract : suite_.contracts) {
    contract_cubes_.push_back(PacketCube::from_contract(contract));
  }
  if (metrics != nullptr) {
    reverified_total_ = &metrics->counter(
        "dcv_secguru_contracts_reverified_total",
        "Contracts re-verified because a rule edit touched their filter");
    skipped_total_ = &metrics->counter(
        "dcv_secguru_contracts_skipped_total",
        "Contracts whose cached verdict was replayed across a rule edit");
  }
}

void IncrementalSuiteChecker::reset() {
  primed_ = false;
  results_.clear();
  cached_policy_ = Policy{};
}

IncrementalSuiteChecker::Outcome IncrementalSuiteChecker::check(
    const Policy& policy) {
  const std::size_t n = suite_.contracts.size();
  Outcome outcome;
  outcome.report.policy_name = policy.name;
  outcome.report.contracts_checked = n;

  // Diff the rule lists: the longest common prefix, then the longest
  // common suffix of the remainder; both versions of everything in between
  // are the edit. Exact for single-rule insert/delete/modify; degrades to
  // "everything changed" (a full re-check) on wholesale rewrites.
  std::vector<PacketCube> changed;
  bool full = !primed_ || policy.semantics != cached_policy_.semantics;
  if (!full) {
    const auto& old_rules = cached_policy_.rules;
    const auto& new_rules = policy.rules;
    std::size_t prefix = 0;
    while (prefix < old_rules.size() && prefix < new_rules.size() &&
           old_rules[prefix] == new_rules[prefix]) {
      ++prefix;
    }
    std::size_t suffix = 0;
    while (suffix + prefix < old_rules.size() &&
           suffix + prefix < new_rules.size() &&
           old_rules[old_rules.size() - 1 - suffix] ==
               new_rules[new_rules.size() - 1 - suffix]) {
      ++suffix;
    }
    for (std::size_t i = prefix; i + suffix < old_rules.size(); ++i) {
      changed.push_back(PacketCube::from_rule(old_rules[i]));
    }
    for (std::size_t i = prefix; i + suffix < new_rules.size(); ++i) {
      changed.push_back(PacketCube::from_rule(new_rules[i]));
    }
  }

  std::vector<ContractCheckResult> fresh(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool affected = full;
    if (!affected) {
      for (const PacketCube& cube : changed) {
        if (cube.valid() && contract_cubes_[i].valid() &&
            cube.overlaps(contract_cubes_[i])) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      fresh[i] = engine_->check(policy, suite_.contracts[i]);
      ++outcome.reverified;
    } else {
      fresh[i] = results_[i];
      ++outcome.skipped;
    }
    if (!fresh[i].holds) outcome.report.failures.push_back(fresh[i]);
  }
  if (reverified_total_ != nullptr) reverified_total_->inc(outcome.reverified);
  if (skipped_total_ != nullptr) skipped_total_->inc(outcome.skipped);

  results_ = std::move(fresh);
  cached_policy_ = policy;
  primed_ = true;
  return outcome;
}

}  // namespace dcv::secguru
