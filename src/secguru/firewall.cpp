#include "secguru/firewall.hpp"

namespace dcv::secguru {

namespace {

Rule deny_dst(const net::Prefix& dst, std::string comment) {
  return Rule{.action = Action::kDeny,
              .protocol = net::ProtocolSpec::any(),
              .src = net::Prefix::default_route(),
              .src_ports = net::PortRange::any(),
              .dst = dst,
              .dst_ports = net::PortRange::any(),
              .comment = std::move(comment)};
}

Rule allow_dst(const net::Prefix& dst, std::string comment) {
  return Rule{.action = Action::kPermit,
              .protocol = net::ProtocolSpec::any(),
              .src = net::Prefix::default_route(),
              .src_ports = net::PortRange::any(),
              .dst = dst,
              .dst_ports = net::PortRange::any(),
              .comment = std::move(comment)};
}

}  // namespace

Policy instantiate_common_firewall(const VmInstance& vm,
                                   const InfrastructureEndpoints& infra,
                                   const TemplateBugs& bugs) {
  Policy policy{.name = "fw-" + vm.name,
                .semantics = PolicySemantics::kDenyOverrides,
                .rules = {}};
  if (!bugs.omit_infrastructure_isolation) {
    for (const net::Prefix& range : infra.ranges) {
      policy.rules.push_back(
          deny_dst(range, "no guest access to infrastructure"));
    }
  }
  if (!bugs.omit_tenant_isolation) {
    for (const net::Prefix& other :
         net::prefix_difference(infra.tenant_space, vm.vnet)) {
      policy.rules.push_back(deny_dst(other, "tenant isolation"));
    }
  }
  policy.rules.push_back(allow_dst(vm.vnet, "own virtual network"));
  policy.rules.push_back(
      allow_dst(net::Prefix::default_route(), "outbound internet"));
  for (std::size_t i = 0; i < policy.rules.size(); ++i) {
    policy.rules[i].line = static_cast<int>(i + 1);
  }
  return policy;
}

ContractSuite common_restriction_contracts(
    const VmInstance& vm, const InfrastructureEndpoints& infra) {
  ContractSuite suite{.name = "common-restrictions:" + vm.name,
                      .contracts = {}};
  for (const net::Prefix& range : infra.ranges) {
    suite.contracts.push_back(ConnectivityContract{
        .name = "no-infrastructure-access " + range.to_string(),
        .expect = Expectation::kDeny,
        .protocol = net::ProtocolSpec::any(),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = range,
        .dst_ports = net::PortRange::any()});
  }
  for (const net::Prefix& other :
       net::prefix_difference(infra.tenant_space, vm.vnet)) {
    suite.contracts.push_back(ConnectivityContract{
        .name = "tenant-isolation " + other.to_string(),
        .expect = Expectation::kDeny,
        .protocol = net::ProtocolSpec::any(),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = other,
        .dst_ports = net::PortRange::any()});
  }
  suite.contracts.push_back(ConnectivityContract{
      .name = "intra-vnet-connectivity",
      .expect = Expectation::kAllow,
      .protocol = net::ProtocolSpec::any(),
      .src = net::Prefix::default_route(),
      .src_ports = net::PortRange::any(),
      .dst = vm.vnet,
      .dst_ports = net::PortRange::any()});
  suite.contracts.push_back(ConnectivityContract{
      .name = "internet-connectivity",
      .expect = Expectation::kAllow,
      .protocol = net::ProtocolSpec::tcp(),
      .src = net::Prefix::default_route(),
      .src_ports = net::PortRange::any(),
      .dst = net::Prefix::parse("8.8.8.0/24"),
      .dst_ports = net::PortRange::exactly(443)});
  return suite;
}

DeploymentResult FirewallDeploymentGate::validate(
    const VmInstance& vm, const Policy& firewall) const {
  DeploymentResult result;
  result.report =
      engine_->check_suite(firewall, common_restriction_contracts(vm, infra_));
  result.deployable = result.report.ok();
  return result;
}

}  // namespace dcv::secguru
