#pragma once

#include <string>
#include <string_view>

#include "secguru/rule.hpp"

namespace dcv::secguru {

/// Parses an access-control list in the Cisco-IOS-style syntax of Figure 8:
///
///   remark Isolating private addresses
///   deny ip 10.0.0.0/8 any
///   permit ip any 104.208.32.0/24
///   deny tcp any any eq 445
///   deny 53 any any
///
/// Grammar per line (blank lines ignored):
///   remark <free text>                    -- attaches to following rules
///   <action> <protocol> <addr> [<ports>] <addr> [<ports>]
/// where <action>   ::= permit | deny
///       <protocol> ::= ip | tcp | udp | icmp | <number>
///       <addr>     ::= any | host <ip> | <ip>/<len>
///       <ports>    ::= eq <port> | range <lo> <hi>
///
/// The returned policy uses first-applicable semantics (§3.1: "Both
/// policies have the first-applicable rule semantics"). Throws
/// dcv::ParseError with a line number on malformed input.
[[nodiscard]] Policy parse_acl(std::string_view text,
                               std::string name = "acl");

/// Renders a policy back to the Figure 8 syntax (remarks are emitted before
/// the first rule that carries them). parse_acl(write_acl(p)) == p up to
/// line numbers.
[[nodiscard]] std::string write_acl(const Policy& policy);

}  // namespace dcv::secguru
