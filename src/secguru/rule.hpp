#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "net/header.hpp"
#include "net/prefix.hpp"

namespace dcv::secguru {

/// Rule actions: "The action is either Permit or Deny. They indicate
/// whether packets matching the range should be allowed through the
/// firewall" (§3.1).
enum class Action : std::uint8_t {
  kPermit,
  kDeny,
};

[[nodiscard]] std::string_view to_string(Action action);
std::ostream& operator<<(std::ostream& os, Action action);

/// The two rule-combination conventions of §3.2.
enum class PolicySemantics : std::uint8_t {
  /// Definition 3.1: the first matching rule decides; default deny.
  /// Network device ACLs and NSGs use this convention.
  kFirstApplicable,
  /// Definition 3.2: a packet is admitted if some Allow rule applies and no
  /// Deny rule applies. Azure's distributed host firewalls use this (§3.5).
  kDenyOverrides,
};

[[nodiscard]] std::string_view to_string(PolicySemantics semantics);

/// One connectivity-policy rule: a packet filter over the 5-tuple plus an
/// action. Address ranges are CIDR prefixes ("any" is 0.0.0.0/0); ports are
/// closed ranges ("Any encodes the range from 0 to 2^16-1"); the protocol
/// is either a concrete IP protocol number or the `ip` wildcard.
struct Rule {
  Action action = Action::kDeny;
  net::ProtocolSpec protocol;
  net::Prefix src;
  net::PortRange src_ports;
  net::Prefix dst;
  net::PortRange dst_ports;
  /// Free-form description: the preceding `remark` in an ACL, the rule name
  /// in an NSG.
  std::string comment;
  /// Source line (ACL) or priority (NSG) for reporting.
  int line = 0;

  /// Concrete filter evaluation: does the rule's filter match this packet?
  [[nodiscard]] bool matches(const net::PacketHeader& packet) const {
    return protocol.matches(packet.protocol) && src.contains(packet.src_ip) &&
           src_ports.contains(packet.src_port) && dst.contains(packet.dst_ip) &&
           dst_ports.contains(packet.dst_port);
  }

  /// Cisco-IOS-style rendering, e.g. "deny tcp any any eq 445".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Rule&, const Rule&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rule& rule);

/// An ordered connectivity policy: a named rule list plus the convention
/// for combining the rules.
struct Policy {
  std::string name;
  PolicySemantics semantics = PolicySemantics::kFirstApplicable;
  std::vector<Rule> rules;

  [[nodiscard]] std::size_t size() const { return rules.size(); }

  friend bool operator==(const Policy&, const Policy&) = default;
};

/// Concrete policy evaluation, the ground truth the symbolic engine is
/// tested against. Returns whether the packet is admitted and, for
/// first-applicable policies, the index of the deciding rule (nullopt when
/// the implicit default deny applied).
struct Decision {
  bool allowed = false;
  std::optional<std::size_t> rule_index;
};

[[nodiscard]] Decision evaluate(const Policy& policy,
                                const net::PacketHeader& packet);

}  // namespace dcv::secguru
