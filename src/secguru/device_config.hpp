#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "secguru/rule.hpp"
#include "topology/device.hpp"

namespace dcv::secguru {

/// One interface stanza of a device configuration. Unlike a CIDR prefix,
/// an interface address keeps its host bits (192.0.2.1/31).
struct InterfaceAddress {
  net::Ipv4Address address;
  int prefix_length = 32;

  [[nodiscard]] std::string to_string() const {
    return address.to_string() + "/" + std::to_string(prefix_length);
  }

  friend bool operator==(const InterfaceAddress&,
                         const InterfaceAddress&) = default;
};

struct InterfaceConfig {
  std::string name;
  std::string description;
  std::optional<InterfaceAddress> address;  // "ip address <ip>/<len>"
  std::string acl_in;                       // "ip access-group <name> in"
  std::string acl_out;                      // "ip access-group <name> out"
  bool shutdown = false;

  friend bool operator==(const InterfaceConfig&,
                         const InterfaceConfig&) = default;
};

/// One EBGP neighbor of the "router bgp" stanza.
struct BgpNeighborConfig {
  net::Ipv4Address address;
  topo::Asn remote_as = 0;
  bool shutdown = false;  // "neighbor <ip> shutdown" — the §2.6.2 drift

  friend bool operator==(const BgpNeighborConfig&,
                         const BgpNeighborConfig&) = default;
};

/// A network device configuration in the Cisco-IOS-like dialect that the
/// Figure 8 ACL is written in. This is the object SecGuru consumes in
/// production: "the policy is the configuration of the network device and
/// the name of the ACL that it contains and needs to be analyzed" (§3.2).
struct DeviceConfig {
  std::string hostname;
  /// Named ACLs ("ip access-list extended <name>"), first-applicable.
  std::map<std::string, Policy> acls;
  std::vector<InterfaceConfig> interfaces;
  std::optional<topo::Asn> local_as;
  std::vector<BgpNeighborConfig> bgp_neighbors;

  /// The named ACL, or nullptr.
  [[nodiscard]] const Policy* find_acl(std::string_view name) const;

  /// The interface a given ACL is bound to (inbound), or nullptr.
  [[nodiscard]] const InterfaceConfig* interface_with_acl(
      std::string_view acl_name) const;
};

/// Parses a device configuration:
///
///   hostname edge-1
///   !
///   ip access-list extended EDGE-IN
///    remark Isolating private addresses
///    deny ip 10.0.0.0/8 any
///    permit tcp any 104.208.32.0/20 eq 443
///   !
///   interface Ethernet1
///    description uplink
///    ip address 192.0.2.1/31
///    ip access-group EDGE-IN in
///   !
///   router bgp 65535
///    neighbor 192.0.2.0 remote-as 65100
///    neighbor 192.0.2.2 remote-as 65101
///    neighbor 192.0.2.2 shutdown
///
/// Throws dcv::ParseError with a line number on malformed input.
[[nodiscard]] DeviceConfig parse_device_config(std::string_view text);

/// Renders the configuration back (round-trip up to blank-line layout).
[[nodiscard]] std::string write_device_config(const DeviceConfig& config);

}  // namespace dcv::secguru
