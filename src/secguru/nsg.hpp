#pragma once

#include <map>
#include <string>
#include <string_view>

#include "secguru/rule.hpp"

namespace dcv::secguru {

/// A network security group rule (Figure 9): like an ACL rule, but ordering
/// is explicit — "For NSG, the priority field specifies the order: smaller
/// numbers have higher priority" (§3.1).
struct NsgRule {
  int priority = 0;
  std::string name;
  Rule rule;  // action + packet filter; rule.comment mirrors `name`

  friend bool operator==(const NsgRule&, const NsgRule&) = default;
};

/// Service tags: symbolic names for address ranges usable in NSG source /
/// destination columns (e.g. "VirtualNetwork", "Internet").
using ServiceTags = std::map<std::string, net::Prefix, std::less<>>;

/// The default tag set used by examples and tests.
[[nodiscard]] ServiceTags default_service_tags();

/// A network security group: rules applied in ascending priority order.
class Nsg {
 public:
  Nsg() = default;
  explicit Nsg(std::string name) : name_(std::move(name)) {}

  /// Adds or replaces the rule at the given priority.
  void upsert(NsgRule rule);

  /// Removes the rule at the given priority; returns whether one existed.
  bool remove(int priority);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// Rules in ascending priority order.
  [[nodiscard]] const std::map<int, NsgRule>& rules() const { return rules_; }

  /// The equivalent ordered first-applicable policy (§3.1: "The syntax of
  /// the two policies vary, but semantics is similar"); this is what the
  /// verification engine consumes.
  [[nodiscard]] Policy to_policy() const;

  friend bool operator==(const Nsg&, const Nsg&) = default;

 private:
  std::string name_;
  std::map<int, NsgRule> rules_;
};

/// Parses the tabular NSG format of Figure 9, one rule per line:
///
///   priority,name,source,src_ports,destination,dst_ports,protocol,access
///   100,AllowVnetInbound,VirtualNetwork,Any,VirtualNetwork,Any,Any,Allow
///   4096,DenyAllInbound,Any,Any,Any,Any,Any,Deny
///
/// A leading header line is skipped if present. Sources/destinations may be
/// "Any", CIDR prefixes, bare addresses, or service-tag names resolved via
/// `tags`. Ports may be "Any", a number, or "lo-hi". Protocol is
/// Any/Tcp/Udp/Icmp or a number. Access is Allow or Deny.
[[nodiscard]] Nsg parse_nsg(std::string_view text, std::string name = "nsg",
                            const ServiceTags& tags = default_service_tags());

/// Renders an NSG back to the tabular format (with header).
[[nodiscard]] std::string write_nsg(const Nsg& nsg);

}  // namespace dcv::secguru
