#pragma once

#include <string>
#include <vector>

#include "net/header.hpp"
#include "net/prefix.hpp"

namespace dcv::secguru {

/// What a contract expects of the traffic it describes.
enum class Expectation : std::uint8_t {
  kAllow,  // "a list of services that must be reachable on port 80 ..."
  kDeny,   // "private datacenter addresses must not be reachable ..."
};

[[nodiscard]] std::string_view to_string(Expectation expectation);

/// A connectivity contract (§3.2): "Each contract, similar to a policy
/// rule, describes a packet filter and expectation of whether the packets
/// matching the description must be permitted or denied." Contracts act as
/// regression tests for a policy (§3.3).
struct ConnectivityContract {
  std::string name;
  Expectation expect = Expectation::kDeny;
  net::ProtocolSpec protocol;
  net::Prefix src;
  net::PortRange src_ports;
  net::Prefix dst;
  net::PortRange dst_ports;

  /// True iff the packet is inside the contract's filter.
  [[nodiscard]] bool covers(const net::PacketHeader& packet) const {
    return protocol.matches(packet.protocol) && src.contains(packet.src_ip) &&
           src_ports.contains(packet.src_port) &&
           dst.contains(packet.dst_ip) && dst_ports.contains(packet.dst_port);
  }

  friend bool operator==(const ConnectivityContract&,
                         const ConnectivityContract&) = default;
};

/// A named suite of contracts, used as the pre/post-check regression suite
/// in change workflows (§3.3).
struct ContractSuite {
  std::string name;
  std::vector<ConnectivityContract> contracts;
};

}  // namespace dcv::secguru
