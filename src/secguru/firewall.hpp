#pragma once

#include <string>
#include <vector>

#include "secguru/contracts.hpp"
#include "secguru/engine.hpp"
#include "secguru/rule.hpp"

namespace dcv::secguru {

/// A guest virtual machine for which a distributed host firewall is
/// instantiated (§3.5).
struct VmInstance {
  std::string name;
  /// The tenant's virtual network the VM belongs to.
  net::Prefix vnet;
};

/// Infrastructure endpoints every guest must be walled off from.
struct InfrastructureEndpoints {
  std::vector<net::Prefix> ranges = {
      net::Prefix::parse("168.63.129.0/24"),     // platform services
      net::Prefix::parse("169.254.169.254/32"),  // instance metadata
      net::Prefix::parse("100.64.0.0/10"),       // host management fabric
  };
  /// The address space shared by all tenant virtual networks; guests must
  /// be isolated from every tenant network but their own.
  net::Prefix tenant_space = net::Prefix::parse("10.0.0.0/8");
};

/// Knobs modeling the §3.5 failure mode: "bugs in the automation or policy
/// changes have resulted in restrictions being omitted in deployments."
struct TemplateBugs {
  bool omit_infrastructure_isolation = false;
  bool omit_tenant_isolation = false;
};

/// Derives a VM's firewall configuration from the common template. The
/// policy uses deny-overrides semantics ("The firewall policies described
/// in the configuration file follow the deny overrides semantics"):
///
///   Deny  guest -> every infrastructure range
///   Deny  guest -> tenant space minus the VM's own virtual network
///   Allow guest -> its own virtual network
///   Allow guest -> anywhere (Internet)
///
/// The tenant-isolation denies use the CIDR decomposition of
/// "tenant space \ own vnet" so that, under deny-overrides, intra-vnet
/// traffic survives while every other tenant network is blocked.
[[nodiscard]] Policy instantiate_common_firewall(
    const VmInstance& vm, const InfrastructureEndpoints& infra = {},
    const TemplateBugs& bugs = {});

/// The security-policy contracts for the common restrictions: guests have
/// no access to infrastructure services, are isolated from other tenants,
/// and keep intra-vnet plus Internet connectivity.
[[nodiscard]] ContractSuite common_restriction_contracts(
    const VmInstance& vm, const InfrastructureEndpoints& infra = {});

/// Result of gating one firewall deployment.
struct DeploymentResult {
  bool deployable = false;
  PolicyReport report;
};

/// The deployment gate of §3.5: "incorporated the checking of policies in
/// automation that gates deployments of policies to only those that pass
/// validation. Incorporating validation as part of the deployment process
/// eradicated the previous case when restrictions would accidentally be
/// omitted."
class FirewallDeploymentGate {
 public:
  explicit FirewallDeploymentGate(Engine& engine,
                                  InfrastructureEndpoints infra = {})
      : engine_(&engine), infra_(std::move(infra)) {}

  [[nodiscard]] DeploymentResult validate(const VmInstance& vm,
                                          const Policy& firewall) const;

 private:
  Engine* engine_;
  InfrastructureEndpoints infra_;
};

}  // namespace dcv::secguru
