#include "secguru/engine_pool.hpp"

namespace dcv::secguru {

FastEnginePool::FastEnginePool(std::size_t size, FastEngineConfig config,
                               obs::MetricsRegistry* metrics) {
  if (size == 0) size = 1;
  engines_.reserve(size);
  free_slots_.reserve(size);
  for (std::size_t slot = 0; slot < size; ++slot) {
    engines_.push_back(std::make_unique<FastEngine>(config, metrics));
    free_slots_.push_back(size - 1 - slot);  // hand out slot 0 first
  }
  if (metrics != nullptr) {
    leased_gauge_ = &metrics->gauge("dcv_gate_nsg_engines_leased",
                                    "FastEngines currently leased from the "
                                    "NSG-check pool");
  }
}

FastEnginePool::Lease FastEnginePool::acquire() {
  std::unique_lock lock(mutex_);
  free_cv_.wait(lock, [this] { return !free_slots_.empty(); });
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  if (leased_gauge_ != nullptr) {
    leased_gauge_->set(
        static_cast<double>(engines_.size() - free_slots_.size()));
  }
  return Lease(this, engines_[slot].get(), slot);
}

std::size_t FastEnginePool::available() const {
  const std::lock_guard lock(mutex_);
  return free_slots_.size();
}

void FastEnginePool::release(std::size_t slot) {
  {
    const std::lock_guard lock(mutex_);
    free_slots_.push_back(slot);
    if (leased_gauge_ != nullptr) {
      leased_gauge_->set(
          static_cast<double>(engines_.size() - free_slots_.size()));
    }
  }
  free_cv_.notify_one();
}

FastEnginePool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(slot_);
}

}  // namespace dcv::secguru
