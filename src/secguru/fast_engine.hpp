#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/header.hpp"
#include "net/interval.hpp"
#include "obs/metrics.hpp"
#include "secguru/contracts.hpp"
#include "secguru/engine.hpp"
#include "secguru/rule.hpp"

namespace dcv::secguru {

/// A 5-dimensional hyperrectangle of packet headers: the set of packets a
/// rule or contract filter matches. Every filter in the policy language
/// (CIDR prefixes, closed port ranges, protocol number or wildcard) is a
/// product of per-dimension intervals, so any rule/contract is exactly one
/// cube — the concrete domain the fast (non-SMT) engine computes over.
struct PacketCube {
  net::AddressInterval src;
  net::PortRange src_ports;
  net::AddressInterval dst;
  net::PortRange dst_ports;
  /// Closed protocol-number interval; the `ip` wildcard is [0, 255].
  std::uint8_t proto_lo = 0;
  std::uint8_t proto_hi = 0xFF;

  [[nodiscard]] static PacketCube from_rule(const Rule& rule);
  [[nodiscard]] static PacketCube from_contract(
      const ConnectivityContract& contract);

  /// True iff every dimension is non-empty (lo <= hi).
  [[nodiscard]] bool valid() const;

  /// The overlap of the two cubes, or nullopt when they are disjoint.
  [[nodiscard]] std::optional<PacketCube> intersect(
      const PacketCube& other) const;

  [[nodiscard]] bool overlaps(const PacketCube& other) const {
    return intersect(other).has_value();
  }

  [[nodiscard]] bool contains(const net::PacketHeader& packet) const;

  /// A concrete packet inside the cube (the per-dimension low corner) —
  /// the witness extracted when the cube demonstrates a violation.
  [[nodiscard]] net::PacketHeader low_corner() const;

  /// Appends onto `out` disjoint cubes exactly covering `this \ other`
  /// (at most 10: two per dimension). Appends `*this` unchanged when the
  /// cubes are disjoint; appends nothing when `other` covers this cube.
  void subtract(const PacketCube& other, std::vector<PacketCube>& out) const;

  [[nodiscard]] std::string to_string() const;
};

/// Verdict of the non-SMT decision procedure alone.
enum class FastVerdict : std::uint8_t {
  kHolds,
  kViolated,
  /// The residual-cube set exceeded the configured budget before the
  /// check completed; the caller must fall back to the Z3 engine.
  kInconclusive,
};

struct FastDecision {
  FastVerdict verdict = FastVerdict::kInconclusive;
  std::optional<net::PacketHeader> witness;
};

struct FastEngineConfig {
  /// Residual-cube budget per contract check. Interval subtraction can
  /// fragment the undecided region combinatorially on adversarial rule
  /// sets; past this budget the check is abandoned as inconclusive and
  /// the contract goes to Z3 instead. Real ACL/NSG workloads stay far
  /// below the default.
  std::size_t max_residual_cubes = 4096;
};

/// The SecGuru fast path: decides contracts by concrete interval set
/// algebra over 5-tuple hyperrectangles, falling back to the Z3-backed
/// `Engine` only when the residual computation exceeds its cube budget.
///
/// Both combination conventions are supported exactly:
///
///  * first-applicable (Definition 3.1): walk the rules in order keeping
///    the set of contract packets not yet decided (as disjoint cubes). A
///    rule whose action contradicts the expectation and overlaps the
///    undecided set yields an immediate witness; a rule consistent with it
///    is subtracted. Packets surviving every rule hit the implicit default
///    deny.
///  * deny-overrides (Definition 3.2): a packet is admitted iff some
///    permit matches and no deny does, so allow contracts check deny
///    overlap plus permit coverage, and deny contracts check each
///    permit-cube residue after subtracting every deny.
///
/// Like `Engine`, a FastEngine instance must not be used from several
/// threads at once; unlike Engine, it parallelizes internally —
/// check_suite shards contracts across worker threads, each with its own
/// pooled Z3 fallback engine (one per thread, since Engine is documented
/// not thread-safe).
class FastEngine {
 public:
  explicit FastEngine(FastEngineConfig config = {},
                      obs::MetricsRegistry* metrics = nullptr);
  ~FastEngine();

  FastEngine(const FastEngine&) = delete;
  FastEngine& operator=(const FastEngine&) = delete;

  /// Checks one contract; identical verdicts to Engine::check (witness
  /// packets may differ — any packet in the violating region is a valid
  /// witness, and both engines report the rule that decides theirs).
  [[nodiscard]] ContractCheckResult check(const Policy& policy,
                                          const ConnectivityContract& contract);

  /// Checks a whole suite, sharding contracts across `threads` workers.
  /// Failures are reported in contract order regardless of thread count.
  [[nodiscard]] PolicyReport check_suite(const Policy& policy,
                                         const ContractSuite& suite,
                                         unsigned threads = 1);

  /// The non-SMT decision procedure alone — never touches Z3. Exposed for
  /// tests and benches; `check` is this plus the fallback and reporting.
  [[nodiscard]] FastDecision try_decide(
      const Policy& policy, const ConnectivityContract& contract) const;

  /// Checks decided by interval algebra alone (no Z3) so far.
  [[nodiscard]] std::uint64_t fastpath_hits() const {
    return fastpath_hits_.load(std::memory_order_relaxed);
  }
  /// Checks that fell back to the Z3 engine so far.
  [[nodiscard]] std::uint64_t smt_fallbacks() const {
    return smt_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  /// One Z3 engine per worker slot, created on first fallback. Slots are
  /// touched by exactly one worker during a parallel section, so access
  /// needs no lock once the pool vector is sized (done before spawning).
  Engine& fallback_engine(std::size_t slot);
  void ensure_pool(std::size_t slots);

  [[nodiscard]] ContractCheckResult check_one(
      const Policy& policy, const ConnectivityContract& contract,
      std::size_t slot);

  FastEngineConfig config_;
  std::vector<std::unique_ptr<Engine>> pool_;
  std::atomic<std::uint64_t> fastpath_hits_{0};
  std::atomic<std::uint64_t> smt_fallbacks_{0};
  obs::Counter* fastpath_hits_metric_ = nullptr;
  obs::Counter* smt_fallbacks_metric_ = nullptr;
  obs::Histogram* check_ns_ = nullptr;
};

/// Incremental re-checking of one contract suite across rule edits — the
/// IncrementalValidator playbook applied to SecGuru: between runs only the
/// contracts whose filter cube intersects an edited rule's cube (old or new
/// version) can change verdict, so everything else replays its cached
/// result. Edits are detected by diffing the rule lists (longest common
/// prefix + suffix of content-equal rules; everything between counts as
/// changed), which is exact for the 1-rule insert/delete/modify edits of a
/// change workflow. A semantics or wholesale change degrades to a full
/// re-check, never to a wrong answer.
class IncrementalSuiteChecker {
 public:
  /// `metrics`, when set, receives dcv_secguru_contracts_{reverified,
  /// skipped}_total and must outlive the checker.
  IncrementalSuiteChecker(FastEngine& engine, ContractSuite suite,
                          obs::MetricsRegistry* metrics = nullptr);

  struct Outcome {
    PolicyReport report;
    std::size_t reverified = 0;
    std::size_t skipped = 0;
  };

  /// Checks the suite against `policy`, re-verifying only contracts whose
  /// candidate rule set intersects the diff from the previous call.
  [[nodiscard]] Outcome check(const Policy& policy);

  /// Drops cached verdicts; the next check re-verifies every contract.
  void reset();

  [[nodiscard]] const ContractSuite& suite() const { return suite_; }

 private:
  FastEngine* engine_;
  ContractSuite suite_;
  std::vector<PacketCube> contract_cubes_;
  Policy cached_policy_;
  bool primed_ = false;
  std::vector<ContractCheckResult> results_;  // one per contract
  obs::Counter* reverified_total_ = nullptr;
  obs::Counter* skipped_total_ = nullptr;
};

}  // namespace dcv::secguru
