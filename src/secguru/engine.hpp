#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "secguru/contracts.hpp"
#include "secguru/rule.hpp"

namespace dcv::secguru {

/// Outcome of checking one contract against one policy (§3.2):
///
///  * holds == true: "C -> P is valid: the contract is preserved by the
///    policy" (resp. C ∧ P unsatisfiable, for deny contracts).
///  * holds == false: a witness packet demonstrates the discrepancy, and
///    "the error report also identifies the rule in the policy that
///    violated the contract" — the deciding rule for the witness (nullopt
///    when the implicit default deny decided).
struct ContractCheckResult {
  std::string contract_name;
  bool holds = false;
  std::optional<net::PacketHeader> witness;
  std::optional<std::size_t> violating_rule;
};

/// Aggregate report for a contract suite: "The report contains a list of
/// invariants that failed ... The list is empty if all invariants pass"
/// (§3.4).
struct PolicyReport {
  std::string policy_name;
  std::size_t contracts_checked = 0;
  std::vector<ContractCheckResult> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// The SecGuru verification engine (Figure 10): encodes policies (under
/// either combination convention, Definitions 3.1 and 3.2) and contracts as
/// bit-vector predicates and extracts answers through Z3 satisfiability
/// checking. "Modeling policy analysis questions as logical formulas allows
/// analysis to be semantic and agnostic to the low-level device syntax."
/// One Engine owns one Z3 context, reused across checks; an Engine is
/// therefore not thread-safe — use one per thread.
class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Checks one contract against a policy.
  [[nodiscard]] ContractCheckResult check(
      const Policy& policy, const ConnectivityContract& contract);

  /// Checks a whole suite, collecting failures.
  [[nodiscard]] PolicyReport check_suite(const Policy& policy,
                                         const ContractSuite& suite);

  /// Semantic equivalence: returns a packet on which the two policies
  /// disagree, or nullopt when they admit exactly the same traffic. Used to
  /// prove refactoring steps behavior-preserving (§3.3).
  [[nodiscard]] std::optional<net::PacketHeader> difference_witness(
      const Policy& before, const Policy& after);

  /// One behavioral difference between two policies: a concrete packet,
  /// both verdicts, and the rules that decided each side (nullopt = the
  /// implicit default deny).
  struct DiffWitness {
    net::PacketHeader packet;
    bool before_allowed = false;
    bool after_allowed = false;
    std::optional<std::size_t> before_rule;
    std::optional<std::size_t> after_rule;
  };

  /// Enumerates distinct behavioral differences, one witness per pair of
  /// deciding rules: after each witness, the region where that same rule
  /// pair decides is excluded and the query re-runs, so each witness
  /// explains a different interaction. Stops at `max_witnesses` or when no
  /// difference remains. Empty result == semantically equivalent.
  [[nodiscard]] std::vector<DiffWitness> semantic_diff(
      const Policy& before, const Policy& after,
      std::size_t max_witnesses = 8);

  /// Semantic subsumption: traffic admitted by `narrow` that `wide`
  /// rejects, or nullopt if wide admits everything narrow admits.
  [[nodiscard]] std::optional<net::PacketHeader> permitted_beyond(
      const Policy& narrow, const Policy& wide);

  /// Indices of redundant rules — the "unnecessary or redundant" rules
  /// targeted by ACL refactoring (§3.3). Under first-applicable, a rule is
  /// shadowed when earlier rules match everything it matches, so it can
  /// never decide a packet. Under deny-overrides (where order is
  /// irrelevant), a rule is shadowed when same-action rules earlier in the
  /// list cover its filter — removing it cannot change any verdict; of N
  /// identical copies, every copy but the first is reported.
  [[nodiscard]] std::vector<std::size_t> shadowed_rules(const Policy& policy);

 private:
  struct Impl;
  /// Owns the Z3 context (kept out of this header via unique_ptr + Impl).
  std::unique_ptr<Impl> impl_;
  Impl& impl();
};

}  // namespace dcv::secguru
