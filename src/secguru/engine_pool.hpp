#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "secguru/fast_engine.hpp"

namespace dcv::secguru {

/// A fixed pool of FastEngines with blocking lease semantics.
///
/// A FastEngine (like the Z3 Engine it falls back to) must not be used
/// from several threads at once, but the change-gate server runs NSG
/// checks on concurrent worker threads. The pool keeps `size` engines warm
/// — each with its own lazily created Z3 fallback context — and hands them
/// out one caller at a time: acquire() blocks until an engine is free and
/// returns an RAII lease that releases it on destruction. Engine count,
/// not caller count, bounds Z3-context memory.
class FastEnginePool {
 public:
  explicit FastEnginePool(std::size_t size, FastEngineConfig config = {},
                          obs::MetricsRegistry* metrics = nullptr);

  FastEnginePool(const FastEnginePool&) = delete;
  FastEnginePool& operator=(const FastEnginePool&) = delete;

  /// Exclusive hold on one pooled engine; returns it on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), engine_(other.engine_), slot_(other.slot_) {
      other.pool_ = nullptr;
      other.engine_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] FastEngine& operator*() const { return *engine_; }
    [[nodiscard]] FastEngine* operator->() const { return engine_; }

   private:
    friend class FastEnginePool;
    Lease(FastEnginePool* pool, FastEngine* engine, std::size_t slot)
        : pool_(pool), engine_(engine), slot_(slot) {}

    FastEnginePool* pool_;
    FastEngine* engine_;
    std::size_t slot_;
  };

  /// Blocks until an engine is free. Leases are served in wake-up order;
  /// with the gate's bounded worker pool the wait is bounded by one NSG
  /// check per pooled engine.
  [[nodiscard]] Lease acquire();

  [[nodiscard]] std::size_t size() const { return engines_.size(); }
  /// Engines not currently leased (approximate under concurrency).
  [[nodiscard]] std::size_t available() const;

 private:
  void release(std::size_t slot);

  std::vector<std::unique_ptr<FastEngine>> engines_;
  mutable std::mutex mutex_;
  std::condition_variable free_cv_;
  std::vector<std::size_t> free_slots_;
  obs::Gauge* leased_gauge_ = nullptr;
};

}  // namespace dcv::secguru
