#include "secguru/contracts_io.hpp"

#include <charconv>
#include <sstream>

#include "net/error.hpp"

namespace dcv::secguru {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const auto token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("contracts line " + std::to_string(line) + ": " +
                   message);
}

std::uint16_t parse_port(std::string_view token, int line) {
  unsigned value = 0;
  const auto [next, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || next != token.data() + token.size() ||
      value > 0xFFFF) {
    fail(line, "bad port '" + std::string(token) + "'");
  }
  return static_cast<std::uint16_t>(value);
}

net::Prefix parse_address(std::string_view& rest, int line) {
  const auto token = next_token(rest);
  if (token.empty()) fail(line, "missing address");
  if (token == "any") return net::Prefix::default_route();
  if (token == "host") {
    const auto ip = next_token(rest);
    if (ip.empty()) fail(line, "missing host address");
    return net::Prefix(net::Ipv4Address::parse(ip), 32);
  }
  return net::Prefix::parse(token);
}

net::PortRange parse_ports(std::string_view& rest, int line) {
  const auto saved = rest;
  std::string_view probe = rest;
  const auto token = next_token(probe);
  if (token == "eq") {
    rest = probe;
    return net::PortRange::exactly(parse_port(next_token(rest), line));
  }
  if (token == "range") {
    rest = probe;
    const auto lo = parse_port(next_token(rest), line);
    const auto hi = parse_port(next_token(rest), line);
    if (lo > hi) fail(line, "inverted port range");
    return net::PortRange(lo, hi);
  }
  rest = saved;
  return net::PortRange::any();
}

std::string address_text(const net::Prefix& prefix) {
  if (prefix.is_default()) return "any";
  if (prefix.length() == 32) return "host " + prefix.network().to_string();
  return prefix.to_string();
}

std::string port_text(const net::PortRange& ports) {
  if (ports.is_any()) return "";
  if (ports.lo == ports.hi) return " eq " + std::to_string(ports.lo);
  return " range " + std::to_string(ports.lo) + " " +
         std::to_string(ports.hi);
}

}  // namespace

ContractSuite parse_contracts(std::string_view text, std::string name) {
  ContractSuite suite{.name = std::move(name), .contracts = {}};
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Split off the trailing "# name" comment.
    std::string contract_name = "line-" + std::to_string(line_number);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      const auto comment = trim(line.substr(hash + 1));
      if (!comment.empty()) contract_name = std::string(comment);
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    std::string_view rest = line;
    const auto head = next_token(rest);
    ConnectivityContract contract;
    contract.name = std::move(contract_name);
    if (head == "allow") {
      contract.expect = Expectation::kAllow;
    } else if (head == "deny") {
      contract.expect = Expectation::kDeny;
    } else {
      fail(line_number,
           "expected allow/deny, got '" + std::string(head) + "'");
    }
    const auto proto = next_token(rest);
    if (proto.empty()) fail(line_number, "missing protocol");
    contract.protocol = net::ProtocolSpec::parse(proto);
    contract.src = parse_address(rest, line_number);
    contract.src_ports = parse_ports(rest, line_number);
    contract.dst = parse_address(rest, line_number);
    contract.dst_ports = parse_ports(rest, line_number);
    if (!trim(rest).empty()) {
      fail(line_number,
           "trailing tokens '" + std::string(trim(rest)) + "'");
    }
    suite.contracts.push_back(std::move(contract));
  }
  return suite;
}

std::string write_failure(const ContractCheckResult& failure,
                          const Policy& policy) {
  std::string out = "FAIL " + failure.contract_name;
  if (failure.witness) {
    out += "  witness: " + failure.witness->to_string();
  }
  if (failure.violating_rule &&
      *failure.violating_rule < policy.rules.size()) {
    const Rule& rule = policy.rules[*failure.violating_rule];
    out += "  rule " + std::to_string(rule.line) + ": " + rule.to_string();
  } else {
    out += "  (implicit default deny)";
  }
  return out;
}

std::string write_report(const PolicyReport& report, const Policy& policy) {
  std::string out;
  for (const ContractCheckResult& failure : report.failures) {
    out += write_failure(failure, policy) + "\n";
  }
  out += std::to_string(policy.rules.size()) + " rules (" +
         std::string(to_string(policy.semantics)) + "), " +
         std::to_string(report.contracts_checked) + " contracts, " +
         std::to_string(report.failures.size()) + " failed\n";
  return out;
}

std::string write_contracts(const ContractSuite& suite) {
  std::ostringstream out;
  for (const ConnectivityContract& c : suite.contracts) {
    out << (c.expect == Expectation::kAllow ? "allow" : "deny") << " "
        << c.protocol.to_string() << " " << address_text(c.src)
        << port_text(c.src_ports) << " " << address_text(c.dst)
        << port_text(c.dst_ports);
    if (!c.name.empty()) out << "  # " << c.name;
    out << "\n";
  }
  return out.str();
}

}  // namespace dcv::secguru
