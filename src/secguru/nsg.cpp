#include "secguru/nsg.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "net/error.hpp"

namespace dcv::secguru {

ServiceTags default_service_tags() {
  return ServiceTags{
      {"VirtualNetwork", net::Prefix::parse("10.0.0.0/8")},
      {"Internet", net::Prefix::default_route()},
      // The managed-database backup orchestration service of §3.4.
      {"SqlManagement", net::Prefix::parse("168.63.129.0/24")},
  };
}

void Nsg::upsert(NsgRule rule) {
  rule.rule.comment = rule.name;
  rule.rule.line = rule.priority;
  rules_.insert_or_assign(rule.priority, std::move(rule));
}

bool Nsg::remove(int priority) { return rules_.erase(priority) > 0; }

Policy Nsg::to_policy() const {
  Policy policy{.name = name_,
                .semantics = PolicySemantics::kFirstApplicable,
                .rules = {}};
  policy.rules.reserve(rules_.size());
  for (const auto& [priority, rule] : rules_) {
    policy.rules.push_back(rule.rule);
  }
  return policy;
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      out.push_back(trim(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("NSG line " + std::to_string(line) + ": " + message);
}

net::Prefix parse_address(std::string_view token, const ServiceTags& tags,
                          int line) {
  if (token == "Any" || token == "any" || token == "*") {
    return net::Prefix::default_route();
  }
  if (const auto it = tags.find(token); it != tags.end()) return it->second;
  try {
    return net::Prefix::parse(token);
  } catch (const ParseError&) {
    fail(line, "unknown address or service tag '" + std::string(token) + "'");
  }
}

net::PortRange parse_ports(std::string_view token, int line) {
  if (token == "Any" || token == "any" || token == "*") {
    return net::PortRange::any();
  }
  const auto parse_one = [&](std::string_view t) -> std::uint16_t {
    unsigned value = 0;
    const auto [next, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc{} || next != t.data() + t.size() || value > 0xFFFF) {
      fail(line, "bad port '" + std::string(t) + "'");
    }
    return static_cast<std::uint16_t>(value);
  };
  const auto dash = token.find('-');
  if (dash == std::string_view::npos) {
    return net::PortRange::exactly(parse_one(token));
  }
  const auto lo = parse_one(token.substr(0, dash));
  const auto hi = parse_one(token.substr(dash + 1));
  if (lo > hi) fail(line, "inverted port range");
  return net::PortRange(lo, hi);
}

}  // namespace

Nsg parse_nsg(std::string_view text, std::string name,
              const ServiceTags& tags) {
  Nsg nsg(std::move(name));
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    line = trim(line);
    if (line.empty()) continue;
    if (line.substr(0, 8) == "priority") continue;  // header

    const auto fields = split_csv(line);
    if (fields.size() != 8) {
      fail(line_number, "expected 8 comma-separated fields, got " +
                            std::to_string(fields.size()));
    }
    NsgRule rule;
    {
      int value = 0;
      const auto f = fields[0];
      const auto [next, ec] =
          std::from_chars(f.data(), f.data() + f.size(), value);
      if (ec != std::errc{} || next != f.data() + f.size()) {
        fail(line_number, "bad priority '" + std::string(f) + "'");
      }
      rule.priority = value;
    }
    rule.name = std::string(fields[1]);
    rule.rule.src = parse_address(fields[2], tags, line_number);
    rule.rule.src_ports = parse_ports(fields[3], line_number);
    rule.rule.dst = parse_address(fields[4], tags, line_number);
    rule.rule.dst_ports = parse_ports(fields[5], line_number);
    rule.rule.protocol = net::ProtocolSpec::parse(fields[6]);
    if (fields[7] == "Allow" || fields[7] == "allow") {
      rule.rule.action = Action::kPermit;
    } else if (fields[7] == "Deny" || fields[7] == "deny") {
      rule.rule.action = Action::kDeny;
    } else {
      fail(line_number, "bad access '" + std::string(fields[7]) + "'");
    }
    nsg.upsert(std::move(rule));
  }
  return nsg;
}

std::string write_nsg(const Nsg& nsg) {
  std::ostringstream out;
  out << "priority,name,source,src_ports,destination,dst_ports,protocol,"
         "access\n";
  for (const auto& [priority, rule] : nsg.rules()) {
    const auto address = [](const net::Prefix& p) {
      return p.is_default() ? std::string("Any") : p.to_string();
    };
    const auto ports = [](const net::PortRange& r) {
      if (r.is_any()) return std::string("Any");
      if (r.lo == r.hi) return std::to_string(r.lo);
      return std::to_string(r.lo) + "-" + std::to_string(r.hi);
    };
    out << priority << "," << rule.name << "," << address(rule.rule.src)
        << "," << ports(rule.rule.src_ports) << "," << address(rule.rule.dst)
        << "," << ports(rule.rule.dst_ports) << ","
        << rule.rule.protocol.to_string() << ","
        << (rule.rule.action == Action::kPermit ? "Allow" : "Deny") << "\n";
  }
  return out.str();
}

}  // namespace dcv::secguru
