#include "secguru/acl_parser.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "net/error.hpp"

namespace dcv::secguru {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const auto token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("ACL line " + std::to_string(line) + ": " + message);
}

std::uint16_t parse_port(std::string_view token, int line) {
  unsigned value = 0;
  const auto [next, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || next != token.data() + token.size() ||
      value > 0xFFFF) {
    fail(line, "bad port '" + std::string(token) + "'");
  }
  return static_cast<std::uint16_t>(value);
}

/// <addr> ::= any | host <ip> | <ip>/<len>
net::Prefix parse_address(std::string_view& rest, int line) {
  const auto token = next_token(rest);
  if (token.empty()) fail(line, "missing address");
  if (token == "any") return net::Prefix::default_route();
  if (token == "host") {
    const auto ip = next_token(rest);
    if (ip.empty()) fail(line, "missing host address");
    return net::Prefix(net::Ipv4Address::parse(ip), 32);
  }
  return net::Prefix::parse(token);
}

/// [<ports>] ::= eq <port> | range <lo> <hi> | (nothing)
net::PortRange parse_ports(std::string_view& rest, int line) {
  const auto saved = rest;
  std::string_view probe = rest;
  const auto token = next_token(probe);
  if (token == "eq") {
    rest = probe;
    return net::PortRange::exactly(parse_port(next_token(rest), line));
  }
  if (token == "range") {
    rest = probe;
    const auto lo = parse_port(next_token(rest), line);
    const auto hi = parse_port(next_token(rest), line);
    if (lo > hi) fail(line, "inverted port range");
    return net::PortRange(lo, hi);
  }
  rest = saved;
  return net::PortRange::any();
}

}  // namespace

Policy parse_acl(std::string_view text, std::string name) {
  Policy policy{.name = std::move(name),
                .semantics = PolicySemantics::kFirstApplicable,
                .rules = {}};
  std::string pending_remark;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    line = trim(line);
    if (line.empty()) continue;

    std::string_view rest = line;
    const auto head = next_token(rest);
    if (head == "remark") {
      pending_remark = std::string(trim(rest));
      continue;
    }

    Rule rule;
    if (head == "permit") {
      rule.action = Action::kPermit;
    } else if (head == "deny") {
      rule.action = Action::kDeny;
    } else {
      fail(line_number, "expected permit/deny/remark, got '" +
                            std::string(head) + "'");
    }
    const auto proto = next_token(rest);
    if (proto.empty()) fail(line_number, "missing protocol");
    rule.protocol = net::ProtocolSpec::parse(proto);
    rule.src = parse_address(rest, line_number);
    rule.src_ports = parse_ports(rest, line_number);
    rule.dst = parse_address(rest, line_number);
    rule.dst_ports = parse_ports(rest, line_number);
    if (!trim(rest).empty()) {
      fail(line_number, "trailing tokens '" + std::string(trim(rest)) + "'");
    }
    rule.comment = pending_remark;
    rule.line = line_number;
    policy.rules.push_back(std::move(rule));
  }
  return policy;
}

std::string write_acl(const Policy& policy) {
  std::ostringstream out;
  std::string last_remark;
  for (const Rule& rule : policy.rules) {
    if (!rule.comment.empty() && rule.comment != last_remark) {
      out << "remark " << rule.comment << "\n";
      last_remark = rule.comment;
    }
    out << rule.to_string() << "\n";
  }
  return out.str();
}

}  // namespace dcv::secguru
