#include "secguru/device_config.hpp"

#include <charconv>
#include <sstream>

#include "net/error.hpp"
#include "secguru/acl_parser.hpp"

namespace dcv::secguru {

const Policy* DeviceConfig::find_acl(std::string_view name) const {
  const auto it = acls.find(std::string(name));
  return it == acls.end() ? nullptr : &it->second;
}

const InterfaceConfig* DeviceConfig::interface_with_acl(
    std::string_view acl_name) const {
  for (const InterfaceConfig& interface : interfaces) {
    if (interface.acl_in == acl_name || interface.acl_out == acl_name) {
      return &interface;
    }
  }
  return nullptr;
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const auto token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("config line " + std::to_string(line) + ": " + message);
}

/// Parser state: which stanza the cursor is inside.
enum class Section { kTop, kAcl, kInterface, kBgp };

}  // namespace

DeviceConfig parse_device_config(std::string_view text) {
  DeviceConfig config;
  Section section = Section::kTop;
  std::string acl_name;
  std::string acl_body;  // collected and handed to parse_acl at stanza end
  int acl_start_line = 0;

  const auto finish_acl = [&] {
    if (section != Section::kAcl) return;
    try {
      config.acls[acl_name] = parse_acl(acl_body, acl_name);
    } catch (const ParseError& error) {
      // Rebase the inner line number onto the config file.
      throw ParseError("config acl '" + acl_name + "' (starting line " +
                       std::to_string(acl_start_line) +
                       "): " + error.what());
    }
    acl_name.clear();
    acl_body.clear();
  };

  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    line = trim(line);
    if (line.empty()) continue;
    if (line == "!") {  // stanza separator
      finish_acl();
      section = Section::kTop;
      continue;
    }

    std::string_view rest = line;
    const auto first = next_token(rest);

    // Stanza openers.
    if (first == "hostname") {
      finish_acl();
      section = Section::kTop;
      config.hostname = std::string(trim(rest));
      continue;
    }
    if (first == "ip" && section == Section::kTop) {
      auto after = rest;
      const auto second = next_token(after);
      if (second != "access-list") {
        fail(line_number,
             "unknown top-level ip command '" + std::string(second) + "'");
      }
      finish_acl();
      const auto kind = next_token(after);
      if (kind != "extended") {
        fail(line_number, "only 'ip access-list extended' is supported");
      }
      const auto name = next_token(after);
      if (name.empty()) fail(line_number, "missing ACL name");
      section = Section::kAcl;
      acl_name = std::string(name);
      acl_start_line = line_number;
      continue;
    }
    if (first == "interface") {
      finish_acl();
      section = Section::kInterface;
      config.interfaces.push_back(
          InterfaceConfig{.name = std::string(trim(rest))});
      if (config.interfaces.back().name.empty()) {
        fail(line_number, "missing interface name");
      }
      continue;
    }
    if (first == "router") {
      finish_acl();
      const auto proto = next_token(rest);
      if (proto != "bgp") fail(line_number, "only 'router bgp' supported");
      const auto asn_text = next_token(rest);
      topo::Asn asn = 0;
      const auto [next, ec] = std::from_chars(
          asn_text.data(), asn_text.data() + asn_text.size(), asn);
      if (ec != std::errc{} || next != asn_text.data() + asn_text.size()) {
        fail(line_number, "bad AS number '" + std::string(asn_text) + "'");
      }
      config.local_as = asn;
      section = Section::kBgp;
      continue;
    }

    // Stanza bodies.
    switch (section) {
      case Section::kAcl:
        acl_body += std::string(line) + "\n";
        continue;
      case Section::kInterface: {
        InterfaceConfig& interface = config.interfaces.back();
        if (first == "description") {
          interface.description = std::string(trim(rest));
        } else if (first == "shutdown") {
          interface.shutdown = true;
        } else if (first == "ip") {
          const auto what = next_token(rest);
          if (what == "address") {
            const auto token = next_token(rest);
            const auto slash = token.find('/');
            if (slash == std::string_view::npos) {
              fail(line_number, "interface address needs /<len>");
            }
            int length = -1;
            const auto len_text = token.substr(slash + 1);
            const auto [next, ec] = std::from_chars(
                len_text.data(), len_text.data() + len_text.size(), length);
            if (ec != std::errc{} ||
                next != len_text.data() + len_text.size() || length < 0 ||
                length > 32) {
              fail(line_number, "bad interface address length");
            }
            interface.address = InterfaceAddress{
                .address = net::Ipv4Address::parse(token.substr(0, slash)),
                .prefix_length = length};
          } else if (what == "access-group") {
            const auto name = next_token(rest);
            const auto direction = next_token(rest);
            if (direction == "in") {
              interface.acl_in = std::string(name);
            } else if (direction == "out") {
              interface.acl_out = std::string(name);
            } else {
              fail(line_number, "access-group direction must be in/out");
            }
          } else {
            fail(line_number,
                 "unknown interface ip subcommand '" + std::string(what) +
                     "'");
          }
        } else {
          fail(line_number, "unknown interface subcommand '" +
                                std::string(first) + "'");
        }
        continue;
      }
      case Section::kBgp: {
        if (first != "neighbor") {
          fail(line_number,
               "unknown bgp subcommand '" + std::string(first) + "'");
        }
        const auto address = net::Ipv4Address::parse(next_token(rest));
        const auto what = next_token(rest);
        if (what == "remote-as") {
          const auto asn_text = next_token(rest);
          topo::Asn asn = 0;
          const auto [next, ec] = std::from_chars(
              asn_text.data(), asn_text.data() + asn_text.size(), asn);
          if (ec != std::errc{} ||
              next != asn_text.data() + asn_text.size()) {
            fail(line_number, "bad remote-as");
          }
          config.bgp_neighbors.push_back(
              BgpNeighborConfig{.address = address, .remote_as = asn});
        } else if (what == "shutdown") {
          bool found = false;
          for (BgpNeighborConfig& neighbor : config.bgp_neighbors) {
            if (neighbor.address == address) {
              neighbor.shutdown = true;
              found = true;
            }
          }
          if (!found) {
            fail(line_number, "shutdown for undeclared neighbor " +
                                  address.to_string());
          }
        } else {
          fail(line_number,
               "unknown neighbor subcommand '" + std::string(what) + "'");
        }
        continue;
      }
      case Section::kTop:
        fail(line_number,
             "unknown top-level command '" + std::string(first) + "'");
    }
  }
  finish_acl();
  return config;
}

std::string write_device_config(const DeviceConfig& config) {
  std::ostringstream out;
  if (!config.hostname.empty()) {
    out << "hostname " << config.hostname << "\n!\n";
  }
  for (const auto& [name, acl] : config.acls) {
    out << "ip access-list extended " << name << "\n";
    std::istringstream body(write_acl(acl));
    std::string line;
    while (std::getline(body, line)) out << " " << line << "\n";
    out << "!\n";
  }
  for (const InterfaceConfig& interface : config.interfaces) {
    out << "interface " << interface.name << "\n";
    if (!interface.description.empty()) {
      out << " description " << interface.description << "\n";
    }
    if (interface.address) {
      out << " ip address " << interface.address->to_string() << "\n";
    }
    if (!interface.acl_in.empty()) {
      out << " ip access-group " << interface.acl_in << " in\n";
    }
    if (!interface.acl_out.empty()) {
      out << " ip access-group " << interface.acl_out << " out\n";
    }
    if (interface.shutdown) out << " shutdown\n";
    out << "!\n";
  }
  if (config.local_as) {
    out << "router bgp " << *config.local_as << "\n";
    for (const BgpNeighborConfig& neighbor : config.bgp_neighbors) {
      out << " neighbor " << neighbor.address.to_string() << " remote-as "
          << neighbor.remote_as << "\n";
      if (neighbor.shutdown) {
        out << " neighbor " << neighbor.address.to_string() << " shutdown\n";
      }
    }
    out << "!\n";
  }
  return out.str();
}

}  // namespace dcv::secguru
