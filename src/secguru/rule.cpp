#include "secguru/rule.hpp"

#include <ostream>

namespace dcv::secguru {

std::string_view to_string(Action action) {
  switch (action) {
    case Action::kPermit:
      return "permit";
    case Action::kDeny:
      return "deny";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Action action) {
  return os << to_string(action);
}

std::string_view to_string(PolicySemantics semantics) {
  switch (semantics) {
    case PolicySemantics::kFirstApplicable:
      return "first-applicable";
    case PolicySemantics::kDenyOverrides:
      return "deny-overrides";
  }
  return "?";
}

namespace {

std::string address_text(const net::Prefix& prefix) {
  if (prefix.is_default()) return "any";
  if (prefix.length() == 32) return "host " + prefix.network().to_string();
  return prefix.to_string();
}

std::string port_text(const net::PortRange& ports) {
  if (ports.is_any()) return "";
  if (ports.lo == ports.hi) return " eq " + std::to_string(ports.lo);
  return " range " + std::to_string(ports.lo) + " " + std::to_string(ports.hi);
}

}  // namespace

std::string Rule::to_string() const {
  return std::string(secguru::to_string(action)) + " " + protocol.to_string() +
         " " + address_text(src) + port_text(src_ports) + " " +
         address_text(dst) + port_text(dst_ports);
}

std::ostream& operator<<(std::ostream& os, const Rule& rule) {
  return os << rule.to_string();
}

Decision evaluate(const Policy& policy, const net::PacketHeader& packet) {
  switch (policy.semantics) {
    case PolicySemantics::kFirstApplicable:
      for (std::size_t i = 0; i < policy.rules.size(); ++i) {
        if (policy.rules[i].matches(packet)) {
          return Decision{.allowed = policy.rules[i].action == Action::kPermit,
                          .rule_index = i};
        }
      }
      return Decision{.allowed = false, .rule_index = std::nullopt};
    case PolicySemantics::kDenyOverrides: {
      // "a packet is admitted if some Allow rule applies and none of the
      // Deny rules apply" (Definition 3.2).
      for (std::size_t i = 0; i < policy.rules.size(); ++i) {
        if (policy.rules[i].action == Action::kDeny &&
            policy.rules[i].matches(packet)) {
          return Decision{.allowed = false, .rule_index = i};
        }
      }
      for (std::size_t i = 0; i < policy.rules.size(); ++i) {
        if (policy.rules[i].action == Action::kPermit &&
            policy.rules[i].matches(packet)) {
          return Decision{.allowed = true, .rule_index = i};
        }
      }
      return Decision{.allowed = false, .rule_index = std::nullopt};
    }
  }
  return Decision{};
}

}  // namespace dcv::secguru
