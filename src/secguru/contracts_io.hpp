#pragma once

#include <string>
#include <string_view>

#include "secguru/contracts.hpp"
#include "secguru/engine.hpp"

namespace dcv::secguru {

/// Text format for contract suites — the "regression tests for the ACL" of
/// §3.3, as files. Line-oriented, mirroring the ACL grammar with the
/// expectation keyword up front:
///
///   # comment
///   allow tcp 8.8.8.0/24 104.208.32.0/20 eq 443   # web reachable
///   deny  ip  10.0.0.0/8 any                      # private isolation
///
/// Grammar per line:
///   <allow|deny> <protocol> <addr> [<ports>] <addr> [<ports>] [# name]
/// with <addr> ::= any | host <ip> | <ip>/<len> and
/// <ports> ::= eq <port> | range <lo> <hi>. Unnamed contracts get
/// "line-<n>" names.
[[nodiscard]] ContractSuite parse_contracts(std::string_view text,
                                            std::string name = "contracts");

/// Renders a suite back to the same format.
[[nodiscard]] std::string write_contracts(const ContractSuite& suite);

/// Renders one failure as a report line:
///
///   FAIL <contract>  witness: <packet>  rule <line>: <rule text>
///
/// A witness decided by no explicit rule renders "(implicit default deny)"
/// — violating_rule is nullopt exactly when the implicit default deny
/// decided the witness, and dropping that case silently would hide the
/// most common NSG lockdown failure mode (every rule missed, so traffic
/// the contract requires fell through to the default).
[[nodiscard]] std::string write_failure(const ContractCheckResult& failure,
                                        const Policy& policy);

/// Renders a whole report: one write_failure line per failure plus the
/// closing summary ("<n> rules (<semantics>), <m> contracts, <k> failed").
[[nodiscard]] std::string write_report(const PolicyReport& report,
                                       const Policy& policy);

}  // namespace dcv::secguru
