#pragma once

#include <string>
#include <string_view>

#include "secguru/contracts.hpp"

namespace dcv::secguru {

/// Text format for contract suites — the "regression tests for the ACL" of
/// §3.3, as files. Line-oriented, mirroring the ACL grammar with the
/// expectation keyword up front:
///
///   # comment
///   allow tcp 8.8.8.0/24 104.208.32.0/20 eq 443   # web reachable
///   deny  ip  10.0.0.0/8 any                      # private isolation
///
/// Grammar per line:
///   <allow|deny> <protocol> <addr> [<ports>] <addr> [<ports>] [# name]
/// with <addr> ::= any | host <ip> | <ip>/<len> and
/// <ports> ::= eq <port> | range <lo> <hi>. Unnamed contracts get
/// "line-<n>" names.
[[nodiscard]] ContractSuite parse_contracts(std::string_view text,
                                            std::string name = "contracts");

/// Renders a suite back to the same format.
[[nodiscard]] std::string write_contracts(const ContractSuite& suite);

}  // namespace dcv::secguru
