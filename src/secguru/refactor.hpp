#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "secguru/contracts.hpp"
#include "secguru/engine.hpp"
#include "secguru/fast_engine.hpp"
#include "secguru/rule.hpp"

namespace dcv::secguru {

/// Parameters of the synthetic legacy Edge ACL of §3.3: an ACL "similar to
/// the ACL described in Figure 8" that "had inorganically grown to comprise
/// several thousand rules" — private-address isolation, anti-spoofing for
/// owned prefixes, per-service whitelists, standard port blocks, interspersed
/// zero-day mitigations, and accumulated redundancy.
struct LegacyAclParams {
  /// Prefixes Azure owns; each adds anti-spoofing and permit rules ("for
  /// every new prefix that Azure acquired, we needed planned updates").
  /// Keep at most 32 so the /20s stay inside the 104.208.0.0/16 and
  /// 168.61.0.0/16 blocks of Figure 8.
  std::size_t owned_prefixes = 32;
  /// Services enforcing whitelists of client addresses in the Edge ACL;
  /// each contributes several service-specific permit rules. The defaults
  /// yield the paper's "several thousand rules".
  std::size_t services = 150;
  std::size_t whitelist_entries_per_service = 12;
  /// Zero-day deny rules interspersed through the ACL.
  std::size_t zero_day_blocks = 40;
  /// Fraction of additional fully redundant (shadowed) rules accumulated
  /// through organic growth.
  double redundancy_factor = 0.25;
  std::uint64_t seed = 7;
};

/// Builds the synthetic legacy Edge ACL (first-applicable). Sections follow
/// Figure 8's layout; deterministic for a given seed.
[[nodiscard]] Policy generate_legacy_edge_acl(const LegacyAclParams& params);

/// The regression contracts for the Edge ACL (§3.3): private datacenter
/// addresses unreachable from the Internet, anti-spoofing enforced, blocked
/// ports stay blocked, and every owned service prefix reachable on the web
/// ports. Derived from the same parameters (and seed) as the legacy ACL.
[[nodiscard]] ContractSuite edge_acl_contracts(const LegacyAclParams& params);

/// One planned change to an ACL: a description plus a transformation.
struct Change {
  std::string description;
  std::function<Policy(const Policy&)> apply;
};

/// Change helpers.
[[nodiscard]] Change delete_rules_matching(
    std::string description, std::function<bool(const Rule&)> predicate);
[[nodiscard]] Change append_rules(std::string description,
                                  std::vector<Rule> rules);

/// A network device holding an ACL. Re-configuring may silently drop rules
/// past the device's TCAM capacity — "if resource limitations on the device
/// cause certain additional rules to be ignored, then the effective ACL in
/// the configuration would violate the contracts" (§3.3).
struct TestDevice {
  std::size_t max_rules = std::numeric_limits<std::size_t>::max();

  /// The effective policy after programming `desired` into the device.
  [[nodiscard]] Policy configure(const Policy& desired) const {
    Policy effective = desired;
    if (effective.rules.size() > max_rules) {
      effective.rules.resize(max_rules);
    }
    return effective;
  }
};

/// Outcome of one step of the phased refactoring methodology (§3.3):
/// precheck on a test device, apply, postcheck on the production device,
/// rollback if the postcheck fails.
struct StepOutcome {
  std::string description;
  bool precheck_ok = false;
  bool applied = false;
  bool postcheck_ok = false;
  bool rolled_back = false;
  std::size_t rules_before = 0;
  std::size_t rules_after = 0;
  std::vector<ContractCheckResult> precheck_failures;
  std::vector<ContractCheckResult> postcheck_failures;
};

/// Executes a phased refactor plan against a production ACL under a
/// contract suite. Each step is first validated on `lab` (precheck); only
/// if all contracts pass is it deployed to `production_device`, after which
/// postchecks run on the production effective ACL and failures roll the
/// step back. `production` is updated in place with each successful step.
[[nodiscard]] std::vector<StepOutcome> execute_refactor_plan(
    Engine& engine, Policy& production, const std::vector<Change>& plan,
    const ContractSuite& contracts, const TestDevice& lab = {},
    const TestDevice& production_device = {});

/// Same methodology, pre- and post-checked through the interval fast path
/// (Z3 only for contracts the set algebra cannot decide exactly).
[[nodiscard]] std::vector<StepOutcome> execute_refactor_plan(
    FastEngine& engine, Policy& production, const std::vector<Change>& plan,
    const ContractSuite& contracts, const TestDevice& lab = {},
    const TestDevice& production_device = {});

}  // namespace dcv::secguru
