#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "secguru/contracts.hpp"
#include "secguru/engine.hpp"
#include "secguru/fast_engine.hpp"
#include "secguru/nsg.hpp"

namespace dcv::secguru {

/// A customer virtual network with an attached NSG (§3.4).
struct VirtualNetwork {
  std::string name;
  net::Prefix address_space;
  /// Whether a managed database instance is deployed inside: "Azure
  /// infrastructure has access to metadata about all service addresses and
  /// whether the virtual network of a customer included a database
  /// instance."
  bool has_database_instance = false;
  Nsg nsg;
};

/// The infrastructure service that initiates and orchestrates database
/// backups from outside the virtual network.
struct BackupInfrastructure {
  net::Prefix service_range = net::Prefix::parse("168.63.129.0/24");
  net::PortRange control_ports{1433, 1434};
};

/// Contracts auto-added for a virtual network hosting a managed database:
/// the backup orchestration service must be able to reach the database
/// instance (and the instance must answer), regardless of customer NSG
/// edits.
[[nodiscard]] ContractSuite database_backup_contracts(
    const VirtualNetwork& vnet, const BackupInfrastructure& infra = {});

/// Result of attempting an NSG update through the gated API.
struct NsgChangeResult {
  bool accepted = false;
  PolicyReport report;
};

/// The validation-gated NSG change API of §3.4: "We integrated SecGuru
/// validation into the API for changing NSG policies. ... The API was
/// designed to validate these contracts against the new policy and fail
/// with an error message if the new policy could block database backups."
class NsgGate {
 public:
  explicit NsgGate(Engine& engine, BackupInfrastructure infra = {})
      : engine_(&engine), infra_(infra) {}

  /// Gate backed by the interval fast path: most backup contracts are
  /// decided without ever touching Z3, so the API-path validation cost
  /// drops accordingly. Inconclusive cases still get exact Z3 answers.
  explicit NsgGate(FastEngine& engine, BackupInfrastructure infra = {})
      : fast_(&engine), infra_(infra) {}

  /// Validates and, on success, applies `proposed` to the virtual network.
  /// For networks without a database instance no contracts apply and the
  /// change is always accepted.
  NsgChangeResult try_update(VirtualNetwork& vnet, const Nsg& proposed) const;

 private:
  Engine* engine_ = nullptr;
  FastEngine* fast_ = nullptr;
  BackupInfrastructure infra_;
};

/// Configuration for the customer-incident simulation behind Figure 12.
struct NsgIncidentConfig {
  int days = 200;
  /// The day the SecGuru-gated API ships (the paper's inflection sits near
  /// day 100).
  int gate_deploy_day = 100;
  /// Customer adoption ramp: managed-database virtual networks added per
  /// day.
  double adoption_per_day = 1.0;
  /// NSG changes attempted per database vnet per day.
  double changes_per_vnet_per_day = 0.2;
  /// Probability that a customer change inadvertently blocks the backup
  /// service ("customers were inadvertently misconfiguring the NSGs").
  double misconfiguration_probability = 0.15;
  /// Days until a failing backup is noticed and reported as an incident.
  int detection_lag_days = 3;
  /// Incidents resolved by support per day.
  std::size_t support_capacity_per_day = 4;
  std::uint64_t seed = 2019;
};

/// One day of the simulated service operation.
struct NsgIncidentDay {
  int day = 0;
  std::size_t database_vnets = 0;
  std::size_t changes_attempted = 0;
  std::size_t changes_rejected_by_gate = 0;
  std::size_t incidents_reported = 0;
  std::size_t incidents_open = 0;
};

/// Simulates the managed-database rollout of §3.4 using the real gate:
/// customers adopt the service, edit their NSGs (sometimes breaking backup
/// reachability), broken networks surface as customer-reported incidents
/// after a detection lag, and — from the gate's deploy day — the validated
/// API rejects breaking changes up front. Reproduces Figure 12's shape:
/// incidents ramp with adoption, then fall steeply once the gate ships.
[[nodiscard]] std::vector<NsgIncidentDay> simulate_nsg_incidents(
    const NsgIncidentConfig& config);

}  // namespace dcv::secguru
