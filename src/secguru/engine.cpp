#include "secguru/engine.hpp"

#include <z3++.h>

#include "smt/encoding.hpp"

namespace dcv::secguru {

std::string_view to_string(Expectation expectation) {
  switch (expectation) {
    case Expectation::kAllow:
      return "allow";
    case Expectation::kDeny:
      return "deny";
  }
  return "?";
}

namespace {

/// The predicate r_i(x) of §3.2: the rule's packet filter over the
/// symbolic 5-tuple.
z3::expr rule_predicate(const smt::SymbolicPacket& x, const Rule& rule) {
  return smt::protocol_matches(x.protocol, rule.protocol) &&
         smt::ip_in_prefix(x.src_ip, rule.src) &&
         smt::port_in_range(x.src_port, rule.src_ports) &&
         smt::ip_in_prefix(x.dst_ip, rule.dst) &&
         smt::port_in_range(x.dst_port, rule.dst_ports);
}

/// The policy predicate P(x): linear in the size of the policy, per
/// Definition 3.1 (first applicable, folded from the implicit default deny
/// backwards) or Definition 3.2 (deny overrides).
z3::expr policy_predicate(const smt::SymbolicPacket& x, const Policy& policy) {
  z3::context& ctx = x.src_ip.ctx();
  switch (policy.semantics) {
    case PolicySemantics::kFirstApplicable: {
      z3::expr p = ctx.bool_val(false);  // P_n(x) = false
      for (auto it = policy.rules.rbegin(); it != policy.rules.rend(); ++it) {
        const z3::expr r = rule_predicate(x, *it);
        p = it->action == Action::kPermit ? (r || p) : (!r && p);
      }
      return p;
    }
    case PolicySemantics::kDenyOverrides: {
      z3::expr some_allow = ctx.bool_val(false);
      z3::expr no_deny = ctx.bool_val(true);
      for (const Rule& rule : policy.rules) {
        const z3::expr r = rule_predicate(x, rule);
        if (rule.action == Action::kPermit) {
          some_allow = some_allow || r;
        } else {
          no_deny = no_deny && !r;
        }
      }
      return some_allow && no_deny;
    }
  }
  return ctx.bool_val(false);
}

/// The contract predicate C(x).
z3::expr contract_predicate(const smt::SymbolicPacket& x,
                            const ConnectivityContract& contract) {
  return smt::protocol_matches(x.protocol, contract.protocol) &&
         smt::ip_in_prefix(x.src_ip, contract.src) &&
         smt::port_in_range(x.src_port, contract.src_ports) &&
         smt::ip_in_prefix(x.dst_ip, contract.dst) &&
         smt::port_in_range(x.dst_port, contract.dst_ports);
}

}  // namespace

struct Engine::Impl {
  z3::context ctx;
};

Engine::Engine() = default;
Engine::~Engine() = default;

Engine::Impl& Engine::impl() {
  if (!impl_) impl_ = std::make_unique<Impl>();
  return *impl_;
}

ContractCheckResult Engine::check(const Policy& policy,
                                  const ConnectivityContract& contract) {
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  const z3::expr c = contract_predicate(x, contract);
  const z3::expr p = policy_predicate(x, policy);

  // Allow contracts: C ∧ ¬P satisfiable means some traffic the contract
  // requires is denied. Deny contracts dually: C ∧ P satisfiable means
  // forbidden traffic gets through.
  z3::solver solver(ctx);
  solver.add(c);
  solver.add(contract.expect == Expectation::kAllow ? !p : p);

  ContractCheckResult result;
  result.contract_name = contract.name;
  if (solver.check() != z3::sat) {
    result.holds = true;
    return result;
  }
  result.holds = false;
  const net::PacketHeader witness =
      smt::eval_packet(solver.get_model(), x);
  result.witness = witness;
  // Identify the rule that decided the witness — the violator.
  result.violating_rule = evaluate(policy, witness).rule_index;
  return result;
}

PolicyReport Engine::check_suite(const Policy& policy,
                                 const ContractSuite& suite) {
  PolicyReport report;
  report.policy_name = policy.name;
  // Encode the policy once; each contract is a push/pop on one solver, so
  // the (large) policy formula is built a single time per suite.
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  const z3::expr p = policy_predicate(x, policy);
  z3::solver solver(ctx);
  for (const ConnectivityContract& contract : suite.contracts) {
    ++report.contracts_checked;
    solver.push();
    solver.add(contract_predicate(x, contract));
    solver.add(contract.expect == Expectation::kAllow ? !p : p);
    if (solver.check() == z3::sat) {
      ContractCheckResult failure;
      failure.contract_name = contract.name;
      failure.holds = false;
      const net::PacketHeader witness =
          smt::eval_packet(solver.get_model(), x);
      failure.witness = witness;
      failure.violating_rule = evaluate(policy, witness).rule_index;
      report.failures.push_back(std::move(failure));
    }
    solver.pop();
  }
  return report;
}

std::optional<net::PacketHeader> Engine::difference_witness(
    const Policy& before, const Policy& after) {
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  z3::solver solver(ctx);
  solver.add(policy_predicate(x, before) != policy_predicate(x, after));
  if (solver.check() != z3::sat) return std::nullopt;
  return smt::eval_packet(solver.get_model(), x);
}

std::vector<Engine::DiffWitness> Engine::semantic_diff(
    const Policy& before, const Policy& after, std::size_t max_witnesses) {
  std::vector<DiffWitness> witnesses;
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  z3::solver solver(ctx);
  solver.add(policy_predicate(x, before) != policy_predicate(x, after));

  const auto rule_region = [&](const Policy& policy,
                               std::optional<std::size_t> index) -> z3::expr {
    // The packet space where this rule (or the default deny: no rule at
    // all) decides. First-applicable: the rule's filter minus all earlier
    // filters; deny-overrides uses the filter alone (good enough for
    // blocking purposes).
    if (!index) {
      z3::expr none = ctx.bool_val(true);
      for (const Rule& rule : policy.rules) {
        none = none && !rule_predicate(x, rule);
      }
      return none;
    }
    z3::expr region = rule_predicate(x, policy.rules[*index]);
    if (policy.semantics == PolicySemantics::kFirstApplicable) {
      for (std::size_t i = 0; i < *index; ++i) {
        region = region && !rule_predicate(x, policy.rules[i]);
      }
    }
    return region;
  };

  while (witnesses.size() < max_witnesses && solver.check() == z3::sat) {
    DiffWitness witness;
    witness.packet = smt::eval_packet(solver.get_model(), x);
    const Decision before_decision = evaluate(before, witness.packet);
    const Decision after_decision = evaluate(after, witness.packet);
    witness.before_allowed = before_decision.allowed;
    witness.after_allowed = after_decision.allowed;
    witness.before_rule = before_decision.rule_index;
    witness.after_rule = after_decision.rule_index;
    // Exclude the region where this same rule pair decides, so the next
    // witness explains a different interaction.
    solver.add(!(rule_region(before, witness.before_rule) &&
                 rule_region(after, witness.after_rule)));
    witnesses.push_back(std::move(witness));
  }
  return witnesses;
}

std::optional<net::PacketHeader> Engine::permitted_beyond(
    const Policy& narrow, const Policy& wide) {
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  z3::solver solver(ctx);
  solver.add(policy_predicate(x, narrow) && !policy_predicate(x, wide));
  if (solver.check() != z3::sat) return std::nullopt;
  return smt::eval_packet(solver.get_model(), x);
}

std::vector<std::size_t> Engine::shadowed_rules(const Policy& policy) {
  std::vector<std::size_t> shadowed;
  z3::context& ctx = impl().ctx;
  const auto x = smt::SymbolicPacket::create(ctx);
  if (policy.semantics == PolicySemantics::kFirstApplicable) {
    // Incremental solving: after testing rule i, assert ¬r_i(x)
    // permanently — a packet deciding rule j > i must not match any
    // earlier rule anyway.
    z3::solver solver(ctx);
    for (std::size_t i = 0; i < policy.rules.size(); ++i) {
      const z3::expr r = rule_predicate(x, policy.rules[i]);
      solver.push();
      solver.add(r);
      if (solver.check() != z3::sat) shadowed.push_back(i);
      solver.pop();
      solver.add(!r);
    }
    return shadowed;
  }
  // Deny-overrides: rule order never matters, so "shadowed" means the rule
  // adds nothing to its action's union — its filter is covered by
  // same-action rules earlier in the list (earlier-wins makes the answer
  // deterministic: of N copies, all but the first are redundant). Both
  // unions grow incrementally; each query is r_i ∧ ¬union(same action).
  z3::solver solver(ctx);
  z3::expr permit_union = ctx.bool_val(false);
  z3::expr deny_union = ctx.bool_val(false);
  for (std::size_t i = 0; i < policy.rules.size(); ++i) {
    const z3::expr r = rule_predicate(x, policy.rules[i]);
    z3::expr& same_action_union =
        policy.rules[i].action == Action::kPermit ? permit_union : deny_union;
    solver.push();
    solver.add(r && !same_action_union);
    if (solver.check() != z3::sat) shadowed.push_back(i);
    solver.pop();
    same_action_union = same_action_union || r;
  }
  return shadowed;
}

}  // namespace dcv::secguru
