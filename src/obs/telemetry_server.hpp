#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/health.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dcv::obs {

struct TelemetryServerConfig {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  /// the bound one back with port()).
  std::uint16_t port = 0;
  /// Pending-connection backlog handed to listen().
  int backlog = 16;
  /// How long stop() may lag: the event loop re-checks the shutdown flag
  /// at this interval when idle. (Historically the accept-poll interval.)
  std::chrono::milliseconds accept_poll{50};
  /// Per-connection progress deadline: no read/write progress for this
  /// long answers 408 (mid-request) or drops the peer (mid-response).
  std::chrono::milliseconds io_timeout{2000};
  /// Default per-request byte cap. Mounted routes (e.g. the change gate's
  /// POST endpoints) may raise it per-endpoint.
  std::size_t max_request_bytes = 4096;
  /// Span budget for /tracez responses; past the cap the JSON carries a
  /// "truncated" count instead of the cut spans.
  std::size_t max_trace_spans = 65536;
  /// When set, /tracez serves this renderer's output (called with
  /// max_trace_spans) instead of the trace ring — the hook a coordinator
  /// uses to serve the *merged* fleet timeline. Must be thread-safe (it
  /// runs on worker threads) and is fixed at construction.
  std::function<std::string(std::size_t)> trace_renderer;

  // --- concurrency knobs (all additive; defaults match the scrape-only
  // workload the server originally handled) ---

  /// Worker threads executing handlers concurrently.
  unsigned worker_threads = 4;
  /// Open-connection cap; beyond it peers wait in the kernel backlog.
  std::size_t max_connections = 64;
  /// Parsed requests allowed to wait for a worker before the server
  /// answers 429 with Retry-After (admission control).
  std::size_t max_queued_requests = 32;
  /// Retry-After header value on 429 overload responses.
  unsigned retry_after_seconds = 1;
  /// When set (non-const because serving *writes* these instruments), the
  /// server exports dcv_http_requests_total{path,code}, the
  /// dcv_http_request_ns{path} histogram, and live open-connection /
  /// queued-request gauges. Usually the same registry passed (const) for
  /// /metrics serving.
  MetricsRegistry* http_metrics = nullptr;
  /// Called with the underlying HttpServer after the scrape routes are
  /// registered and before start() — the hook services (e.g. the change
  /// gate) use to mount their own POST routes on the shared listener.
  std::function<void(HttpServer&)> mount;
};

/// HTTP/1.1 scrape endpoint for one process's telemetry:
///
///   /metrics       Prometheus text exposition of the registry
///   /metrics.json  the same registry as JSON
///   /healthz       200 while the probe reports alive, else 503
///   /readyz        200 while the probe reports ready, else 503
///   /tracez        recent spans from the trace ring, as JSON
///
/// Serving is concurrent (poll()-driven event loop + worker pool, see
/// HttpServer) but the response bytes for these endpoints are identical to
/// the original sequential implementation: Connection: close, same status
/// lines, same bodies. stop() (also run by the destructor) finishes
/// writable in-flight responses, stops accepting, and joins every thread.
///
/// The registry and ring pointers may be null; their endpoints then answer
/// 404. Sinks, the probe, and any config.http_metrics registry must
/// outlive the server.
class TelemetryServer {
 public:
  /// Binds, listens, and starts serving. Throws std::system_error when the
  /// socket cannot be created or the port is already in use.
  TelemetryServer(const MetricsRegistry* registry, const TraceRing* trace,
                  HealthProbe probe, TelemetryServerConfig config = {});

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  ~TelemetryServer();

  /// Graceful shutdown: completes in-flight requests, closes the listening
  /// socket, joins all threads. Idempotent.
  void stop();

  /// The actually bound port (the requested one, or the kernel's pick when
  /// the config asked for port 0).
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  [[nodiscard]] std::uint64_t requests_served() const {
    return server_.requests_served();
  }

  /// The underlying concurrent server (admission counters, saturation).
  [[nodiscard]] const HttpServer& http() const { return server_; }

 private:
  [[nodiscard]] HttpResponse respond(const HttpRequest& request) const;

  const MetricsRegistry* registry_;
  const TraceRing* trace_;
  HealthProbe probe_;
  TelemetryServerConfig config_;
  HttpServer server_;
};

}  // namespace dcv::obs
