#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dcv::obs {

struct TelemetryServerConfig {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  /// the bound one back with port()).
  std::uint16_t port = 0;
  /// Pending-connection backlog handed to listen(); together with the
  /// one-at-a-time request handling this bounds how much connection state
  /// the server ever holds.
  int backlog = 16;
  /// How long stop() may lag: the accept loop re-checks the shutdown flag
  /// at this interval when idle.
  std::chrono::milliseconds accept_poll{50};
  /// Per-connection receive/send budget, so one stalled scraper cannot
  /// wedge the listener thread (requests are handled sequentially).
  std::chrono::milliseconds io_timeout{2000};
  std::size_t max_request_bytes = 4096;
  /// Span budget for /tracez responses. The server handles connections
  /// sequentially, so an unbounded fleet trace would wedge the listener
  /// for every later scraper; past the cap the JSON carries a "truncated"
  /// count instead of the cut spans.
  std::size_t max_trace_spans = 65536;
  /// When set, /tracez serves this renderer's output (called with
  /// max_trace_spans) instead of the trace ring — the hook a coordinator
  /// uses to serve the *merged* fleet timeline. Must be thread-safe (runs
  /// on the listener thread) and is fixed at construction.
  std::function<std::string(std::size_t)> trace_renderer;
};

/// Dependency-free HTTP/1.1 scrape endpoint for one process's telemetry:
///
///   /metrics       Prometheus text exposition of the registry
///   /metrics.json  the same registry as JSON
///   /healthz       200 while the probe reports alive, else 503
///   /readyz        200 while the probe reports ready, else 503
///   /tracez        recent spans from the trace ring, as JSON
///
/// One listener thread accepts and serves connections sequentially
/// (Connection: close, bounded request size, per-connection IO deadline).
/// That is deliberately minimal — scrapers poll at seconds granularity —
/// but safe against slow or hostile peers. stop() (also run by the
/// destructor) finishes the in-flight response, stops accepting, and joins
/// the thread.
///
/// The registry and ring pointers may be null; their endpoints then answer
/// 404. Both sinks and the probe must outlive the server.
class TelemetryServer {
 public:
  /// Binds, listens, and starts serving. Throws std::system_error when the
  /// socket cannot be created or the port is already in use.
  TelemetryServer(const MetricsRegistry* registry, const TraceRing* trace,
                  HealthProbe probe, TelemetryServerConfig config = {});

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  ~TelemetryServer();

  /// Graceful shutdown: completes the in-flight request, closes the
  /// listening socket, joins the listener thread. Idempotent.
  void stop();

  /// The actually bound port (the requested one, or the kernel's pick when
  /// the config asked for port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_connection(int client_fd);
  [[nodiscard]] std::string respond(std::string_view method,
                                    std::string_view target) const;

  const MetricsRegistry* registry_;
  const TraceRing* trace_;
  HealthProbe probe_;
  TelemetryServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::mutex stop_mutex_;
  std::thread listener_;
};

}  // namespace dcv::obs
