#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"
#include "obs/span_serde.hpp"

namespace dcv::obs {

/// One process's lane in a merged fleet trace. Event `start` offsets are
/// relative to the *merger's* local epoch — remote events have already been
/// rebased by their estimated clock offset.
struct MergedTrack {
  std::string process;
  std::vector<TraceEvent> events;
};

/// A point-in-time copy of the merged fleet timeline.
struct MergedTrace {
  std::vector<MergedTrack> tracks;
  /// Spans the *senders* reported dropping before serialization.
  std::uint64_t remote_dropped = 0;
  /// Remote spans this merger discarded to stay under its capacity.
  std::uint64_t truncated = 0;
};

/// Folds remote span batches onto the local process's timeline. For each
/// batch the merger re-keys span ids into the local id space (remote ids
/// collide across processes — every TraceRing counts from 1), re-parents
/// batch roots under a caller-supplied local span (the shard's assign
/// span), and rebases absolute remote timestamps onto the local steady
/// clock via the caller's offset estimate. Because that estimate carries
/// up to ~RTT/2 of error, the caller also passes a causal `floor` (the
/// assign span's start): the whole batch is shifted forward just enough
/// that no remote span starts before it, so merged traces never show an
/// effect preceding its cause. Thread-safe.
class TraceMerger {
 public:
  /// `local` may be null (merged output then contains remote tracks only);
  /// when set it must outlive the merger and its epoch anchors the merged
  /// timeline. `max_remote_events` bounds merger memory: a batch that would
  /// push the total past the cap is dropped whole (counted in truncated).
  TraceMerger(const TraceRing* local, std::string local_process,
              std::size_t max_remote_events = 65536);

  /// Merges one decoded remote batch. `offset_ns` is the estimated
  /// local_clock − remote_clock; `parent_span` adopts the batch's root
  /// spans; `floor` is the earliest local-epoch-relative start any merged
  /// span may have (pass zero ns to disable the clamp).
  void add_remote(std::string_view process, DecodedTrace trace,
                  std::int64_t offset_ns, std::uint64_t parent_span,
                  std::chrono::nanoseconds floor);

  [[nodiscard]] MergedTrace snapshot() const;

 private:
  const TraceRing* local_;
  std::string local_process_;
  std::size_t max_remote_events_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::map<std::string, std::vector<TraceEvent>, std::less<>> remote_;
  std::size_t remote_events_ = 0;
  std::uint64_t remote_dropped_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace dcv::obs
