#include "obs/trace_merge.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

namespace dcv::obs {

TraceMerger::TraceMerger(const TraceRing* local, std::string local_process,
                         std::size_t max_remote_events)
    : local_(local),
      local_process_(std::move(local_process)),
      max_remote_events_(std::max<std::size_t>(1, max_remote_events)),
      epoch_(local != nullptr ? local->epoch()
                              : std::chrono::steady_clock::now()) {}

void TraceMerger::add_remote(std::string_view process, DecodedTrace trace,
                             std::int64_t offset_ns, std::uint64_t parent_span,
                             std::chrono::nanoseconds floor) {
  // Re-key outside the lock: id allocation is its own atomic, and a batch
  // from one worker must not serialize other workers' merges.
  std::unordered_map<std::uint64_t, std::uint64_t> remap;
  remap.reserve(trace.events.size());
  for (const TraceEvent& event : trace.events) {
    if (event.id != 0) remap.emplace(event.id, allocate_span_id());
  }
  const std::int64_t epoch_ns = epoch_.time_since_epoch().count();
  std::int64_t min_start = std::numeric_limits<std::int64_t>::max();
  for (TraceEvent& event : trace.events) {
    if (const auto it = remap.find(event.id); it != remap.end()) {
      event.id = it->second;
    }
    // Parents outside the batch are ids from the remote process's span
    // space — meaningless here, so those spans become batch roots too.
    const auto parent = remap.find(event.parent);
    event.parent = parent != remap.end() ? parent->second : parent_span;
    // Remote start is absolute remote-steady-clock ns; land it on the
    // local timeline as an offset from our epoch.
    const std::int64_t local_abs = event.start.count() + offset_ns;
    event.start = std::chrono::nanoseconds(local_abs - epoch_ns);
    min_start = std::min(min_start, event.start.count());
  }
  // The offset estimate is only good to ~RTT/2; shift the whole batch
  // (keeping its internal structure) so nothing precedes its cause.
  if (!trace.events.empty() && min_start < floor.count()) {
    const std::chrono::nanoseconds shift(floor.count() - min_start);
    for (TraceEvent& event : trace.events) event.start += shift;
  }

  const std::lock_guard lock(mutex_);
  remote_dropped_ += trace.dropped;
  if (remote_events_ + trace.events.size() > max_remote_events_) {
    truncated_ += trace.events.size();
    return;
  }
  remote_events_ += trace.events.size();
  auto& track = remote_[std::string(process)];
  track.insert(track.end(), std::make_move_iterator(trace.events.begin()),
               std::make_move_iterator(trace.events.end()));
}

MergedTrace TraceMerger::snapshot() const {
  MergedTrace out;
  if (local_ != nullptr) {
    out.tracks.push_back({local_process_, local_->events()});
  }
  const std::lock_guard lock(mutex_);
  for (const auto& [process, events] : remote_) {
    out.tracks.push_back({process, events});
  }
  out.remote_dropped = remote_dropped_;
  out.truncated = truncated_;
  return out;
}

}  // namespace dcv::obs
