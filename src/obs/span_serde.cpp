#include "obs/span_serde.hpp"

#include <utility>

#include "net/bytes.hpp"

namespace dcv::obs {

namespace {

constexpr std::uint32_t kMagic = 0x54564344;  // "DCVT" in LE byte order
constexpr std::uint16_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> serialize_trace(std::span<const TraceEvent> events,
                                          std::chrono::nanoseconds epoch,
                                          std::uint64_t dropped) {
  net::ByteWriter writer;
  writer.u32(kMagic);
  writer.u16(kVersion);
  writer.u64(dropped);
  writer.u32(static_cast<std::uint32_t>(events.size()));
  for (const TraceEvent& event : events) {
    writer.str(event.name);
    writer.u64(event.id);
    writer.u64(event.parent);
    writer.u64(event.cycle);
    writer.u32(event.thread);
    writer.u64(static_cast<std::uint64_t>((epoch + event.start).count()));
    writer.u64(static_cast<std::uint64_t>(event.duration.count()));
  }
  return writer.take();
}

std::vector<std::uint8_t> serialize_trace(const TraceRing& ring) {
  const auto events = ring.events();
  return serialize_trace(events, ring.epoch().time_since_epoch(),
                         ring.dropped());
}

bool deserialize_trace(std::span<const std::uint8_t> blob, DecodedTrace& out) {
  net::ByteReader reader(blob);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  DecodedTrace staged;
  if (!reader.u32(magic) || magic != kMagic) return false;
  if (!reader.u16(version) || version != kVersion) return false;
  if (!reader.u64(staged.dropped)) return false;
  std::uint32_t count = 0;
  // An event is at least an empty name + the six fixed fields = 48 bytes.
  if (!reader.count(count, 48)) return false;
  staged.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceEvent event;
    std::uint32_t thread = 0;
    std::uint64_t start = 0;
    std::uint64_t duration = 0;
    if (!reader.str(event.name) || !reader.u64(event.id) ||
        !reader.u64(event.parent) || !reader.u64(event.cycle) ||
        !reader.u32(thread) || !reader.u64(start) || !reader.u64(duration)) {
      return false;
    }
    event.thread = thread;
    event.start = std::chrono::nanoseconds(static_cast<std::int64_t>(start));
    event.duration =
        std::chrono::nanoseconds(static_cast<std::int64_t>(duration));
    staged.events.push_back(std::move(event));
  }
  if (!reader.done()) return false;
  out = std::move(staged);
  return true;
}

}  // namespace dcv::obs
