#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dcv::obs {

/// Metric labels, Prometheus-style: a small set of key/value dimensions.
/// Stored sorted by key so that {a=1,b=2} and {b=2,a=1} name one series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Hot path is one relaxed atomic
/// add; readers see an approximate (but never torn) snapshot.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (queue depth, coverage fraction).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// nanoseconds, counts of work items).
///
/// Buckets 0..7 are exact; above that each power-of-two octave splits into
/// 4 sub-buckets keyed by the two bits after the leading one, bounding the
/// relative quantile error at 1/8 while keeping the whole histogram a fixed
/// 252-slot array of relaxed atomics — recording is index + three atomic
/// adds, no locks, safe from any number of threads.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 8 + 61 * 4;

  void observe(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank; capped at the exact observed max.
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's samples into this one (e.g. folding striped
  /// per-thread histograms). Concurrent observes on either side yield an
  /// approximate but consistent-in-total result.
  void merge(const Histogram& other);

  /// Folds exact per-bucket counts plus count/sum/max totals into this
  /// histogram — the deserialization counterpart of merge(), used when the
  /// other histogram lives in another process and arrived as a snapshot.
  void merge_counts(const std::array<std::uint64_t, kBucketCount>& buckets,
                    std::uint64_t count, std::uint64_t sum,
                    std::uint64_t max_value);

  /// Bucket index a sample lands in.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// Largest sample value the bucket holds (inclusive).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType type);

/// Thread-safe home of all metrics of one process/run.
///
/// Registration (counter()/gauge()/histogram()) takes a mutex and is meant
/// to happen once per component at construction; the returned references
/// are stable for the registry's lifetime, and recording through them never
/// touches the registry again — instrumented hot paths stay lock-free.
/// Re-registering the same name+labels returns the existing instrument, so
/// per-worker objects (verifiers) can share one series.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {});

  /// One registered series, as seen by exporters.
  struct Metric {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// All series in registration order (series of one name are adjacent the
  /// way they were registered). Values are read live through the pointers.
  [[nodiscard]] std::vector<Metric> collect() const;

  /// Folds every series of `other` into this registry, creating any series
  /// not registered here yet (same name+labels ⇒ same series). Counters and
  /// histograms accumulate; gauges adopt the other registry's value
  /// (last-writer-wins — gauges are point-in-time readings, and distributed
  /// callers disambiguate by labeling per-worker series anyway). The
  /// serialized round-trip (serialize_registry → merge_serialized) is
  /// equivalent to this in-process merge by the metrics_serde property
  /// tests.
  void merge(const MetricsRegistry& other);

 private:
  struct Entry {
    Metric metric;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Labels labels, MetricType type);

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::unordered_map<std::string, Entry*> index_;
};

}  // namespace dcv::obs
