#include "obs/process_stats.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace dcv::obs {

ProcessStats read_process_stats() {
  ProcessStats stats;
#if defined(__linux__)
  // statm field 2 is the resident page count; pages, not bytes.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0;
    unsigned long long resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      stats.rss_bytes =
          static_cast<std::uint64_t>(resident_pages) *
          static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
    }
    std::fclose(statm);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    stats.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    // Linux and the BSDs report KiB.
    stats.peak_rss_bytes =
        static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  // Platforms without /proc still get a usable current reading: the peak is
  // an upper bound and better than exporting 0.
  if (stats.rss_bytes == 0) stats.rss_bytes = stats.peak_rss_bytes;
  return stats;
}

void sample_process_gauges(MetricsRegistry& registry) {
  const ProcessStats stats = read_process_stats();
  registry
      .gauge("dcv_process_rss_bytes",
             "Current resident set size of this process in bytes")
      .set(static_cast<double>(stats.rss_bytes));
  registry
      .gauge("dcv_process_peak_rss_bytes",
             "Peak resident set size of this process in bytes")
      .set(static_cast<double>(stats.peak_rss_bytes));
}

}  // namespace dcv::obs
