#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>

namespace dcv::obs {

namespace {

using Metric = MetricsRegistry::Metric;

/// Prometheus label-value / JSON string escaping (the two agree on the
/// characters we must handle: backslash, quote, newline).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

/// {k="v",...} with an optional extra label (used for le=...); empty string
/// when there are no labels at all.
std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + std::string(extra_value) + "\"";
  }
  return out + "}";
}

/// Families in first-registration order, series in registration order
/// within each family (Prometheus requires one contiguous block per name).
std::vector<std::pair<std::string, std::vector<Metric>>> group_by_family(
    const std::vector<Metric>& metrics) {
  std::vector<std::pair<std::string, std::vector<Metric>>> families;
  std::map<std::string, std::size_t> position;
  for (const Metric& metric : metrics) {
    const auto [it, inserted] =
        position.emplace(metric.name, families.size());
    if (inserted) families.emplace_back(metric.name, std::vector<Metric>{});
    families[it->second].second.push_back(metric);
  }
  return families;
}

}  // namespace

std::string write_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, series] : group_by_family(registry.collect())) {
    out += "# HELP " + name + " " + escape(series.front().help) + "\n";
    out += "# TYPE " + name + " " +
           std::string(to_string(series.front().type)) + "\n";
    for (const Metric& metric : series) {
      char line[160];
      switch (metric.type) {
        case MetricType::kCounter:
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n",
                        metric.counter->value());
          out += name + label_block(metric.labels) + line;
          break;
        case MetricType::kGauge:
          out += name + label_block(metric.labels) + " " +
                 format_double(metric.gauge->value()) + "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *metric.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
            const std::uint64_t n = h.bucket_count(i);
            if (n == 0) continue;
            cumulative += n;
            std::snprintf(line, sizeof(line), " %" PRIu64 "\n", cumulative);
            out += name + "_bucket" +
                   label_block(metric.labels, "le",
                               std::to_string(Histogram::bucket_upper(i))) +
                   line;
          }
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count());
          out += name + "_bucket" +
                 label_block(metric.labels, "le", "+Inf") + line;
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.sum());
          out += name + "_sum" + label_block(metric.labels) + line;
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count());
          out += name + "_count" + label_block(metric.labels) + line;
          break;
        }
      }
    }
  }
  return out;
}

std::string write_json(const MetricsRegistry& registry) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Metric& metric : registry.collect()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape(metric.name) + "\",\"type\":\"" +
           std::string(to_string(metric.type)) + "\",\"help\":\"" +
           escape(metric.help) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : metric.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      out += escape(key);
      out += "\":\"";
      out += escape(value);
      out += '"';
    }
    out += "}";
    char buffer[192];
    switch (metric.type) {
      case MetricType::kCounter:
        std::snprintf(buffer, sizeof(buffer), ",\"value\":%" PRIu64,
                      metric.counter->value());
        out += buffer;
        break;
      case MetricType::kGauge:
        out += ",\"value\":";
        out += format_double(metric.gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *metric.histogram;
        std::snprintf(buffer, sizeof(buffer),
                      ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                      ",\"max\":%" PRIu64,
                      h.count(), h.sum(), h.max());
        out += buffer;
        out += ",\"mean\":";
        out += format_double(h.mean());
        out += ",\"p50\":";
        out += format_double(h.quantile(0.50));
        out += ",\"p90\":";
        out += format_double(h.quantile(0.90));
        out += ",\"p99\":";
        out += format_double(h.quantile(0.99));
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          const std::uint64_t n = h.bucket_count(i);
          if (n == 0) continue;
          if (!first_bucket) out += ',';
          first_bucket = false;
          std::snprintf(buffer, sizeof(buffer),
                        "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
                        Histogram::bucket_upper(i), n);
          out += buffer;
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  return out + "]}";
}

namespace {

void append_span_json(std::string& out, const TraceEvent& event) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                ",\"cycle\":%" PRIu64 ",\"thread\":%u"
                ",\"start_ns\":%lld,\"duration_ns\":%lld}",
                event.id, event.parent, event.cycle, event.thread,
                static_cast<long long>(event.start.count()),
                static_cast<long long>(event.duration.count()));
  out += "{\"name\":\"" + escape(event.name) + "\"," + buffer;
}

}  // namespace

std::string write_trace_json(const TraceRing& ring) {
  return write_trace_json(ring, std::numeric_limits<std::size_t>::max());
}

std::string write_trace_json(const TraceRing& ring, std::size_t max_spans) {
  const auto events = ring.events();
  const std::size_t rendered = std::min(events.size(), max_spans);
  std::string out = "{\"dropped\":" + std::to_string(ring.dropped()) +
                    ",\"truncated\":" + std::to_string(events.size() - rendered) +
                    ",\"spans\":[";
  for (std::size_t i = 0; i < rendered; ++i) {
    if (i != 0) out += ',';
    append_span_json(out, events[i]);
  }
  return out + "]}";
}

std::string write_trace_json(const MergedTrace& merged,
                             std::size_t max_spans) {
  std::uint64_t truncated = merged.truncated;
  std::size_t budget = max_spans;
  std::string out = "{\"dropped\":" + std::to_string(merged.remote_dropped) +
                    ",\"processes\":[";
  bool first_track = true;
  for (const MergedTrack& track : merged.tracks) {
    if (!first_track) out += ',';
    first_track = false;
    out += "{\"process\":\"" + escape(track.process) + "\",\"spans\":[";
    const std::size_t rendered = std::min(track.events.size(), budget);
    truncated += track.events.size() - rendered;
    budget -= rendered;
    for (std::size_t i = 0; i < rendered; ++i) {
      if (i != 0) out += ',';
      append_span_json(out, track.events[i]);
    }
    out += "]}";
  }
  // Emitted after the tracks so render-time cuts are included in the count.
  return out + "],\"truncated\":" + std::to_string(truncated) + "}";
}

std::string write_chrome_trace(const TraceRing& ring) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : ring.events()) {
    if (!first) out += ',';
    first = false;
    char buffer[256];
    // Chrome trace timestamps are microseconds; keep ns resolution in the
    // fractional part.
    std::snprintf(buffer, sizeof(buffer),
                  "\"cat\":\"dcv\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"span_id\":%" PRIu64
                  ",\"parent_id\":%" PRIu64 ",\"cycle\":%" PRIu64 "}}",
                  static_cast<double>(event.start.count()) / 1e3,
                  static_cast<double>(event.duration.count()) / 1e3,
                  event.thread, event.id, event.parent, event.cycle);
    out += "{\"name\":\"" + escape(event.name) + "\"," + buffer;
  }
  return out + "]}";
}

std::string write_chrome_trace(const MergedTrace& merged) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[256];
  for (std::size_t t = 0; t < merged.tracks.size(); ++t) {
    const MergedTrack& track = merged.tracks[t];
    const unsigned pid = static_cast<unsigned>(t + 1);
    if (!first) out += ',';
    first = false;
    std::snprintf(buffer, sizeof(buffer),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, escape(track.process).c_str());
    out += buffer;
    for (const TraceEvent& event : track.events) {
      std::snprintf(buffer, sizeof(buffer),
                    "\"cat\":\"dcv\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":%u,\"tid\":%u,\"args\":{\"span_id\":%" PRIu64
                    ",\"parent_id\":%" PRIu64 ",\"cycle\":%" PRIu64 "}}",
                    static_cast<double>(event.start.count()) / 1e3,
                    static_cast<double>(event.duration.count()) / 1e3, pid,
                    event.thread, event.id, event.parent, event.cycle);
      out += ",{\"name\":\"" + escape(event.name) + "\"," + buffer;
    }
  }
  return out + "]}";
}

}  // namespace dcv::obs
