#include "obs/telemetry_server.hpp"

#include <utility>

#include "obs/export.hpp"
#include "obs/process_stats.hpp"

namespace dcv::obs {

namespace {

constexpr std::string_view kPrometheusType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr std::string_view kJsonType = "application/json";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";

HttpResponse make_response(int status, std::string_view reason,
                           std::string_view content_type,
                           std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.content_type = content_type;
  response.body = std::move(body);
  return response;
}

HttpServerConfig to_http_config(const TelemetryServerConfig& config) {
  HttpServerConfig http;
  http.port = config.port;
  http.backlog = config.backlog;
  http.worker_threads = config.worker_threads;
  http.max_connections = config.max_connections;
  http.max_queued_requests = config.max_queued_requests;
  http.max_request_bytes = config.max_request_bytes;
  http.io_timeout = config.io_timeout;
  http.poll_interval = config.accept_poll;
  http.retry_after_seconds = config.retry_after_seconds;
  http.metrics = config.http_metrics;
  return http;
}

}  // namespace

TelemetryServer::TelemetryServer(const MetricsRegistry* registry,
                                 const TraceRing* trace, HealthProbe probe,
                                 TelemetryServerConfig config)
    : registry_(registry),
      trace_(trace),
      probe_(std::move(probe)),
      config_(std::move(config)),
      server_(to_http_config(config_)) {
  // Every scrape endpoint goes through respond() so the byte-level format
  // (405 on non-GET, 404 on unknown targets, exact bodies) stays what the
  // sequential server produced. Named routes exist so per-path metrics and
  // per-route body caps attach; their handlers and the fallback share the
  // same dispatch.
  const HttpHandler scrape = [this](const HttpRequest& request) {
    return respond(request);
  };
  for (const char* path : {"/metrics", "/metrics.json", "/tracez", "/healthz",
                           "/readyz", "/"}) {
    server_.add_route("GET", path, scrape);
  }
  server_.set_fallback(scrape);
  if (config_.mount) config_.mount(server_);
  server_.start();
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() { server_.stop(); }

HttpResponse TelemetryServer::respond(const HttpRequest& request) const {
  if (request.method != "GET") {
    return make_response(405, "Method Not Allowed", kTextType,
                         "only GET is supported\n");
  }
  // path() already strips any query string: scrapers commonly append
  // cache-busters.
  const std::string_view target = request.path();

  if (target == "/metrics") {
    if (registry_ == nullptr) {
      return make_response(404, "Not Found", kTextType,
                           "no metrics registry attached\n");
    }
    // Process memory gauges are sampled at scrape time so every exposition
    // carries the current footprint; needs the writable registry handle.
    if (config_.http_metrics != nullptr) {
      sample_process_gauges(*config_.http_metrics);
    }
    return make_response(200, "OK", kPrometheusType,
                         write_prometheus(*registry_));
  }
  if (target == "/metrics.json") {
    if (registry_ == nullptr) {
      return make_response(404, "Not Found", kTextType,
                           "no metrics registry attached\n");
    }
    if (config_.http_metrics != nullptr) {
      sample_process_gauges(*config_.http_metrics);
    }
    return make_response(200, "OK", kJsonType, write_json(*registry_));
  }
  if (target == "/tracez") {
    if (config_.trace_renderer) {
      return make_response(200, "OK", kJsonType,
                           config_.trace_renderer(config_.max_trace_spans));
    }
    if (trace_ == nullptr) {
      return make_response(404, "Not Found", kTextType,
                           "no trace ring attached\n");
    }
    return make_response(200, "OK", kJsonType,
                         write_trace_json(*trace_, config_.max_trace_spans));
  }
  if (target == "/healthz" || target == "/readyz") {
    const HealthSnapshot health = probe_ ? probe_() : HealthSnapshot{};
    const bool ok = target == "/healthz" ? health.alive : health.ready;
    std::string body = ok ? "ok\n" : "unavailable\n";
    if (!health.detail.empty()) body += health.detail;
    return make_response(ok ? 200 : 503, ok ? "OK" : "Service Unavailable",
                         kTextType, std::move(body));
  }
  if (target == "/") {
    return make_response(
        200, "OK", kTextType,
        "dcv telemetry endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  registry as JSON\n"
        "  /healthz       liveness\n"
        "  /readyz        readiness (coverage/breakers/queue/staleness)\n"
        "  /tracez        recent spans\n");
  }
  return make_response(404, "Not Found", kTextType, "unknown endpoint\n");
}

}  // namespace dcv::obs
